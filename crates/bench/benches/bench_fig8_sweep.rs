//! Experiment F8 (DESIGN.md §4): the Fig. 8 suitability sweep — tools
//! across (quantity of data × complexity of structure).
//!
//! Besides the Criterion timings, this bench prints a summary table (tool ×
//! data size × complexity level → wall time, pages, spec lines) that
//! EXPERIMENTS.md transcribes; the *shape* to check is that the procedural
//! baseline is fastest but frozen at one structure, the RDBMS dump handles
//! any size but only flat structure, and STRUDEL covers the whole grid with
//! a specification that grows only with structural complexity.

use bench::{baselines, fig8};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use strudel::synth::news;
use strudel_graph::ddl;

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_strudel_grid");
    group.sample_size(10);
    for &n in &[50usize, 200, 800] {
        for level in [1usize, 2, 4] {
            let id = format!("n{n}_level{level}");
            group.bench_with_input(
                BenchmarkId::new("strudel", &id),
                &(n, level),
                |b, &(n, level)| {
                    b.iter(|| {
                        let mut s = fig8::strudel_system(n, 5, level).unwrap();
                        black_box(s.generate_site(&["FrontPage"]).unwrap().pages.len())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_baselines");
    group.sample_size(10);
    for &n in &[50usize, 200, 800] {
        let data = ddl::parse(&news::generate_ddl(n, 5)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("procedural_level3", n),
            &data,
            |b, data| {
                b.iter(|| black_box(baselines::procedural::news_site(data).len()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rdbms_dump_level1", n),
            &data,
            |b, data| {
                b.iter(|| black_box(baselines::rdbms_web::dump_site(data).len()));
            },
        );
    }
    group.finish();
}

fn print_summary_table() {
    println!("\n=== Fig. 8 sweep summary (single-shot wall times) ===");
    println!(
        "{:<12} {:>6} {:>7} {:>12} {:>7} {:>10}",
        "tool", "n", "level", "time", "pages", "spec-lines"
    );
    for &n in &[50usize, 200, 800] {
        for level in 1..=fig8::MAX_LEVEL {
            let t = Instant::now();
            let mut s = fig8::strudel_system(n, 5, level).unwrap();
            let pages = s.generate_site(&["FrontPage"]).unwrap().pages.len();
            println!(
                "{:<12} {:>6} {:>7} {:>12?} {:>7} {:>10}",
                "strudel",
                n,
                format!("L{level}({}links)", fig8::link_clause_count(level)),
                t.elapsed(),
                pages,
                fig8::strudel_spec_lines(level)
            );
        }
        let data = ddl::parse(&news::generate_ddl(n, 5)).unwrap();
        let t = Instant::now();
        let pages = baselines::procedural::news_site(&data).len();
        println!(
            "{:<12} {:>6} {:>7} {:>12?} {:>7} {:>10}",
            "procedural",
            n,
            "L3-only",
            t.elapsed(),
            pages,
            "~160 (program)"
        );
        let t = Instant::now();
        let pages = baselines::rdbms_web::dump_site(&data).len();
        println!(
            "{:<12} {:>6} {:>7} {:>12?} {:>7} {:>10}",
            "rdbms-dump",
            n,
            "L1-only",
            t.elapsed(),
            pages,
            "~45 (fixed)"
        );
    }
    println!();
}

fn bench_with_table(c: &mut Criterion) {
    print_summary_table();
    bench_grid(c);
    bench_baselines(c);
}

criterion_group!(benches, bench_with_table);
criterion_main!(benches);
