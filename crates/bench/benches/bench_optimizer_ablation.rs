//! Experiment A-OPT (DESIGN.md §4): the §2.4 optimizer story.
//!
//! STRUDEL grew from "a simple heuristic-based optimizer" to "a more
//! comprehensive cost-based optimization algorithm [that] can enumerate
//! plans that exploit indexes on the data and the schema". This bench
//! evaluates the same adversarially-ordered conjunctive query under all
//! three strategies, with the repository's indexes on and off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use strudel::synth::org;
use strudel_graph::Graph;
use strudel_struql::{parse_query, EvalOptions, Optimizer, Query};
use strudel_wrappers::{bibtex, relational};

/// Builds the org data graph directly (people + publications).
fn data_graph(n: usize) -> Graph {
    let src = org::generate(n, 1997);
    let mut g = Graph::standalone();
    let people = relational::Table::from_csv("People", &src.people_csv).unwrap();
    let depts = relational::Table::from_csv("Departments", &src.departments_csv).unwrap();
    relational::load_into(&mut g, &[people, depts], &[]).unwrap();
    bibtex::load_into(&mut g, &src.publications_bib).unwrap();
    g
}

/// An adversarially written query: the selective conditions come last, so
/// naive left-to-right evaluation materializes a large intermediate join.
fn adversarial_query() -> Query {
    parse_query(
        r#"WHERE x -> "author" -> a, m -> "name" -> a,
                 m -> "title" -> "Director",
                 Publications(x), People(m),
                 x -> "year" -> y, y >= 1996
           CREATE Hit(x, m)
           LINK Hit(x, m) -> "paper" -> x, Hit(x, m) -> "person" -> m
           COLLECT Hits(Hit(x, m))"#,
    )
    .unwrap()
}

/// A path-heavy query exercising reverse traversal.
fn path_query() -> Query {
    parse_query(
        r#"WHERE p -> "author" -> a, Publications(p), a = "Mary Fernandez"
           COLLECT ByMary(p)"#,
    )
    .unwrap()
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_strategies");
    group.sample_size(10);
    let g = data_graph(200);
    let q = adversarial_query();
    for (name, opt) in [
        ("naive", Optimizer::Naive),
        ("heuristic", Optimizer::Heuristic),
        ("cost_based", Optimizer::CostBased),
    ] {
        group.bench_with_input(BenchmarkId::new("join_query", name), &opt, |b, &opt| {
            let opts = EvalOptions::with_optimizer(opt);
            b.iter(|| black_box(q.evaluate(&g, &opts).unwrap().stats.intermediate_rows));
        });
    }
    group.finish();
}

fn bench_index_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_index_ablation");
    group.sample_size(10);
    let q = path_query();
    for indexed in [true, false] {
        let mut g = data_graph(300);
        g.set_indexing(indexed);
        let label = if indexed { "indexed" } else { "unindexed" };
        group.bench_with_input(BenchmarkId::new("reverse_lookup", label), &g, |b, g| {
            let opts = EvalOptions::default();
            b.iter(|| black_box(q.evaluate(g, &opts).unwrap().stats.intermediate_rows));
        });
    }
    group.finish();
}

fn report_plan_quality() {
    let g = data_graph(200);
    let q = adversarial_query();
    println!("\n=== A-OPT: intermediate rows per strategy (n=200) ===");
    for (name, opt) in [
        ("naive", Optimizer::Naive),
        ("heuristic", Optimizer::Heuristic),
        ("cost_based", Optimizer::CostBased),
    ] {
        let out = q.evaluate(&g, &EvalOptions::with_optimizer(opt)).unwrap();
        println!(
            "  {name:<11} intermediate rows: {}",
            out.stats.intermediate_rows
        );
    }
    println!();
}

fn benches_with_report(c: &mut Criterion) {
    report_plan_quality();
    bench_strategies(c);
    bench_index_ablation(c);
}

criterion_group!(benches, benches_with_report);
criterion_main!(benches);
