//! Experiments A-TC and T-TEXTONLY (DESIGN.md §4): regular path
//! expressions, transitive closure via two-query composition (§3's
//! expressive-power result), and the TextOnly graph-copy query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use strudel_graph::{FileKind, Graph, Value};
use strudel_struql::{parse_query, EvalOptions};

/// A random graph with out-degree ~3 over `n` nodes, some image leaves.
fn random_graph(n: usize, seed: u64) -> Graph {
    let mut r = StdRng::seed_from_u64(seed);
    let mut g = Graph::standalone();
    let nodes: Vec<_> = (0..n).map(|i| g.new_node(Some(&format!("n{i}")))).collect();
    g.add_to_collection_str("Root", Value::Node(nodes[0]));
    let labels = ["to", "next", "ref"];
    for &from in &nodes {
        for _ in 0..3 {
            let to = nodes[r.gen_range(0..n)];
            let l = labels[r.gen_range(0..labels.len())];
            g.add_edge_str(from, l, Value::Node(to)).unwrap();
        }
        if r.gen_bool(0.2) {
            g.add_edge_str(from, "img", Value::file(FileKind::Image, "x.gif"))
                .unwrap();
        } else {
            g.add_edge_str(from, "text", "content").unwrap();
        }
    }
    g
}

/// A chain-shaped binary relation encoded as fst/snd pairs.
fn relation_chain(n: usize) -> Graph {
    let mut g = Graph::standalone();
    for i in 0..n as i64 {
        let p = g.new_node(None);
        g.add_to_collection_str("R", Value::Node(p));
        g.add_edge_str(p, "fst", i).unwrap();
        g.add_edge_str(p, "snd", i + 1).unwrap();
    }
    g
}

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_reachability");
    group.sample_size(10);
    let q = parse_query("WHERE Root(p), p -> * -> q COLLECT Reached(q)").unwrap();
    for &n in &[256usize, 1024, 4096] {
        let g = random_graph(n, 11);
        group.bench_with_input(BenchmarkId::new("star", n), &g, |b, g| {
            let opts = EvalOptions::default();
            b.iter(|| {
                let out = q.evaluate(g, &opts).unwrap();
                black_box(out.graph.collection_str("Reached").unwrap().len())
            });
        });
    }
    group.finish();
}

fn bench_transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("transitive_closure_composition");
    group.sample_size(10);
    let q1 = parse_query(
        r#"WHERE R(p), p -> "fst" -> a, p -> "snd" -> b
           CREATE N(a), N(b)
           LINK N(a) -> "r" -> N(b), N(a) -> "val" -> a, N(b) -> "val" -> b"#,
    )
    .unwrap();
    let q2 = parse_query(
        r#"WHERE x -> "val" -> a, x -> "r"+ -> y, y -> "val" -> b
           CREATE Pair(a, b)
           LINK Pair(a, b) -> "fst" -> a, Pair(a, b) -> "snd" -> b
           COLLECT TC(Pair(a, b))"#,
    )
    .unwrap();
    for &n in &[32usize, 64, 128] {
        let g = relation_chain(n);
        group.bench_with_input(BenchmarkId::new("two_query_chain", n), &g, |b, g| {
            let opts = EvalOptions::default();
            b.iter(|| {
                let step1 = q1.evaluate(g, &opts).unwrap();
                let step2 = q2.evaluate(&step1.graph, &opts).unwrap();
                let tc = step2.graph.collection_str("TC").unwrap().len();
                // TC of an n-edge chain has n(n+1)/2 pairs.
                assert_eq!(tc, n * (n + 1) / 2);
                black_box(tc)
            });
        });
    }
    group.finish();
}

fn bench_copy_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("textonly_copy");
    group.sample_size(10);
    let q = parse_query(
        r#"WHERE Root(p), p -> * -> q, q -> l -> q0, not(isImageFile(q0))
           CREATE New(p), New(q), New(q0)
           LINK New(q) -> l -> New(q0)
           COLLECT TextOnlyRoot(New(p))"#,
    )
    .unwrap();
    for &n in &[256usize, 1024] {
        let g = random_graph(n, 13);
        group.bench_with_input(BenchmarkId::new("copy_no_images", n), &g, |b, g| {
            let opts = EvalOptions::default();
            b.iter(|| black_box(q.evaluate(g, &opts).unwrap().graph.edge_count()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reachability,
    bench_transitive_closure,
    bench_copy_query
);
criterion_main!(benches);
