//! Experiment A-PAR: data-parallel evaluation and multi-threaded site
//! generation, sweeping the job count over whole-site builds.
//!
//! Three workloads, all end-to-end (warehouse warm; evaluate + construct +
//! render): the Fig. 8 news corpus at 800 articles / complexity level 4,
//! the T-ATT organization site at 400 members, and the T-CNN news site at
//! 300 articles. Each runs at jobs ∈ {1, 2, 4}; jobs=1 is the unchanged
//! sequential path, and every job count produces byte-identical output
//! (see `parallel_full_build_matches_sequential` in tests/properties.rs).
//!
//! Writes `BENCH_parallel.json` at the repository root. Note: wall-clock
//! speedup requires physical cores — on a single-core host the sweep
//! records parity (the point of the determinism design is that the
//! parallel path is safe to leave on everywhere).

use bench::fig8;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use strudel::synth::{news, org};
use strudel::Strudel;

const WARMUP: usize = 2;
const ITERS: usize = 11;

fn median_us(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Median full-build latency (µs) of a system at one job count.
fn measure(s: &mut Strudel, roots: &[&str], jobs: usize) -> f64 {
    s.set_jobs(jobs);
    s.data_graph().unwrap(); // warehouse warm; measure the site pipeline
    for _ in 0..WARMUP {
        black_box(s.generate_site(roots).unwrap().pages.len());
    }
    let mut samples = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let t = std::time::Instant::now();
        black_box(s.generate_site(roots).unwrap().pages.len());
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    median_us(samples)
}

fn report_sweep() {
    use std::fmt::Write as _;

    let workloads: Vec<(&str, Strudel, &[&str])> = vec![
        (
            "fig8_800_L4",
            fig8::strudel_system(800, 7, fig8::MAX_LEVEL).unwrap(),
            &["FrontPage"],
        ),
        (
            "t_att_400",
            org::system(&org::generate(400, 1997)).unwrap(),
            &["RootPage"],
        ),
        (
            "t_cnn_300",
            news::system(300, 7, false).unwrap(),
            &["FrontPage"],
        ),
    ];

    println!(
        "=== A-PAR: whole-site build, jobs sweep (median µs over {ITERS} iters; \
         {} hardware threads) ===",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut rows: Vec<(&str, [f64; 3])> = Vec::new();
    for (name, mut s, roots) in workloads {
        let us = [
            measure(&mut s, roots, 1),
            measure(&mut s, roots, 2),
            measure(&mut s, roots, 4),
        ];
        println!(
            "  {name:<12} jobs=1 {:>10.1}  jobs=2 {:>10.1}  jobs=4 {:>10.1}  (x{:.2} at 4)",
            us[0],
            us[1],
            us[2],
            us[0] / us[2]
        );
        rows.push((name, us));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    for (i, (name, us)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "  \"{name}\": {{\"jobs1_us\": {:.1}, \"jobs2_us\": {:.1}, \"jobs4_us\": {:.1}, \
             \"speedup_jobs4\": {:.2}}}{comma}",
            us[0],
            us[1],
            us[2],
            us[0] / us[2]
        );
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, &json).unwrap();
    println!("\nwrote {path}\n");
}

fn bench_jobs_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_build");
    group.sample_size(10);
    for &jobs in &[1usize, 2, 4] {
        let mut s = fig8::strudel_system(800, 7, fig8::MAX_LEVEL).unwrap();
        s.set_jobs(jobs);
        s.data_graph().unwrap();
        group.bench_with_input(BenchmarkId::new("fig8_800_L4", jobs), &jobs, move |b, _| {
            b.iter(|| black_box(s.generate_site(&["FrontPage"]).unwrap().pages.len()));
        });
    }
    group.finish();
}

fn benches_with_report(c: &mut Criterion) {
    report_sweep();
    bench_jobs_sweep(c);
}

criterion_group!(benches, benches_with_report);
criterion_main!(benches);
