//! Durable-storage benchmark: the paged store's commit path, group commit
//! under a write burst, incremental checkpoints, crash recovery, and
//! cold-open cost against a full rebuild from DDL text.
//!
//! Reported numbers (written to `BENCH_storage.json` at the repo root):
//! - `commit_us` — median / p99 latency of a durable commit whose workload
//!   scales with `n` (one node plus `n/50` edges, so WAL bytes differ
//!   between corpus sizes and size-dependent commit cost is visible).
//! - `bytes_per_commit` — WAL bytes appended per committed transaction.
//! - `burst` — a 100-transaction burst pushed through the [`CommitQueue`]
//!   (group commit, shared fsyncs) against the same 100 transactions
//!   committed one fsync at a time; `throughput_ratio` is grouped over
//!   sequential and `commits_per_fsync` is measured from the storage
//!   counters, not assumed.
//! - `dirty_checkpoint_ms` — checkpointing a store of `n` articles after a
//!   single-edge commit: the incremental path rewrites only the dirty
//!   segments, so the figure should track the change set, not `n`.
//! - `recovery_ms` — time for `PagedStore::open` to replay a log of
//!   `wal_txns` committed transactions after a simulated kill.
//! - `cold_open_ms` vs `rebuild_ms` — opening a checkpointed store (and
//!   forcing materialization) versus re-parsing the equivalent DDL corpus.
//! - `checkpoint_ms` / `compact_ms` — folding the log into pages and
//!   rewriting the file at its minimal size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use strudel::synth::news;
use strudel_graph::store::{CommitQueue, PagedStore, WireValue};
use strudel_graph::{ddl, storage_stats, Graph};

fn corpus(n: usize) -> (String, Graph) {
    let text = news::generate_ddl(n, 3);
    let graph = ddl::parse(&text).unwrap();
    (text, graph)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strudel_bench_storage_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// One durable transaction whose size scales with the corpus: a node plus
/// `edges` attribute edges. The old bench committed a fixed two-op
/// transaction regardless of `n`, so `wal_bytes` was identical across
/// sizes and the bench never measured size-dependent commit cost.
fn commit_scaled(store: &mut PagedStore, i: i64, edges: usize) {
    let mut txn = store.begin();
    let node = txn.add_node(None);
    for e in 0..edges {
        txn.add_edge(node, "seq", WireValue::Int(i * edges as i64 + e as i64));
    }
    txn.commit().unwrap();
}

fn edges_per_commit(n: usize) -> usize {
    (n / 50).max(1)
}

fn percentile(mut v: Vec<f64>, p: f64) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[((v.len() - 1) as f64 * p) as usize]
}

fn median(v: Vec<f64>) -> f64 {
    percentile(v, 0.5)
}

fn bench_paged(c: &mut Criterion) {
    let mut group = c.benchmark_group("paged_storage");
    group.sample_size(10);
    for &n in &[100usize, 1000] {
        let (_, g) = corpus(n);
        let path = scratch(&format!("crit_{n}.pdb"));
        let _ = std::fs::remove_file(&path);
        let mut store = PagedStore::import(&path, &g).unwrap();
        store.set_wal_limit(u64::MAX);
        let edges = edges_per_commit(n);
        let mut i = 0i64;
        group.bench_with_input(BenchmarkId::new("durable_commit", n), &n, |b, _| {
            b.iter(|| {
                i += 1;
                commit_scaled(&mut store, i, edges);
                black_box(store.revision())
            });
        });
        store.checkpoint().unwrap();
        drop(store);
        group.bench_with_input(BenchmarkId::new("cold_open", n), &path, |b, path| {
            b.iter(|| black_box(PagedStore::open(path).unwrap().revision()));
        });
    }
    group.finish();
}

/// The group-commit burst: `txns` transactions from 50 writer threads
/// through the commit queue (leader batches everyone waiting behind one
/// fsync) versus the same `txns` transactions committed sequentially, one
/// fsync each. Returns `(sequential_s, grouped_s, commits_per_fsync)`.
fn burst(path: &PathBuf, txns: usize, window: Duration) -> (f64, f64, f64) {
    let (_, g) = corpus(100);
    let _ = std::fs::remove_file(path);
    let mut store = PagedStore::import(path, &g).unwrap();
    store.set_wal_limit(u64::MAX);

    // Baseline: one fsync per commit.
    let t = Instant::now();
    for i in 0..txns {
        commit_scaled(&mut store, i as i64, 1);
    }
    let sequential_s = t.elapsed().as_secs_f64();

    // Grouped: the same number of transactions, submitted concurrently.
    // A barrier keeps thread spawn-up out of the timed region — 50 thread
    // spawns cost on the order of a couple of batches.
    store.set_group_commit_window(window);
    let queue = CommitQueue::new(store);
    let threads = 50;
    let before = storage_stats();
    let barrier = std::sync::Barrier::new(threads + 1);
    let mut grouped_s = 0.0;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..threads {
            let queue = &queue;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                barrier.wait();
                for i in 0..txns / threads {
                    let mut txn = queue.begin();
                    let node = txn.add_node(None);
                    txn.add_edge(node, "burst", WireValue::Int((w * txns + i) as i64));
                    txn.commit().unwrap();
                }
            }));
        }
        barrier.wait();
        let t = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        grouped_s = t.elapsed().as_secs_f64();
    });
    let after = storage_stats();
    let fsyncs = (after.wal_fsyncs - before.wal_fsyncs).max(1);
    let commits_per_fsync = txns as f64 / fsyncs as f64;
    drop(queue.into_store().unwrap());
    (sequential_s, grouped_s, commits_per_fsync)
}

/// Times an incremental checkpoint after a single-edge commit on a store
/// of `n` articles: median over `rounds` commit+checkpoint cycles, plus
/// the page-write counter delta for the last cycle. Proportional-to-delta
/// means this figure stays flat as `n` grows.
fn dirty_checkpoint(path: &PathBuf, n: usize, rounds: usize) -> (f64, u64) {
    let (_, g) = corpus(n);
    let _ = std::fs::remove_file(path);
    let mut store = PagedStore::import(path, &g).unwrap();
    store.set_wal_limit(u64::MAX);
    let mut times = Vec::new();
    let mut pages_written = 0u64;
    for i in 0..rounds {
        commit_scaled(&mut store, i as i64, 1);
        let before = storage_stats();
        let t = Instant::now();
        store.checkpoint().unwrap();
        times.push(t.elapsed().as_secs_f64() * 1e3);
        pages_written = storage_stats().checkpoint_pages_written - before.checkpoint_pages_written;
    }
    (median(times), pages_written)
}

fn report() {
    use std::fmt::Write as _;
    println!("=== Durable storage: commit, group commit, checkpoints, recovery ===");
    let mut json = String::from("{\n");
    let sizes = [100usize, 1000];
    for &n in &sizes {
        let (text, g) = corpus(n);
        let edges = edges_per_commit(n);

        // Durable commit latency over a fresh store, workload scaled to n.
        let path = scratch(&format!("report_{n}.pdb"));
        let _ = std::fs::remove_file(&path);
        let mut store = PagedStore::import(&path, &g).unwrap();
        store.set_wal_limit(u64::MAX);
        let wal_before = store.wal_size();
        let mut lat = Vec::new();
        for i in 0..200i64 {
            let t = Instant::now();
            commit_scaled(&mut store, i, edges);
            lat.push(t.elapsed().as_secs_f64() * 1e6);
        }
        let (commit_med, commit_p99) = (percentile(lat.clone(), 0.5), percentile(lat, 0.99));
        let bytes_per_commit = (store.wal_size() - wal_before) as f64 / 200.0;

        // Recovery: kill with 200 txns in the log, time the replay.
        let wal_txns = 200usize;
        let wal_bytes = store.wal_size();
        drop(store);
        let t = Instant::now();
        let mut store = PagedStore::open(&path).unwrap();
        store.graph().unwrap();
        let recovery_ms = t.elapsed().as_secs_f64() * 1e3;

        // Checkpoint, then cold-open vs full DDL rebuild.
        let t = Instant::now();
        store.checkpoint().unwrap();
        let checkpoint_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let report = store.compact().unwrap();
        let compact_ms = t.elapsed().as_secs_f64() * 1e3;
        drop(store);
        let t = Instant::now();
        black_box(
            PagedStore::open(&path)
                .unwrap()
                .graph()
                .unwrap()
                .edge_count(),
        );
        let cold_open_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        black_box(ddl::parse(&text).unwrap().edge_count());
        let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;

        // Incremental checkpoint cost for a single-edge change set.
        let dirty_path = scratch(&format!("dirty_{n}.pdb"));
        let (dirty_checkpoint_ms, dirty_pages_written) = dirty_checkpoint(&dirty_path, n, 9);

        println!(
            "  n={n:<5} commit({edges} edges) med={commit_med:>7.1}µs p99={commit_p99:>7.1}µs \
             {bytes_per_commit:>6.0}B/commit   \
             recovery({wal_txns} txns, {wal_bytes}B wal)={recovery_ms:>7.2}ms   \
             cold open={cold_open_ms:>6.2}ms vs rebuild={rebuild_ms:>6.2}ms   \
             checkpoint={checkpoint_ms:.2}ms compact={compact_ms:.2}ms \
             ({}->{} pages)   dirty checkpoint={dirty_checkpoint_ms:.2}ms \
             ({dirty_pages_written} pages)",
            report.pages_before, report.pages_after
        );
        let _ = writeln!(
            json,
            "  \"n{n}\": {{\"commit_median_us\": {commit_med:.1}, \"commit_p99_us\": {commit_p99:.1}, \
             \"edges_per_commit\": {edges}, \"bytes_per_commit\": {bytes_per_commit:.1}, \
             \"wal_txns\": {wal_txns}, \"wal_bytes\": {wal_bytes}, \"recovery_ms\": {recovery_ms:.2}, \
             \"cold_open_ms\": {cold_open_ms:.2}, \"rebuild_ms\": {rebuild_ms:.2}, \
             \"checkpoint_ms\": {checkpoint_ms:.2}, \"compact_ms\": {compact_ms:.2}, \
             \"dirty_checkpoint_ms\": {dirty_checkpoint_ms:.2}, \
             \"dirty_checkpoint_pages\": {dirty_pages_written}, \
             \"pages_before_compact\": {}, \"pages_after_compact\": {}}},",
            report.pages_before, report.pages_after
        );
    }

    // Group-commit burst: 100 concurrent transactions vs one-fsync-each.
    let burst_txns = 100usize;
    let window = Duration::from_micros(50);
    let burst_path = scratch("burst.pdb");
    let (sequential_s, grouped_s, commits_per_fsync) = burst(&burst_path, burst_txns, window);
    let sequential_tps = burst_txns as f64 / sequential_s;
    let grouped_tps = burst_txns as f64 / grouped_s;
    let throughput_ratio = grouped_tps / sequential_tps;
    println!(
        "  burst  {burst_txns} txns: sequential={sequential_tps:>8.0}/s \
         grouped={grouped_tps:>8.0}/s ({throughput_ratio:.1}x, \
         {commits_per_fsync:.1} commits/fsync, {}µs window)",
        window.as_micros()
    );
    let _ = writeln!(
        json,
        "  \"burst\": {{\"txns\": {burst_txns}, \"window_us\": {}, \
         \"sequential_txns_per_s\": {sequential_tps:.0}, \
         \"grouped_txns_per_s\": {grouped_tps:.0}, \
         \"throughput_ratio\": {throughput_ratio:.2}, \
         \"commits_per_fsync\": {commits_per_fsync:.2}}}",
        window.as_micros()
    );

    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_storage.json");
    std::fs::write(path, &json).unwrap();
    println!("\nwrote {path}\n");
}

fn benches_with_report(c: &mut Criterion) {
    report();
    bench_paged(c);
}

criterion_group!(benches, benches_with_report);
criterion_main!(benches);
