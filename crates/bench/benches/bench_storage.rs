//! Durable-storage benchmark: the paged store's commit path, crash
//! recovery, and cold-open cost against a full rebuild from DDL text.
//!
//! Reported numbers (written to `BENCH_storage.json` at the repo root):
//! - `commit_us` — median / p99 latency of a durable single-node commit
//!   (WAL append + commit record + fsync).
//! - `recovery_ms` — time for `PagedStore::open` to replay a log of
//!   `wal_txns` committed transactions after a simulated kill.
//! - `cold_open_ms` vs `rebuild_ms` — opening a checkpointed store versus
//!   re-parsing the equivalent DDL corpus.
//! - `checkpoint_ms` / `compact_ms` — folding the log into pages and
//!   rewriting the file at its minimal size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;
use strudel::synth::news;
use strudel_graph::store::{PagedStore, WireValue};
use strudel_graph::{ddl, Graph};

fn corpus(n: usize) -> (String, Graph) {
    let text = news::generate_ddl(n, 3);
    let graph = ddl::parse(&text).unwrap();
    (text, graph)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strudel_bench_storage_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn commit_one(store: &mut PagedStore, i: i64) {
    let mut txn = store.begin();
    let node = txn.add_node(None);
    txn.add_edge(node, "seq", WireValue::Int(i));
    txn.commit().unwrap();
}

fn percentile(mut v: Vec<f64>, p: f64) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[((v.len() - 1) as f64 * p) as usize]
}

fn bench_paged(c: &mut Criterion) {
    let mut group = c.benchmark_group("paged_storage");
    group.sample_size(10);
    for &n in &[100usize, 1000] {
        let (_, g) = corpus(n);
        let path = scratch(&format!("crit_{n}.pdb"));
        let _ = std::fs::remove_file(&path);
        let mut store = PagedStore::import(&path, &g).unwrap();
        store.set_wal_limit(u64::MAX);
        let mut i = 0i64;
        group.bench_with_input(BenchmarkId::new("durable_commit", n), &n, |b, _| {
            b.iter(|| {
                i += 1;
                commit_one(&mut store, i);
                black_box(store.revision())
            });
        });
        store.checkpoint().unwrap();
        drop(store);
        group.bench_with_input(BenchmarkId::new("cold_open", n), &path, |b, path| {
            b.iter(|| black_box(PagedStore::open(path).unwrap().revision()));
        });
    }
    group.finish();
}

fn report() {
    use std::fmt::Write as _;
    println!("=== Durable storage: commit, recovery, cold open ===");
    let mut json = String::from("{\n");
    let sizes = [100usize, 1000];
    for (si, &n) in sizes.iter().enumerate() {
        let (text, g) = corpus(n);

        // Durable commit latency over a fresh store.
        let path = scratch(&format!("report_{n}.pdb"));
        let _ = std::fs::remove_file(&path);
        let mut store = PagedStore::import(&path, &g).unwrap();
        store.set_wal_limit(u64::MAX);
        let mut lat = Vec::new();
        for i in 0..200i64 {
            let t = Instant::now();
            commit_one(&mut store, i);
            lat.push(t.elapsed().as_secs_f64() * 1e6);
        }
        let (commit_med, commit_p99) = (percentile(lat.clone(), 0.5), percentile(lat, 0.99));

        // Recovery: kill with 200 txns in the log, time the replay.
        let wal_txns = 200usize;
        let wal_bytes = store.wal_size();
        drop(store);
        let t = Instant::now();
        let mut store = PagedStore::open(&path).unwrap();
        let recovery_ms = t.elapsed().as_secs_f64() * 1e3;

        // Checkpoint, then cold-open vs full DDL rebuild.
        let t = Instant::now();
        store.checkpoint().unwrap();
        let checkpoint_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let report = store.compact().unwrap();
        let compact_ms = t.elapsed().as_secs_f64() * 1e3;
        drop(store);
        let t = Instant::now();
        black_box(PagedStore::open(&path).unwrap().graph().edge_count());
        let cold_open_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        black_box(ddl::parse(&text).unwrap().edge_count());
        let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;

        println!(
            "  n={n:<5} commit med={commit_med:>7.1}µs p99={commit_p99:>7.1}µs   \
             recovery({wal_txns} txns, {wal_bytes}B wal)={recovery_ms:>7.2}ms   \
             cold open={cold_open_ms:>6.2}ms vs rebuild={rebuild_ms:>6.2}ms   \
             checkpoint={checkpoint_ms:.2}ms compact={compact_ms:.2}ms \
             ({}->{} pages)",
            report.pages_before, report.pages_after
        );
        let comma = if si + 1 < sizes.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "  \"n{n}\": {{\"commit_median_us\": {commit_med:.1}, \"commit_p99_us\": {commit_p99:.1}, \
             \"wal_txns\": {wal_txns}, \"wal_bytes\": {wal_bytes}, \"recovery_ms\": {recovery_ms:.2}, \
             \"cold_open_ms\": {cold_open_ms:.2}, \"rebuild_ms\": {rebuild_ms:.2}, \
             \"checkpoint_ms\": {checkpoint_ms:.2}, \"compact_ms\": {compact_ms:.2}, \
             \"pages_before_compact\": {}, \"pages_after_compact\": {}}}{comma}",
            report.pages_before, report.pages_after
        );
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_storage.json");
    std::fs::write(path, &json).unwrap();
    println!("\nwrote {path}\n");
}

fn benches_with_report(c: &mut Criterion) {
    report();
    bench_paged(c);
}

criterion_group!(benches, benches_with_report);
criterion_main!(benches);
