//! Experiment T-CNN (DESIGN.md §4): the CNN demonstration site of §5.1 —
//! ~300 articles, general vs. sports-only versions from the same data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use strudel::synth::news;

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_site_scale");
    group.sample_size(10);
    for &n in &[75usize, 150, 300, 600] {
        group.bench_with_input(BenchmarkId::new("general_end_to_end", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = news::system(n, 7, false).unwrap();
                let site = s.generate_site(&["FrontPage"]).unwrap();
                black_box(site.total_bytes())
            });
        });
    }
    group.finish();
}

fn bench_versions(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_site_versions");
    group.sample_size(10);
    const N: usize = 300;

    group.bench_function("general_site_graph", |b| {
        let mut s = news::system(N, 7, false).unwrap();
        s.data_graph().unwrap(); // warehouse warm
        b.iter(|| black_box(s.build_site().unwrap().graph.edge_count()));
    });

    // The sports-only site: same data, derived query (+2 predicates).
    group.bench_function("sports_site_graph", |b| {
        let mut s = news::system(N, 7, true).unwrap();
        s.data_graph().unwrap();
        b.iter(|| black_box(s.build_site().unwrap().graph.edge_count()));
    });
    group.finish();
}

criterion_group!(benches, bench_scale, bench_versions);
criterion_main!(benches);
