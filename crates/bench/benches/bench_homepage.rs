//! Experiments T-HOME and F3/F4 (DESIGN.md §4): the §3.1 personal home
//! page — BibTeX wrapper → mediator → Fig. 3 query → Fig. 7 templates —
//! at the paper's personal-site scale and beyond.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use strudel::synth::bib;
use strudel_wrappers::bibtex;

fn bench_wrapper(c: &mut Criterion) {
    let mut group = c.benchmark_group("homepage_bibtex_wrapper");
    group.sample_size(20);
    for &n in &[25usize, 100, 400] {
        let text = bib::generate_bibtex("Mary Fernandez", n, 42);
        group.bench_with_input(BenchmarkId::new("parse_to_graph", n), &text, |b, text| {
            b.iter(|| black_box(bibtex::to_graph(text).unwrap().edge_count()));
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("homepage_pipeline");
    group.sample_size(10);
    for &n in &[25usize, 100, 400] {
        group.bench_with_input(BenchmarkId::new("end_to_end", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = bib::system("Mary Fernandez", n, 42).unwrap();
                let site = s.generate_site(&["RootPage"]).unwrap();
                black_box(site.total_bytes())
            });
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("homepage_stages");
    group.sample_size(10);
    const N: usize = 100;

    group.bench_function("site_graph_only", |b| {
        let mut s = bib::system("Mary Fernandez", N, 42).unwrap();
        s.data_graph().unwrap();
        b.iter(|| black_box(s.build_site().unwrap().graph.edge_count()));
    });

    group.bench_function("html_only", |b| {
        let mut s = bib::system("Mary Fernandez", N, 42).unwrap();
        s.build_site().unwrap();
        b.iter(|| black_box(s.generate_site(&["RootPage"]).unwrap().pages.len()));
    });
    group.finish();
}

criterion_group!(benches, bench_wrapper, bench_pipeline, bench_stages);
criterion_main!(benches);
