//! Experiment A-INC (DESIGN.md §4): materialized vs. click-time evaluation
//! ([FER 98c], §1/§6).
//!
//! The paper's spectrum: "materialize the view completely" vs. "precompute
//! the root(s) of a Web site, then compute at click time the query that
//! obtains the information required to display the next page". We measure
//! (a) full site-graph materialization, (b) the latency of a single first
//! click, and (c) a cached re-click.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use strudel::site::{DynamicSite, PageRef};
use strudel::struql::{parse_query, EvalOptions, Query};
use strudel::synth::news;
use strudel_graph::{ddl, Graph};

fn setup(n: usize) -> (Graph, Query) {
    let data = ddl::parse(&news::generate_ddl(n, 7)).unwrap();
    let query = parse_query(news::SITE_QUERY).unwrap();
    (data, query)
}

fn bench_materialize_vs_click(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    for &n in &[100usize, 400, 1600] {
        let (data, query) = setup(n);
        group.bench_with_input(BenchmarkId::new("materialize_full", n), &n, |b, _| {
            let opts = EvalOptions::default();
            b.iter(|| black_box(query.evaluate(&data, &opts).unwrap().graph.edge_count()));
        });
        group.bench_with_input(BenchmarkId::new("first_click_front_page", n), &n, |b, _| {
            b.iter(|| {
                let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
                let root = PageRef {
                    skolem: "FrontPage".into(),
                    args: vec![],
                };
                black_box(site.expand(&root).unwrap().len())
            });
        });
        group.bench_with_input(BenchmarkId::new("cached_re_click", n), &n, |b, _| {
            let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
            let root = PageRef {
                skolem: "FrontPage".into(),
                args: vec![],
            };
            site.expand(&root).unwrap();
            b.iter(|| black_box(site.expand(&root).unwrap().len()));
        });
    }
    group.finish();
}

fn report_crossover() {
    println!("\n=== A-INC: one click vs full materialization ===");
    for &n in &[100usize, 400, 1600] {
        let (data, query) = setup(n);
        let t0 = std::time::Instant::now();
        let out = query.evaluate(&data, &EvalOptions::default()).unwrap();
        let full = t0.elapsed();
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        let root = PageRef {
            skolem: "FrontPage".into(),
            args: vec![],
        };
        let t1 = std::time::Instant::now();
        let links = site.expand(&root).unwrap();
        let click = t1.elapsed();
        println!(
            "  n={n:<5} full={full:>10?} ({} edges)   first click={click:>10?} ({} links)",
            out.graph.edge_count(),
            links.len()
        );
    }
    println!();
}

/// The maintainable (aggregate-free) fragment of the news site definition:
/// incremental maintenance rejects `COUNT` targets (a delta changes group
/// values), so A-INC2 measures the core structure.
const MAINTAINABLE_QUERY: &str = r#"
CREATE FrontPage()
{
  WHERE Articles(a), a -> l -> v
  CREATE ArticlePage(a)
  LINK ArticlePage(a) -> l -> v,
       FrontPage() -> "Article" -> ArticlePage(a)
  {
    WHERE l = "section"
    CREATE SectionPage(v)
    LINK SectionPage(v) -> "Story" -> ArticlePage(a),
         FrontPage() -> "Section" -> SectionPage(v)
  }
}
"#;

/// A-INC2: incremental view maintenance vs full rebuild per insertion.
fn bench_incremental_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_maintenance");
    group.sample_size(10);
    for &n in &[200usize, 800] {
        let data = ddl::parse(&news::generate_ddl(n, 7)).unwrap();
        let query = parse_query(MAINTAINABLE_QUERY).unwrap();
        group.bench_with_input(
            BenchmarkId::new("single_insert_incremental", n),
            &n,
            |b, _| {
                let mut data = ddl::parse(&news::generate_ddl(n, 7)).unwrap();
                let mut inc =
                    strudel::site::IncrementalSite::new(&data, &query, EvalOptions::default())
                        .unwrap();
                let article = data.nodes()[0];
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    inc.add_edge(
                        &mut data,
                        article,
                        "tag",
                        strudel::graph::Value::Int(i as i64),
                    )
                    .unwrap();
                    black_box(inc.site.edge_count())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("single_insert_full_rebuild", n),
            &n,
            |b, _| {
                let mut data = ddl::parse(&news::generate_ddl(n, 7)).unwrap();
                let article = data.nodes()[0];
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    data.add_edge_str(article, "tag", strudel::graph::Value::Int(i as i64))
                        .unwrap();
                    black_box(
                        query
                            .evaluate(&data, &EvalOptions::default())
                            .unwrap()
                            .graph
                            .edge_count(),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("insert_delete_pair_incremental", n),
            &n,
            |b, _| {
                let mut data = ddl::parse(&news::generate_ddl(n, 7)).unwrap();
                let mut inc =
                    strudel::site::IncrementalSite::new(&data, &query, EvalOptions::default())
                        .unwrap();
                let article = data.nodes()[0];
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    let v = strudel::graph::Value::Int(i as i64);
                    inc.add_edge(&mut data, article, "tag", v.clone()).unwrap();
                    inc.remove_edge(&mut data, article, "tag", &v).unwrap();
                    black_box(inc.site.edge_count())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("insert_delete_pair_full_rebuild", n),
            &n,
            |b, _| {
                let mut data = ddl::parse(&news::generate_ddl(n, 7)).unwrap();
                let article = data.nodes()[0];
                let opts = EvalOptions::default();
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    let v = strudel::graph::Value::Int(i as i64);
                    data.add_edge_str(article, "tag", v.clone()).unwrap();
                    black_box(query.evaluate(&data, &opts).unwrap().graph.edge_count());
                    data.remove_edge_str(article, "tag", &v).unwrap();
                    black_box(query.evaluate(&data, &opts).unwrap().graph.edge_count())
                });
            },
        );
        let _ = data;
    }
    group.finish();
}

fn median_us(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// A-INC2 report: median per-change latency of incremental propagation vs a
/// full rebuild, for insertions *and* deletions on the Fig. 8 news corpus.
/// Writes `BENCH_incremental.json` at the repository root.
fn report_maintenance() {
    use std::fmt::Write as _;
    use std::time::Instant;
    use strudel::graph::Value;

    let query = parse_query(MAINTAINABLE_QUERY).unwrap();
    let opts = EvalOptions::default();
    println!("=== A-INC2: per-change maintenance, delta vs rebuild (median µs) ===");
    let mut rows: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
    for &n in &[200usize, 800] {
        let mut data = ddl::parse(&news::generate_ddl(n, 7)).unwrap();
        let mut inc =
            strudel::site::IncrementalSite::new(&data, &query, EvalOptions::default()).unwrap();
        let article = data.nodes()[0];

        let (mut d_ins, mut d_del) = (Vec::new(), Vec::new());
        for i in 0..40i64 {
            let v = Value::Int(i);
            let t = Instant::now();
            inc.add_edge(&mut data, article, "tag", v.clone()).unwrap();
            d_ins.push(t.elapsed().as_secs_f64() * 1e6);
            let t = Instant::now();
            inc.remove_edge(&mut data, article, "tag", &v).unwrap();
            d_del.push(t.elapsed().as_secs_f64() * 1e6);
        }

        let (mut r_ins, mut r_del) = (Vec::new(), Vec::new());
        for i in 0..9i64 {
            let v = Value::Int(1000 + i);
            data.add_edge_str(article, "tag", v.clone()).unwrap();
            let t = Instant::now();
            black_box(query.evaluate(&data, &opts).unwrap().graph.edge_count());
            r_ins.push(t.elapsed().as_secs_f64() * 1e6);
            data.remove_edge_str(article, "tag", &v).unwrap();
            let t = Instant::now();
            black_box(query.evaluate(&data, &opts).unwrap().graph.edge_count());
            r_del.push(t.elapsed().as_secs_f64() * 1e6);
        }

        let row = (
            n,
            median_us(d_ins),
            median_us(d_del),
            median_us(r_ins),
            median_us(r_del),
        );
        println!(
            "  n={:<5} delta insert={:>9.1}  delta delete={:>9.1}  rebuild insert={:>9.1}  rebuild delete={:>9.1}",
            row.0, row.1, row.2, row.3, row.4
        );
        rows.push(row);
    }

    let mut json = String::from("{\n");
    for (i, (n, di, dd, ri, rd)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "  \"n{n}\": {{\"delta_insert_us\": {di:.1}, \"delta_delete_us\": {dd:.1}, \
             \"rebuild_insert_us\": {ri:.1}, \"rebuild_delete_us\": {rd:.1}}}{comma}"
        );
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    std::fs::write(path, &json).unwrap();
    println!("\nwrote {path}\n");
}

fn benches_with_report(c: &mut Criterion) {
    report_crossover();
    report_maintenance();
    bench_materialize_vs_click(c);
    bench_incremental_maintenance(c);
}

criterion_group!(benches, benches_with_report);
criterion_main!(benches);
