//! Experiment A-INC (DESIGN.md §4): materialized vs. click-time evaluation
//! ([FER 98c], §1/§6).
//!
//! The paper's spectrum: "materialize the view completely" vs. "precompute
//! the root(s) of a Web site, then compute at click time the query that
//! obtains the information required to display the next page". We measure
//! (a) full site-graph materialization, (b) the latency of a single first
//! click, and (c) a cached re-click.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use strudel::site::{DynamicSite, PageRef};
use strudel::struql::{parse_query, EvalOptions, Query};
use strudel::synth::news;
use strudel_graph::{ddl, Graph};

fn setup(n: usize) -> (Graph, Query) {
    let data = ddl::parse(&news::generate_ddl(n, 7)).unwrap();
    let query = parse_query(news::SITE_QUERY).unwrap();
    (data, query)
}

fn bench_materialize_vs_click(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    for &n in &[100usize, 400, 1600] {
        let (data, query) = setup(n);
        group.bench_with_input(BenchmarkId::new("materialize_full", n), &n, |b, _| {
            let opts = EvalOptions::default();
            b.iter(|| black_box(query.evaluate(&data, &opts).unwrap().graph.edge_count()));
        });
        group.bench_with_input(BenchmarkId::new("first_click_front_page", n), &n, |b, _| {
            b.iter(|| {
                let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
                let root = PageRef {
                    skolem: "FrontPage".into(),
                    args: vec![],
                };
                black_box(site.expand(&root).unwrap().len())
            });
        });
        group.bench_with_input(BenchmarkId::new("cached_re_click", n), &n, |b, _| {
            let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
            let root = PageRef {
                skolem: "FrontPage".into(),
                args: vec![],
            };
            site.expand(&root).unwrap();
            b.iter(|| black_box(site.expand(&root).unwrap().len()));
        });
    }
    group.finish();
}

fn report_crossover() {
    println!("\n=== A-INC: one click vs full materialization ===");
    for &n in &[100usize, 400, 1600] {
        let (data, query) = setup(n);
        let t0 = std::time::Instant::now();
        let out = query.evaluate(&data, &EvalOptions::default()).unwrap();
        let full = t0.elapsed();
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        let root = PageRef {
            skolem: "FrontPage".into(),
            args: vec![],
        };
        let t1 = std::time::Instant::now();
        let links = site.expand(&root).unwrap();
        let click = t1.elapsed();
        println!(
            "  n={n:<5} full={full:>10?} ({} edges)   first click={click:>10?} ({} links)",
            out.graph.edge_count(),
            links.len()
        );
    }
    println!();
}

/// The maintainable (aggregate-free) fragment of the news site definition:
/// incremental maintenance rejects `COUNT` targets (a delta changes group
/// values), so A-INC2 measures the core structure.
const MAINTAINABLE_QUERY: &str = r#"
CREATE FrontPage()
{
  WHERE Articles(a), a -> l -> v
  CREATE ArticlePage(a)
  LINK ArticlePage(a) -> l -> v,
       FrontPage() -> "Article" -> ArticlePage(a)
  {
    WHERE l = "section"
    CREATE SectionPage(v)
    LINK SectionPage(v) -> "Story" -> ArticlePage(a),
         FrontPage() -> "Section" -> SectionPage(v)
  }
}
"#;

/// A-INC2: incremental view maintenance vs full rebuild per insertion.
fn bench_incremental_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_maintenance");
    group.sample_size(10);
    for &n in &[200usize, 800] {
        let data = ddl::parse(&news::generate_ddl(n, 7)).unwrap();
        let query = parse_query(MAINTAINABLE_QUERY).unwrap();
        group.bench_with_input(
            BenchmarkId::new("single_insert_incremental", n),
            &n,
            |b, _| {
                let mut data = ddl::parse(&news::generate_ddl(n, 7)).unwrap();
                let mut inc =
                    strudel::site::IncrementalSite::new(&data, &query, EvalOptions::default())
                        .unwrap();
                let article = data.nodes()[0];
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    inc.add_edge(
                        &mut data,
                        article,
                        "tag",
                        strudel::graph::Value::Int(i as i64),
                    )
                    .unwrap();
                    black_box(inc.site.edge_count())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("single_insert_full_rebuild", n),
            &n,
            |b, _| {
                let mut data = ddl::parse(&news::generate_ddl(n, 7)).unwrap();
                let article = data.nodes()[0];
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    data.add_edge_str(article, "tag", strudel::graph::Value::Int(i as i64))
                        .unwrap();
                    black_box(
                        query
                            .evaluate(&data, &EvalOptions::default())
                            .unwrap()
                            .graph
                            .edge_count(),
                    )
                });
            },
        );
        let _ = data;
    }
    group.finish();
}

fn benches_with_report(c: &mut Criterion) {
    report_crossover();
    bench_materialize_vs_click(c);
    bench_incremental_maintenance(c);
}

criterion_group!(benches, benches_with_report);
criterion_main!(benches);
