//! Evaluator microbenches: filter-heavy, join-heavy, and RPE-heavy
//! condition pipelines over fixed data graphs, timed in isolation from
//! construction and HTML generation.
//!
//! Besides the printed table, the harness writes a machine-readable
//! `BENCH_eval.json` (bench name → median µs) at the repository root so
//! future changes can track the evaluator's perf trajectory.

use std::fmt::Write as _;
use std::time::Instant;
use strudel::synth::{news, org};
use strudel_graph::{ddl, Graph};
use strudel_struql::{parse_query, EvalOptions, Optimizer, Query};
use strudel_wrappers::{bibtex, relational};

const WARMUP: usize = 3;
const ITERS: usize = 30;

/// The org data graph (people + departments + publications).
fn org_graph(n: usize) -> Graph {
    let src = org::generate(n, 1997);
    let mut g = Graph::standalone();
    let people = relational::Table::from_csv("People", &src.people_csv).unwrap();
    let depts = relational::Table::from_csv("Departments", &src.departments_csv).unwrap();
    relational::load_into(&mut g, &[people, depts], &[]).unwrap();
    bibtex::load_into(&mut g, &src.publications_bib).unwrap();
    g
}

/// The news data graph (articles with sections, ranks, and related links).
fn news_graph(n: usize) -> Graph {
    ddl::parse(&news::generate_ddl(n, 42)).unwrap()
}

/// Median wall time of one full evaluation, in microseconds. A fresh
/// `EvalOptions` per iteration keeps the evaluator-lifetime memo caches
/// cold, so the measurement covers the whole pipeline each time.
fn run(g: &Graph, q: &Query, optimizer: Optimizer) -> f64 {
    let mut times: Vec<f64> = Vec::with_capacity(ITERS);
    for i in 0..WARMUP + ITERS {
        let opts = EvalOptions::with_optimizer(optimizer);
        let t0 = Instant::now();
        let out = q.evaluate(g, &opts).unwrap();
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box(out.stats.intermediate_rows);
        if i >= WARMUP {
            times.push(dt);
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let mid = times.len() / 2;
    if times.len().is_multiple_of(2) {
        (times[mid - 1] + times[mid]) / 2.0
    } else {
        times[mid]
    }
}

fn main() {
    let org = org_graph(300);
    let news = news_graph(400);

    let cases: Vec<(&str, &Graph, Query, Optimizer)> = vec![
        // Filter-heavy: one binder, then a chain of pure filters applied as
        // in-place semi-joins over the bindings slab.
        (
            "filter_compare_chain",
            &org,
            parse_query(
                r#"WHERE Publications(x), x -> "year" -> y,
                         y >= 1994, y <= 1997, y != 1995,
                         x -> "title" -> t, t != "none"
                   COLLECT Hits(x)"#,
            )
            .unwrap(),
            Optimizer::CostBased,
        ),
        (
            "filter_label_in_set",
            &news,
            parse_query(
                r#"WHERE Articles(a), a -> l -> v,
                         l in {"section", "byline"}
                   COLLECT Pairs(a)"#,
            )
            .unwrap(),
            Optimizer::CostBased,
        ),
        // Join-heavy: bound-variable equi-joins resolved with probe tables
        // over edge targets.
        (
            "join_two_way_hash",
            &org,
            parse_query(
                r#"WHERE x -> "author" -> a, m -> "name" -> a,
                         Publications(x), People(m)
                   COLLECT Pairs(x)"#,
            )
            .unwrap(),
            Optimizer::CostBased,
        ),
        (
            "join_adversarial_naive",
            &org,
            parse_query(
                r#"WHERE x -> "author" -> a, m -> "name" -> a,
                         m -> "title" -> "Director",
                         Publications(x), People(m),
                         x -> "year" -> y, y >= 1996
                   COLLECT Hits(x)"#,
            )
            .unwrap(),
            Optimizer::Naive,
        ),
        // RPE-heavy: compiled-automaton paths with evaluator-wide memo
        // caches for reachability.
        (
            "rpe_star_reachability",
            &news,
            parse_query(r#"WHERE Articles(a), a -> ("related")* -> b COLLECT Reach(b)"#).unwrap(),
            Optimizer::CostBased,
        ),
        (
            "rpe_seq_alt_paths",
            &news,
            parse_query(
                r#"WHERE Articles(a), a -> ("related" . ("section" | "byline")) -> v
                   COLLECT Ends(v)"#,
            )
            .unwrap(),
            Optimizer::CostBased,
        ),
    ];

    let mut rows: Vec<(String, f64)> = Vec::new();
    println!("=== evaluator microbenches (median of {ITERS} iters) ===");
    for (name, g, q, opt) in &cases {
        let us = run(g, q, *opt);
        println!("{name:<24} {us:>10.1} µs");
        rows.push((name.to_string(), us));
    }

    let mut json = String::from("{\n");
    for (i, (name, us)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(json, "  \"{name}\": {us:.1}{comma}");
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    std::fs::write(path, &json).unwrap();
    println!("\nwrote {path}");
}
