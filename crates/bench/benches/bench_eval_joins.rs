//! Evaluator microbenches: filter-heavy, join-heavy, and RPE-heavy
//! condition pipelines over fixed data graphs, timed in isolation from
//! construction and HTML generation.
//!
//! Besides the printed table, the harness writes a machine-readable
//! `BENCH_eval.json` (bench name → median µs) at the repository root so
//! future changes can track the evaluator's perf trajectory.

use std::fmt::Write as _;
use std::time::Instant;
use strudel::synth::{news, org};
use strudel_graph::fxhash::FxHashSet;
use strudel_graph::{ddl, Graph, Value};
use strudel_struql::{parse_query, EvalOptions, Optimizer, PhysicalPlan, PlanCache, Query};
use strudel_wrappers::{bibtex, relational};

const WARMUP: usize = 3;
const ITERS: usize = 30;

/// The org data graph (people + departments + publications).
fn org_graph(n: usize) -> Graph {
    let src = org::generate(n, 1997);
    let mut g = Graph::standalone();
    let people = relational::Table::from_csv("People", &src.people_csv).unwrap();
    let depts = relational::Table::from_csv("Departments", &src.departments_csv).unwrap();
    relational::load_into(&mut g, &[people, depts], &[]).unwrap();
    bibtex::load_into(&mut g, &src.publications_bib).unwrap();
    g
}

/// The news data graph (articles with sections, ranks, and related links).
fn news_graph(n: usize) -> Graph {
    ddl::parse(&news::generate_ddl(n, 42)).unwrap()
}

/// A skewed "hub" graph whose per-label averages mislead the static
/// planner. The `Big` collection holds only the 10 hub nodes, whose `a`
/// fan-out (200) dwarfs the label's global average (~1.1, dragged down by
/// 20k one-edge filler nodes), so the estimated row count after the first
/// expansion is off by ~200×. The two follow-up labels are inverted the
/// same way: `x1` looks cheap (avg ~3.6) but expands 30× on the rows that
/// actually flow, while `x2` looks expensive (avg ~5) but filters them to
/// 5%. A static cost-based plan therefore runs `x1` before `x2`; adaptive
/// re-optimization measures the true multipliers and swaps them.
fn skew_graph() -> Graph {
    let mut g = Graph::standalone();
    for h in 0..10 {
        let hub = g.new_node(Some(&format!("hub{h}")));
        g.add_to_collection_str("Big", Value::Node(hub));
        for t in 0..200 {
            let tgt = g.new_node(Some(&format!("t{h}_{t}")));
            g.add_edge_str(hub, "a", Value::Node(tgt)).unwrap();
            for u in 0..30 {
                g.add_edge_str(tgt, "x1", Value::str(format!("u{h}_{t}_{u}")))
                    .unwrap();
            }
            if t % 20 == 0 {
                g.add_edge_str(tgt, "x2", Value::str("hit")).unwrap();
            }
        }
    }
    for i in 0..20_000 {
        let f = g.new_node(Some(&format!("f{i}")));
        g.add_edge_str(f, "a", Value::str("fa")).unwrap();
        g.add_edge_str(f, "x1", Value::str("fx")).unwrap();
        for j in 0..5 {
            g.add_edge_str(f, "x2", Value::str(format!("w{j}")))
                .unwrap();
        }
    }
    g
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.total_cmp(b));
    let mid = times.len() / 2;
    if times.len().is_multiple_of(2) {
        (times[mid - 1] + times[mid]) / 2.0
    } else {
        times[mid]
    }
}

/// Median wall time of one full evaluation, in microseconds, with options
/// built fresh per iteration by `mk` so the evaluator-lifetime memo caches
/// (and, unless `mk` shares one, the plan cache) stay cold and the
/// measurement covers the whole pipeline each time.
fn run_with(g: &Graph, q: &Query, mk: impl Fn() -> EvalOptions) -> f64 {
    let mut times: Vec<f64> = Vec::with_capacity(ITERS);
    for i in 0..WARMUP + ITERS {
        let opts = mk();
        let t0 = Instant::now();
        let out = q.evaluate(g, &opts).unwrap();
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box(out.stats.intermediate_rows);
        if i >= WARMUP {
            times.push(dt);
        }
    }
    median(times)
}

fn run(g: &Graph, q: &Query, optimizer: Optimizer) -> f64 {
    run_with(g, q, || EvalOptions::with_optimizer(optimizer))
}

/// Planner microbench: the per-conjunction cost of a cold cost-based
/// compile (statistics + DP join ordering + operator selection) versus a
/// warm plan-cache probe, in microseconds. Timed in batches of `REPS` so
/// sub-microsecond probes still resolve.
fn bench_planner(g: &Graph, q: &Query) -> (f64, f64) {
    const REPS: usize = 100;
    let conds = &q.root.where_;
    let bound = FxHashSet::default();

    let mut cold: Vec<f64> = Vec::new();
    for i in 0..WARMUP + ITERS {
        let t0 = Instant::now();
        for _ in 0..REPS {
            std::hint::black_box(PhysicalPlan::compile(
                conds,
                &bound,
                g,
                Optimizer::CostBased,
            ));
        }
        if i >= WARMUP {
            cold.push(t0.elapsed().as_secs_f64() * 1e6 / REPS as f64);
        }
    }

    let cache = PlanCache::default();
    cache.get_or_compile(conds, &bound, g, Optimizer::CostBased);
    let mut warm: Vec<f64> = Vec::new();
    for i in 0..WARMUP + ITERS {
        let t0 = Instant::now();
        for _ in 0..REPS {
            std::hint::black_box(cache.get_or_compile(conds, &bound, g, Optimizer::CostBased));
        }
        if i >= WARMUP {
            warm.push(t0.elapsed().as_secs_f64() * 1e6 / REPS as f64);
        }
    }
    (median(cold), median(warm))
}

fn main() {
    let org = org_graph(300);
    let news = news_graph(400);

    let cases: Vec<(&str, &Graph, Query, Optimizer)> = vec![
        // Filter-heavy: one binder, then a chain of pure filters applied as
        // in-place semi-joins over the bindings slab.
        (
            "filter_compare_chain",
            &org,
            parse_query(
                r#"WHERE Publications(x), x -> "year" -> y,
                         y >= 1994, y <= 1997, y != 1995,
                         x -> "title" -> t, t != "none"
                   COLLECT Hits(x)"#,
            )
            .unwrap(),
            Optimizer::CostBased,
        ),
        (
            "filter_label_in_set",
            &news,
            parse_query(
                r#"WHERE Articles(a), a -> l -> v,
                         l in {"section", "byline"}
                   COLLECT Pairs(a)"#,
            )
            .unwrap(),
            Optimizer::CostBased,
        ),
        // Join-heavy: bound-variable equi-joins resolved with probe tables
        // over edge targets.
        (
            "join_two_way_hash",
            &org,
            parse_query(
                r#"WHERE x -> "author" -> a, m -> "name" -> a,
                         Publications(x), People(m)
                   COLLECT Pairs(x)"#,
            )
            .unwrap(),
            Optimizer::CostBased,
        ),
        (
            "join_adversarial_naive",
            &org,
            parse_query(
                r#"WHERE x -> "author" -> a, m -> "name" -> a,
                         m -> "title" -> "Director",
                         Publications(x), People(m),
                         x -> "year" -> y, y >= 1996
                   COLLECT Hits(x)"#,
            )
            .unwrap(),
            Optimizer::Naive,
        ),
        // RPE-heavy: compiled-automaton paths with evaluator-wide memo
        // caches for reachability.
        (
            "rpe_star_reachability",
            &news,
            parse_query(r#"WHERE Articles(a), a -> ("related")* -> b COLLECT Reach(b)"#).unwrap(),
            Optimizer::CostBased,
        ),
        (
            "rpe_seq_alt_paths",
            &news,
            parse_query(
                r#"WHERE Articles(a), a -> ("related" . ("section" | "byline")) -> v
                   COLLECT Ends(v)"#,
            )
            .unwrap(),
            Optimizer::CostBased,
        ),
    ];

    let mut rows: Vec<(String, f64)> = Vec::new();
    println!("=== evaluator microbenches (median of {ITERS} iters) ===");
    for (name, g, q, opt) in &cases {
        let us = run(g, q, *opt);
        println!("{name:<24} {us:>10.1} µs");
        rows.push((name.to_string(), us));
    }

    // Adaptive-vs-static regime: a hub-skewed graph where per-label
    // averages mislead every static plan (heuristic and cost-based alike);
    // adaptive re-optimization recovers from runtime row counts.
    let skew = skew_graph();
    let skew_q = parse_query(
        r#"WHERE Big(x), x -> "a" -> y, y -> "x1" -> u, y -> "x2" -> w
           COLLECT Hits(x)"#,
    )
    .unwrap();
    let skew_at = |opt: Optimizer, adaptive: bool| {
        run_with(&skew, &skew_q, || {
            let mut o = EvalOptions::with_optimizer(opt);
            o.adaptive = adaptive;
            o
        })
    };
    for (name, opt, adaptive) in [
        ("skew_heuristic", Optimizer::Heuristic, false),
        ("skew_cost_static", Optimizer::CostBased, false),
        ("skew_cost_adaptive", Optimizer::CostBased, true),
    ] {
        let us = skew_at(opt, adaptive);
        println!("{name:<24} {us:>10.1} µs");
        rows.push((name.to_string(), us));
    }

    // Plan-compile vs plan-cache-hit regime on the widest query (7
    // conditions, so the DP join-order search really runs).
    let (compile_us, hit_us) = bench_planner(&org, &cases[3].2);
    println!("{:<24} {compile_us:>10.1} µs", "plan_compile_cold");
    println!("{:<24} {hit_us:>10.1} µs", "plan_cache_hit");
    rows.push(("plan_compile_cold".to_string(), compile_us));
    rows.push(("plan_cache_hit".to_string(), hit_us));

    let mut json = String::from("{\n");
    for (i, (name, us)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(json, "  \"{name}\": {us:.1}{comma}");
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    std::fs::write(path, &json).unwrap();
    println!("\nwrote {path}");
}
