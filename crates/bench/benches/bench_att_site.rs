//! Experiment T-ATT (DESIGN.md §4): the AT&T organization site of §5.1.
//!
//! Measures (a) data-graph integration from four sources, (b) site-graph
//! construction at member counts around the paper's "approximately 400
//! users", (c) HTML generation, and (d) the cost of producing the external
//! version — which shares the site graph and only swaps templates, the
//! paper's headline maintainability claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use strudel::synth::org;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("att_site_build");
    group.sample_size(10);
    for &n in &[100usize, 200, 400] {
        let src = org::generate(n, 1997);
        group.bench_with_input(
            BenchmarkId::new("warehouse+site_graph", n),
            &src,
            |b, src| {
                b.iter(|| {
                    let mut s = org::system(src).unwrap();
                    let build = s.build_site().unwrap();
                    black_box(build.graph.edge_count())
                });
            },
        );
    }
    group.finish();
}

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("att_site_generate");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let src = org::generate(n, 1997);
        group.bench_with_input(BenchmarkId::new("html_internal", n), &src, |b, src| {
            let mut s = org::system(src).unwrap();
            b.iter(|| {
                let site = s.generate_site(&["RootPage"]).unwrap();
                black_box(site.pages.len())
            });
        });
        group.bench_with_input(
            BenchmarkId::new("html_internal_parallel4", n),
            &src,
            |b, src| {
                let mut s = org::system(src).unwrap();
                b.iter(|| {
                    let site = s.generate_site_parallel(&["RootPage"], 4).unwrap();
                    black_box(site.pages.len())
                });
            },
        );
    }
    group.finish();
}

fn bench_external_version(c: &mut Criterion) {
    let mut group = c.benchmark_group("att_site_external_version");
    group.sample_size(10);
    let src = org::generate(400, 1997);

    // Building the external site with the existing system: swap 5 templates
    // and regenerate — no new queries (the paper's claim: "building the
    // external version was trivial").
    group.bench_function("template_swap_only", |b| {
        let mut s = org::system(&src).unwrap();
        s.build_site().unwrap(); // warehouse warm
        b.iter(|| {
            *s.templates_mut() = org::templates_external().unwrap();
            let site = s.generate_site(&["RootPage"]).unwrap();
            black_box(site.pages.len())
        });
    });

    // The alternative a procedural shop faces: rebuild everything.
    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            let mut s = org::system(&src).unwrap();
            *s.templates_mut() = org::templates_external().unwrap();
            let site = s.generate_site(&["RootPage"]).unwrap();
            black_box(site.pages.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_generate, bench_external_version);
criterion_main!(benches);
