//! Experiment A-SERVE (DESIGN.md §4): click-time serving latency over HTTP.
//!
//! STRUDEL's click-time evaluation ([FER 98c] §6) answers each page request
//! by running the LINK clauses that govern the page. This bench measures the
//! end-to-end request latency of [`strudel::serve::Server`] — TCP connect,
//! request, full response — under three cache regimes:
//!
//! * `hot` — the page's clause results are cached; the request is pure
//!   lookup + rendering.
//! * `cold` — the cache is cleared before every request; each click re-runs
//!   the governing sub-queries.
//! * `post_invalidation` — a data-graph edge delta invalidates the affected
//!   keys before every request (the steady state of a site whose sources
//!   keep changing).
//! * `keepalive` — like `hot`, but over one reused HTTP/1.1 connection:
//!   no connect/close per request, the event loop's keep-alive path
//!   (DESIGN.md §11). The delta against `hot` is the TCP setup cost.
//!
//! Each regime runs on a 1-thread and a 4-thread worker pool. On a single
//! CPU the pools perform alike for a lone client; the 4-thread numbers only
//! separate under concurrent load (see the `concurrent_requests_match_serial_answers`
//! test for the correctness side of that story).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::TcpStream;
use strudel::serve::{page_url, Server, ServerConfig};
use strudel::site::{Delta, DynamicSite, PageRef};
use strudel::struql::{parse_query, EvalOptions, Query};
use strudel::synth::news;
use strudel_graph::{ddl, Graph};

const SEED: u64 = 7;

fn setup(n: usize) -> (Graph, Query) {
    let data = ddl::parse(&news::generate_ddl(n, SEED)).unwrap();
    let query = parse_query(news::SITE_QUERY).unwrap();
    (data, query)
}

/// One full HTTP exchange; returns the response size in bytes.
fn fetch(addr: &str, path: &str) -> usize {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut body = Vec::new();
    stream.read_to_end(&mut body).unwrap();
    body.len()
}

/// One request/response on an already-open keep-alive connection; returns
/// the response size in bytes. The response is `Content-Length`-framed, so
/// read exactly head + body and leave the connection reusable.
fn fetch_keepalive(stream: &mut TcpStream, path: &str) -> usize {
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    let need = loop {
        if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..end]).unwrap();
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .parse()
                .unwrap();
            break end + 4 + len;
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "eof mid head");
        buf.extend_from_slice(&chunk[..n]);
    };
    while buf.len() < need {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "eof mid body");
        buf.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(
        buf.len(),
        need,
        "pipelined leftovers on a serial connection"
    );
    need
}

/// A delta that re-adds an existing article edge: the invalidation analysis
/// matches it against cached keys exactly like a genuine source update.
fn article_delta(data: &Graph) -> Delta {
    let edge = data
        .edges()
        .into_iter()
        .find(|e| data.resolve(e.label).as_ref() == "headline")
        .expect("news graph has article headlines");
    Delta::EdgeAdded {
        from: edge.from,
        label: edge.label,
        to: edge.to,
    }
}

fn bench_request_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(20);
    let (data, query) = setup(400);
    let delta = article_delta(&data);

    for &threads in &[1usize, 4] {
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        let config = ServerConfig {
            threads,
            ..ServerConfig::default()
        };
        let server = Server::bind_with(site, "127.0.0.1:0", config).unwrap();
        let addr = server.addr().unwrap().to_string();
        let front = page_url(&PageRef {
            skolem: "FrontPage".into(),
            args: vec![],
        });

        std::thread::scope(|s| {
            s.spawn(|| server.serve(None).unwrap());

            fetch(&addr, &front); // warm cache + pool
            group.bench_with_input(BenchmarkId::new("hot", threads), &threads, |b, _| {
                b.iter(|| black_box(fetch(&addr, &front)));
            });
            group.bench_with_input(BenchmarkId::new("keepalive", threads), &threads, |b, _| {
                let mut conn = TcpStream::connect(&addr).unwrap();
                b.iter(|| black_box(fetch_keepalive(&mut conn, &front)));
                write!(
                    conn,
                    "GET / HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
                )
                .unwrap();
            });
            group.bench_with_input(BenchmarkId::new("cold", threads), &threads, |b, _| {
                b.iter(|| {
                    server.site().cache_clear();
                    black_box(fetch(&addr, &front))
                });
            });
            fetch(&addr, &front);
            group.bench_with_input(
                BenchmarkId::new("post_invalidation", threads),
                &threads,
                |b, _| {
                    b.iter(|| {
                        server.site().invalidate(&delta);
                        black_box(fetch(&addr, &front))
                    });
                },
            );

            fetch(&addr, "/quit");
        });
    }
    group.finish();
}

/// Prints a summary table (mean latency per regime/pool) for EXPERIMENTS.md.
fn report_serve_latencies() {
    println!("\n=== A-SERVE: click-time request latency (news site, 400 articles) ===");
    println!(
        "{:<20} {:>8} {:>12} {:>12}",
        "regime", "threads", "mean", "resp bytes"
    );
    let (data, query) = setup(400);
    let delta = article_delta(&data);
    for &threads in &[1usize, 4] {
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        let config = ServerConfig {
            threads,
            ..ServerConfig::default()
        };
        let server = Server::bind_with(site, "127.0.0.1:0", config).unwrap();
        let addr = server.addr().unwrap().to_string();
        let front = page_url(&PageRef {
            skolem: "FrontPage".into(),
            args: vec![],
        });
        std::thread::scope(|s| {
            s.spawn(|| server.serve(None).unwrap());
            let mut bytes = fetch(&addr, &front);
            let rounds = 30u32;
            let mut time = |prep: &dyn Fn()| {
                let t0 = std::time::Instant::now();
                for _ in 0..rounds {
                    prep();
                    bytes = fetch(&addr, &front);
                }
                t0.elapsed() / rounds
            };
            let hot = time(&|| {});
            let ka = {
                let mut conn = TcpStream::connect(&addr).unwrap();
                let t0 = std::time::Instant::now();
                for _ in 0..rounds {
                    fetch_keepalive(&mut conn, &front);
                }
                t0.elapsed() / rounds
            };
            let cold = time(&|| server.site().cache_clear());
            fetch(&addr, &front);
            let inval = time(&|| {
                server.site().invalidate(&delta);
            });
            println!("{:<20} {:>8} {:>12?} {:>12}", "hot", threads, hot, bytes);
            println!(
                "{:<20} {:>8} {:>12?} {:>12}",
                "keepalive", threads, ka, bytes
            );
            println!("{:<20} {:>8} {:>12?} {:>12}", "cold", threads, cold, bytes);
            println!(
                "{:<20} {:>8} {:>12?} {:>12}",
                "post_invalidation", threads, inval, bytes
            );
            fetch(&addr, "/quit");
        });
    }
}

fn run_reports(_c: &mut Criterion) {
    report_serve_latencies();
}

criterion_group!(benches, bench_request_latency, run_reports);
criterion_main!(benches);
