//! Storage-layer benchmark (the §6 "storage representations" exercise):
//! serialization and deserialization throughput of the schema-free binary
//! format, plus DDL text as the baseline exchange format.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use strudel::synth::news;
use strudel_graph::{ddl, store, Graph};

fn data(n: usize) -> Graph {
    ddl::parse(&news::generate_ddl(n, 3)).unwrap()
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    group.sample_size(20);
    for &n in &[100usize, 1000] {
        let g = data(n);
        let mut buf = Vec::new();
        store::save(&g, &mut buf).unwrap();
        println!("storage: {n} articles -> {} bytes binary", buf.len());

        group.bench_with_input(BenchmarkId::new("save_binary", n), &g, |b, g| {
            b.iter(|| {
                let mut out = Vec::with_capacity(1 << 16);
                store::save(g, &mut out).unwrap();
                black_box(out.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("load_binary", n), &buf, |b, buf| {
            b.iter(|| black_box(store::load_slice(buf).unwrap().edge_count()));
        });

        // Baseline: the DDL text exchange format.
        let text = ddl::print(&g);
        group.bench_with_input(BenchmarkId::new("print_ddl", n), &g, |b, g| {
            b.iter(|| black_box(ddl::print(g).len()));
        });
        group.bench_with_input(BenchmarkId::new("parse_ddl", n), &text, |b, text| {
            b.iter(|| black_box(ddl::parse(text).unwrap().edge_count()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
