//! Workloads and comparison baselines for the STRUDEL reproduction's
//! benchmark harness (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for the measured results).
//!
//! The paper's Fig. 8 places web-site tools on two axes — quantity of data
//! and complexity of structure — and claims STRUDEL wins in the
//! large-data / complex-structure quadrant, WYSIWYG tools in the
//! small/simple corner, and "RDBMS + Web interface" tools in the
//! large-data / simple-structure region. To give that claim teeth we
//! implement the two comparison points as code:
//!
//! * [`baselines::procedural`] — the "set of CGI-BIN scripts" a site
//!   builder would write by hand: straight-line Rust that walks the data
//!   graph and emits the same news site the StruQL definition produces.
//!   Fast, but its "specification" is a program whose size grows with the
//!   site's structural complexity, and every variant is a new program.
//! * [`baselines::rdbms_web`] — a generic "Web interface to a database":
//!   one index page per collection and one record page per object, with no
//!   inter-page structure beyond table → row. Its specification size is
//!   constant, but so is its structure — it *cannot* express the
//!   cross-linked structure STRUDEL's queries define.

#![warn(missing_docs)]

pub mod baselines;
pub mod fig8;
