//! Hand-coded comparison baselines for Fig. 8.

use std::collections::BTreeMap;
use strudel_graph::{Graph, Oid, Value};
use strudel_template::gen::escape;

/// The procedural (CGI-script-style) generator for the news site: the same
/// pages the `synth::news` StruQL definition + templates produce, written
/// as a straight-line program over the data graph. Spec complexity scales
/// with the number of distinct page kinds and link kinds — the paper's
/// point is not that this is slow, but that it is *this program* you must
/// rewrite for every structural change or site variant.
pub mod procedural {
    use super::*;

    /// Generates the full news site: front page, section pages, article
    /// pages, with summaries inlined on section pages.
    pub fn news_site(data: &Graph) -> BTreeMap<String, String> {
        let interner = data.universe().interner();
        let sym = |s: &str| interner.get(s);
        let reader = data.reader();
        let mut pages = BTreeMap::new();

        let articles: Vec<Oid> = data
            .collection_str("Articles")
            .map(|c| c.items().iter().filter_map(Value::as_node).collect())
            .unwrap_or_default();

        let attr_str = |n: Oid, a: &str| -> Option<String> {
            sym(a).and_then(|s| reader.attr(n, s)).map(|v| match v {
                Value::Str(t) => escape(t),
                other => escape(&other.to_string()),
            })
        };
        let attrs = |n: Oid, a: &str| -> Vec<Value> {
            sym(a)
                .map(|s| reader.attr_values(n, s).cloned().collect())
                .unwrap_or_default()
        };

        // Bucket articles by section.
        let mut sections: BTreeMap<String, Vec<Oid>> = BTreeMap::new();
        for &a in &articles {
            for v in attrs(a, "section") {
                if let Some(t) = v.text() {
                    sections.entry(t.to_string()).or_default().push(a);
                }
            }
        }

        let article_file = |a: Oid| format!("article_{}.html", a.0);

        // Article pages.
        for &a in &articles {
            let mut html = String::from("<html><body>");
            if let Some(h) = attr_str(a, "headline") {
                html.push_str(&format!("<h1>{h}</h1>"));
            }
            if let (Some(by), Some(date)) = (attr_str(a, "byline"), attr_str(a, "date")) {
                html.push_str(&format!("<p>By {by} - {date}</p>"));
            }
            for img in attrs(a, "image") {
                if let Some(p) = img.text() {
                    html.push_str(&format!(
                        "<img src=\"{}\" alt=\"{}\">",
                        escape(&p),
                        escape(&p)
                    ));
                }
            }
            if let Some(body) = attrs(a, "body").first().and_then(Value::text) {
                html.push_str(&format!(
                    "<div class=\"body\"><a href=\"{0}\">{0}</a></div>",
                    escape(&body)
                ));
            }
            let related = attrs(a, "related");
            if !related.is_empty() {
                html.push_str("<h2>Related</h2><ul>");
                for r in related {
                    if let Some(t) = r.as_node() {
                        let head = attr_str(t, "headline").unwrap_or_default();
                        html.push_str(&format!(
                            "<li><a href=\"{}\">{head}</a></li>",
                            article_file(t)
                        ));
                    }
                }
                html.push_str("</ul>");
            }
            html.push_str("</body></html>");
            pages.insert(article_file(a), html);
        }

        // Section pages with inlined summaries.
        let summary_of = |a: Oid| -> String {
            let mut s = String::new();
            let head = attr_str(a, "headline").unwrap_or_default();
            s.push_str(&format!(
                "<h3><a href=\"{}\">{head}</a></h3>",
                article_file(a)
            ));
            for img in attrs(a, "image") {
                if let Some(p) = img.text() {
                    s.push_str(&format!(
                        "<img src=\"{}\" alt=\"{}\">",
                        escape(&p),
                        escape(&p)
                    ));
                }
            }
            if let Some(sum) = attr_str(a, "summary") {
                s.push_str(&format!("<p>{sum}</p>"));
            }
            s
        };
        for (name, members) in &sections {
            let mut html = format!("<html><body><h1>{}</h1>", escape(name));
            let mut sorted = members.clone();
            sorted.sort_by_key(|&a| {
                attrs(a, "editorial_rank").first().and_then(|v| match v {
                    Value::Int(i) => Some(*i),
                    _ => None,
                })
            });
            for &a in &sorted {
                html.push_str(&format!("<div class=\"story\">{}</div>", summary_of(a)));
            }
            html.push_str("</body></html>");
            pages.insert(format!("section_{name}.html"), html);
        }

        // Front page.
        let mut front = String::from("<html><body><h1>Newsday</h1>");
        let mut top: Vec<Oid> = articles
            .iter()
            .copied()
            .filter(|&a| {
                attrs(a, "editorial_rank")
                    .first()
                    .is_some_and(|v| matches!(v, Value::Int(i) if *i <= 10))
            })
            .collect();
        top.sort_by_key(|&a| {
            attrs(a, "editorial_rank").first().and_then(|v| match v {
                Value::Int(i) => Some(*i),
                _ => None,
            })
        });
        if !top.is_empty() {
            front.push_str("<h2>Top stories</h2>");
            for a in top {
                front.push_str(&format!("<div class=\"top\">{}</div>", summary_of(a)));
            }
        }
        front.push_str("<h2>Sections</h2><ul>");
        for name in sections.keys() {
            front.push_str(&format!(
                "<li><a href=\"section_{name}.html\">{}</a></li>",
                escape(name)
            ));
        }
        front.push_str("</ul></body></html>");
        pages.insert("front.html".into(), front);
        pages
    }
}

/// The "RDBMS + Web interface" baseline: a generic dump of every collection
/// to an index page and every object to a record page. Constant-size
/// specification, flat structure.
pub mod rdbms_web {
    use super::*;

    /// Generates table/record pages for every collection in the graph.
    pub fn dump_site(data: &Graph) -> BTreeMap<String, String> {
        let reader = data.reader();
        let mut pages = BTreeMap::new();
        let mut index = String::from("<html><body><h1>Database</h1><ul>");
        for &coll in data.collection_names() {
            let name = data.resolve(coll);
            index.push_str(&format!(
                "<li><a href=\"table_{name}.html\">{name}</a></li>"
            ));
            let mut table = format!("<html><body><h1>{name}</h1><ul>");
            for item in data.collection(coll).expect("listed").items() {
                if let Some(n) = item.as_node() {
                    table.push_str(&format!(
                        "<li><a href=\"record_{}.html\">record {}</a></li>",
                        n.0, n.0
                    ));
                    let mut record = format!("<html><body><h1>record {}</h1><table>", n.0);
                    for (label, value) in reader.out(n) {
                        record.push_str(&format!(
                            "<tr><td>{}</td><td>{}</td></tr>",
                            escape(&data.resolve(*label)),
                            escape(&value.to_string())
                        ));
                    }
                    record.push_str("</table></body></html>");
                    pages.insert(format!("record_{}.html", n.0), record);
                }
            }
            table.push_str("</ul></body></html>");
            pages.insert(format!("table_{name}.html"), table);
        }
        index.push_str("</ul></body></html>");
        pages.insert("index.html".into(), index);
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel::synth::news;
    use strudel_graph::ddl;

    fn news_data(n: usize) -> Graph {
        ddl::parse(&news::generate_ddl(n, 5)).unwrap()
    }

    #[test]
    fn procedural_news_site_matches_strudel_page_census() {
        let data = news_data(40);
        let hand = procedural::news_site(&data);
        let mut s = news::system(40, 5, false).unwrap();
        let declarative = s.generate_site(&["FrontPage"]).unwrap();
        // Same number of article pages; front + per-section pages.
        let hand_articles = hand.keys().filter(|k| k.starts_with("article_")).count();
        let decl_articles = declarative
            .pages
            .keys()
            .filter(|k| k.starts_with("articlepage"))
            .count();
        assert_eq!(hand_articles, decl_articles);
        let hand_sections = hand.keys().filter(|k| k.starts_with("section_")).count();
        let decl_sections = declarative
            .pages
            .keys()
            .filter(|k| k.starts_with("sectionpage"))
            .count();
        assert_eq!(hand_sections, decl_sections);
    }

    #[test]
    fn procedural_site_is_internally_linked() {
        let data = news_data(20);
        let pages = procedural::news_site(&data);
        for (name, html) in &pages {
            for href in html.split("href=\"").skip(1) {
                let target = &href[..href.find('"').unwrap()];
                if target.ends_with(".html") {
                    assert!(
                        pages.contains_key(target),
                        "{name} links to missing {target}"
                    );
                }
            }
        }
    }

    #[test]
    fn rdbms_dump_covers_every_object() {
        let data = news_data(15);
        let pages = rdbms_web::dump_site(&data);
        // index + 1 table + 15 records.
        assert_eq!(pages.len(), 1 + 1 + 15);
        assert!(pages.contains_key("index.html"));
        assert!(pages.contains_key("table_Articles.html"));
    }

    #[test]
    fn rdbms_dump_has_no_cross_structure() {
        let data = news_data(10);
        let pages = rdbms_web::dump_site(&data);
        // Record pages never link to other records: flat structure only.
        for (name, html) in &pages {
            if name.starts_with("record_") {
                assert!(!html.contains("href=\"record_"), "{name} has cross links");
            }
        }
    }
}
