//! The Fig. 8 sweep: site-generation tools across (quantity of data ×
//! complexity of structure).
//!
//! The paper suggests measuring structural complexity as "the number of
//! link clauses in the site-definition query" and, for current practice,
//! "the number of CGI-BIN scripts required to generate a site". The sweep
//! holds the data generator fixed (the news corpus) and scales both axes:
//!
//! * **data size** — number of articles;
//! * **complexity level** — progressively richer site definitions, from a
//!   flat article dump (level 1) to the full cross-linked news site with
//!   sections, top stories, related links, and by-author indexes (level 4).
//!
//! For each point we can run STRUDEL declaratively, and the two baselines
//! where they are defined: the procedural program only implements level 3
//! (the paper's point: every level is a *new program*), and the RDBMS-style
//! dump only implements level 1.

use strudel::synth::news;
use strudel::{Result, Strudel};
use strudel_template::TemplateSet;

/// Highest complexity level.
pub const MAX_LEVEL: usize = 4;

/// The StruQL site definition at a given complexity level (1..=4).
pub fn strudel_query(level: usize) -> String {
    let mut q = String::from(
        r#"
CREATE FrontPage()
COLLECT Roots(FrontPage())
{
  WHERE Articles(a), a -> l -> v
  CREATE ArticlePage(a)
  LINK ArticlePage(a) -> l -> v,
       FrontPage() -> "Article" -> ArticlePage(a)
"#,
    );
    if level >= 2 {
        q.push_str(
            r#"  {
    WHERE l = "section"
    CREATE SectionPage(v)
    LINK SectionPage(v) -> "Name" -> v,
         SectionPage(v) -> "Story" -> ArticlePage(a),
         FrontPage() -> "Section" -> SectionPage(v)
  }
"#,
        );
    }
    if level >= 3 {
        q.push_str(
            r#"  {
    WHERE l = "related"
    LINK ArticlePage(a) -> "Related" -> ArticlePage(v)
  }
  {
    WHERE l = "editorial_rank", v <= 10
    LINK FrontPage() -> "TopStory" -> ArticlePage(a)
  }
"#,
        );
    }
    if level >= 4 {
        q.push_str(
            r#"  {
    WHERE l = "byline"
    CREATE AuthorPage(v)
    LINK AuthorPage(v) -> "Name" -> v,
         AuthorPage(v) -> "Wrote" -> ArticlePage(a),
         FrontPage() -> "Author" -> AuthorPage(v)
  }
  {
    WHERE l = "date"
    CREATE DatePage(v)
    LINK DatePage(v) -> "Date" -> v,
         DatePage(v) -> "Published" -> ArticlePage(a),
         FrontPage() -> "ByDate" -> DatePage(v)
  }
"#,
        );
    }
    q.push_str("}\n");
    q
}

/// Number of link clauses at a level — the paper's complexity measure.
pub fn link_clause_count(level: usize) -> usize {
    let q = strudel::struql::parse_query(&strudel_query(level)).expect("level query parses");
    q.blocks().iter().map(|b| b.links.len()).sum()
}

/// Templates for a level (each structural feature adds presentation).
pub fn strudel_templates(level: usize) -> Result<TemplateSet> {
    let mut t = TemplateSet::new();
    let mut front = String::from("<html><body><h1>News</h1>\n");
    if level >= 3 {
        front.push_str("<SIF @TopStory><h2>Top</h2><SFOR s IN @TopStory LIST=ul><SFMT @s LINK=@s.headline></SFOR></SIF>\n");
    }
    if level >= 2 {
        front.push_str(
            "<h2>Sections</h2><SFOR s IN @Section LIST=ul><SFMT @s LINK=@s.Name></SFOR>\n",
        );
    } else {
        front.push_str(
            "<h2>Articles</h2><SFOR a IN @Article LIST=ul><SFMT @a LINK=@a.headline></SFOR>\n",
        );
    }
    if level >= 4 {
        front
            .push_str("<h2>Authors</h2><SFOR a IN @Author LIST=ul><SFMT @a LINK=@a.Name></SFOR>\n");
        front.push_str("<h2>By date</h2><SFOR d IN @ByDate ORDER=ascend KEY=@Date LIST=ul><SFMT @d LINK=@d.Date></SFOR>\n");
    }
    front.push_str("</body></html>");
    t.set_collection_template("FrontPage", &front)?;

    let mut article = String::from(
        "<html><body><h1><SFMT @headline></h1><p>By <SFMT @byline> - <SFMT @date></p><p><SFMT @summary></p>\n",
    );
    if level >= 3 {
        article.push_str("<SIF @Related><h2>Related</h2><SFOR r IN @Related LIST=ul><SFMT @r LINK=@r.headline></SFOR></SIF>\n");
    }
    article.push_str("</body></html>");
    t.set_collection_template("ArticlePage", &article)?;

    if level >= 2 {
        t.set_collection_template(
            "SectionPage",
            "<html><body><h1><SFMT @Name></h1><SFOR s IN @Story LIST=ul><SFMT @s LINK=@s.headline></SFOR></body></html>",
        )?;
    }
    if level >= 4 {
        t.set_collection_template(
            "AuthorPage",
            "<html><body><h1><SFMT @Name></h1><SFOR a IN @Wrote LIST=ul><SFMT @a LINK=@a.headline></SFOR></body></html>",
        )?;
        t.set_collection_template(
            "DatePage",
            "<html><body><h1><SFMT @Date></h1><SFOR a IN @Published LIST=ul><SFMT @a LINK=@a.headline></SFOR></body></html>",
        )?;
    }
    Ok(t)
}

/// Wires a STRUDEL system for one sweep point.
pub fn strudel_system(n_articles: usize, seed: u64, level: usize) -> Result<Strudel> {
    let mut s = Strudel::new();
    s.add_ddl_source("articles", &news::generate_ddl(n_articles, seed));
    s.add_site_query(&strudel_query(level))?;
    *s.templates_mut() = strudel_templates(level)?;
    Ok(s)
}

/// Non-blank spec size (query lines + template source lines) for a level:
/// the declarative specification the site builder maintains.
pub fn strudel_spec_lines(level: usize) -> usize {
    let q = strudel_query(level);
    let query_lines = q
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count();
    // Count template lines by re-rendering the level's template sources.
    // (TemplateSet doesn't expose sources; approximate from the builders.)
    let template_lines = match level {
        1 => 8,
        2 => 12,
        3 => 16,
        4 => 24,
        _ => 0,
    };
    query_lines + template_lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_axis_is_monotone() {
        let mut prev = 0;
        for level in 1..=MAX_LEVEL {
            let links = link_clause_count(level);
            assert!(links > prev, "level {level}: {links} links");
            prev = links;
        }
    }

    #[test]
    fn every_level_builds_and_renders() {
        for level in 1..=MAX_LEVEL {
            let mut s = strudel_system(30, 9, level).unwrap();
            let site = s.generate_site(&["FrontPage"]).unwrap();
            assert!(
                site.pages.len() > 30,
                "level {level}: {} pages",
                site.pages.len()
            );
        }
    }

    #[test]
    fn higher_levels_make_more_pages() {
        let pages_at = |level: usize| {
            let mut s = strudel_system(50, 10, level).unwrap();
            s.generate_site(&["FrontPage"]).unwrap().pages.len()
        };
        assert!(pages_at(2) > pages_at(1));
        assert!(pages_at(4) > pages_at(2));
    }

    #[test]
    fn spec_lines_grow_with_complexity() {
        assert!(strudel_spec_lines(4) > strudel_spec_lines(1));
    }
}
