//! Integration tests for template rendering: attribute paths, nested
//! loops, variable shadowing, keyword comparison operators, and realistic
//! multi-template sites.

use strudel_graph::{FileKind, Graph, Oid, Value};
use strudel_template::{Generator, TemplateSet};

fn library() -> (Graph, Oid) {
    let mut g = Graph::standalone();
    let root = g.new_node(Some("Library()"));
    let shelf_a = g.new_node(Some("Shelf(a)"));
    let shelf_b = g.new_node(Some("Shelf(b)"));
    for (shelf, title, year) in [
        (shelf_a, "UnQL", 1996i64),
        (shelf_a, "Lorel", 1997),
        (shelf_b, "StruQL", 1997),
    ] {
        let book = g.new_node(None);
        g.add_edge_str(book, "title", title).unwrap();
        g.add_edge_str(book, "year", year).unwrap();
        g.add_edge_str(shelf, "Book", Value::Node(book)).unwrap();
    }
    g.add_edge_str(shelf_a, "name", "A").unwrap();
    g.add_edge_str(shelf_b, "name", "B").unwrap();
    g.add_edge_str(root, "Shelf", Value::Node(shelf_a)).unwrap();
    g.add_edge_str(root, "Shelf", Value::Node(shelf_b)).unwrap();
    (g, root)
}

#[test]
fn nested_sfor_with_loop_variable_paths() {
    let (g, root) = library();
    let mut ts = TemplateSet::new();
    ts.set_object_template(
        root,
        r#"<SFOR s IN @Shelf ORDER=ascend KEY=@name>[<SFMT @s.name>: <SFOR b IN @s.Book DELIM=", "><SFMT @b.title></SFOR>]</SFOR>"#,
    )
    .unwrap();
    let html = Generator::new(&g, &ts).render_fragment(root).unwrap();
    assert_eq!(html, "[A: UnQL, Lorel][B: StruQL]");
}

#[test]
fn inner_loop_variable_shadows_outer() {
    let mut g = Graph::standalone();
    let n = g.new_node(None);
    g.add_edge_str(n, "x", "outer").unwrap();
    let inner = g.new_node(None);
    g.add_edge_str(inner, "x", "inner").unwrap();
    g.add_edge_str(n, "child", Value::Node(inner)).unwrap();
    let mut ts = TemplateSet::new();
    ts.set_object_template(
        n,
        r#"<SFOR v IN @x><SFMT @v><SFOR c IN @child><SFOR v IN @c.x>/<SFMT @v></SFOR></SFOR></SFOR>"#,
    )
    .unwrap();
    let html = Generator::new(&g, &ts).render_fragment(n).unwrap();
    assert_eq!(html, "outer/inner");
}

#[test]
fn keyword_comparison_operators_in_sif() {
    let mut g = Graph::standalone();
    let n = g.new_node(None);
    g.add_edge_str(n, "year", 1997i64).unwrap();
    let mut ts = TemplateSet::new();
    ts.set_object_template(
        n,
        r#"<SIF @year GT 1996>gt</SIF><SIF @year LT 1998>lt</SIF><SIF @year GE 1997>ge</SIF><SIF @year LE 1997>le</SIF>"#,
    )
    .unwrap();
    assert_eq!(
        Generator::new(&g, &ts).render_fragment(n).unwrap(),
        "gtltgele"
    );
}

#[test]
fn attribute_path_through_multiple_hops() {
    let (g, root) = library();
    let mut ts = TemplateSet::new();
    // Root → first Shelf → first Book → title.
    ts.set_object_template(root, "<SFMT @Shelf.Book.title>")
        .unwrap();
    assert_eq!(
        Generator::new(&g, &ts).render_fragment(root).unwrap(),
        "UnQL"
    );
}

#[test]
fn sfmt_all_over_paths_collects_every_leaf() {
    let (g, root) = library();
    let mut ts = TemplateSet::new();
    ts.set_object_template(root, r#"<SFMT @Shelf.Book.title ALL DELIM="|">"#)
        .unwrap();
    assert_eq!(
        Generator::new(&g, &ts).render_fragment(root).unwrap(),
        "UnQL|Lorel|StruQL"
    );
}

#[test]
fn sort_by_numeric_key_descending() {
    let (g, root) = library();
    let mut ts = TemplateSet::new();
    ts.set_object_template(
        root,
        r#"<SFOR b IN @Shelf.Book ORDER=descend KEY=@year DELIM=" "><SFMT @b.year></SFOR>"#,
    )
    .unwrap();
    let html = Generator::new(&g, &ts).render_fragment(root).unwrap();
    assert_eq!(html, "1997 1997 1996");
}

#[test]
fn multi_page_site_with_shared_and_object_templates() {
    let (mut g, root) = library();
    let shelves: Vec<Oid> = g
        .nodes()
        .iter()
        .copied()
        .filter(|n| g.node_name(*n).is_some_and(|s| s.starts_with("Shelf")))
        .collect();
    for &s in &shelves {
        g.add_to_collection_str("Shelves", Value::Node(s));
    }
    let mut ts = TemplateSet::new();
    ts.set_object_template(
        root,
        r#"<SFOR s IN @Shelf LIST=ul><SFMT @s LINK=@s.name></SFOR>"#,
    )
    .unwrap();
    ts.set_collection_template(
        "Shelves",
        r#"<h1>Shelf <SFMT @name></h1><SFOR b IN @Book LIST=ol><SFMT @b.title> (<SFMT @b.year>)</SFOR>"#,
    )
    .unwrap();
    let site = Generator::new(&g, &ts).generate(&[root]).unwrap();
    assert_eq!(site.pages.len(), 3); // root + 2 shelves
    let shelf_a = site
        .pages
        .iter()
        .find(|(k, _)| k.contains("shelf_a"))
        .unwrap()
        .1;
    assert!(
        shelf_a.contains("<ol><li>UnQL (1996)</li><li>Lorel (1997)</li></ol>"),
        "{shelf_a}"
    );
}

#[test]
fn html_file_embeds_raw_text_file_escapes() {
    let mut g = Graph::standalone();
    let n = g.new_node(None);
    g.add_edge_str(n, "raw", Value::file(FileKind::Html, "frag.html"))
        .unwrap();
    g.add_edge_str(n, "txt", Value::file(FileKind::Text, "note.txt"))
        .unwrap();
    let mut ts = TemplateSet::new();
    ts.set_object_template(n, "<SFMT @raw>|<SFMT @txt>")
        .unwrap();
    let genr = Generator::new(&g, &ts).with_file_resolver(Box::new(|p| {
        Some(match p {
            "frag.html" => "<b>bold</b>".to_string(),
            "note.txt" => "<b>not bold</b>".to_string(),
            _ => return None,
        })
    }));
    assert_eq!(
        genr.render_fragment(n).unwrap(),
        "<b>bold</b>|&lt;b&gt;not bold&lt;/b&gt;"
    );
}

#[test]
fn empty_enumerations_render_empty() {
    let (g, root) = library();
    let mut ts = TemplateSet::new();
    ts.set_object_template(
        root,
        r#"[<SFOR x IN @Missing><SFMT @x></SFOR>][<SFMT @Missing ALL LIST=ul>]"#,
    )
    .unwrap();
    assert_eq!(
        Generator::new(&g, &ts).render_fragment(root).unwrap(),
        "[][<ul></ul>]"
    );
}

#[test]
fn deep_embed_chain_renders() {
    let mut g = Graph::standalone();
    let a = g.new_node(Some("a"));
    let b = g.new_node(Some("b"));
    let c = g.new_node(Some("c"));
    g.add_edge_str(a, "next", Value::Node(b)).unwrap();
    g.add_edge_str(b, "next", Value::Node(c)).unwrap();
    g.add_edge_str(c, "leaf", "end").unwrap();
    let mut ts = TemplateSet::new();
    ts.set_object_template(a, "a(<SFMT @next EMBED>)").unwrap();
    ts.set_object_template(b, "b(<SFMT @next EMBED>)").unwrap();
    ts.set_object_template(c, "c(<SFMT @leaf>)").unwrap();
    assert_eq!(
        Generator::new(&g, &ts).render_fragment(a).unwrap(),
        "a(b(c(end)))"
    );
}

#[test]
fn parallel_generation_matches_serial() {
    let (mut g, root) = library();
    let shelves: Vec<Oid> = g
        .nodes()
        .iter()
        .copied()
        .filter(|n| g.node_name(*n).is_some_and(|s| s.starts_with("Shelf")))
        .collect();
    for &s in &shelves {
        g.add_to_collection_str("Shelves", Value::Node(s));
    }
    let mut ts = TemplateSet::new();
    ts.set_object_template(
        root,
        r#"<SFOR s IN @Shelf LIST=ul><SFMT @s LINK=@s.name></SFOR>"#,
    )
    .unwrap();
    ts.set_collection_template(
        "Shelves",
        r#"<h1><SFMT @name></h1><SFOR b IN @Book LIST=ol><SFMT @b.title></SFOR>"#,
    )
    .unwrap();
    let serial = Generator::new(&g, &ts).generate(&[root]).unwrap();
    for threads in [1, 2, 8] {
        let parallel = Generator::new(&g, &ts)
            .generate_parallel(&[root], threads)
            .unwrap();
        assert_eq!(serial.pages, parallel.pages, "threads={threads}");
        assert_eq!(serial.page_of.len(), parallel.page_of.len());
    }
}

#[test]
fn parallel_generation_discovers_deep_chains() {
    // A linked list of pages: each wave discovers exactly one more.
    let mut g = Graph::standalone();
    let nodes: Vec<Oid> = (0..12)
        .map(|i| g.new_node(Some(&format!("page{i}"))))
        .collect();
    for w in nodes.windows(2) {
        g.add_edge_str(w[0], "next", Value::Node(w[1])).unwrap();
    }
    let mut ts = TemplateSet::new();
    ts.set_default(r#"me<SIF @next>, then <SFMT @next></SIF>"#)
        .unwrap();
    let site = Generator::new(&g, &ts)
        .generate_parallel(&[nodes[0]], 4)
        .unwrap();
    assert_eq!(site.pages.len(), 12);
    assert!(site.pages["page0.html"].contains("page1.html"));
}

#[test]
fn parallel_generation_reports_embed_errors() {
    let mut g = Graph::standalone();
    let a = g.new_node(Some("a"));
    let b = g.new_node(Some("b"));
    g.add_edge_str(a, "next", Value::Node(b)).unwrap();
    g.add_edge_str(b, "next", Value::Node(a)).unwrap();
    let mut ts = TemplateSet::new();
    ts.set_default("<SFMT @next EMBED>").unwrap();
    let err = Generator::new(&g, &ts)
        .generate_parallel(&[a], 2)
        .unwrap_err();
    assert!(err.to_string().contains("cycle"), "{err}");
}
