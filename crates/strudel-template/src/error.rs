//! Template errors.

use std::fmt;

/// Errors from parsing or rendering templates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// A syntax error inside a template directive.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A rendering error (unbound loop variable, embed cycle, …).
    Render(String),
}

impl TemplateError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        TemplateError::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn render(message: impl Into<String>) -> Self {
        TemplateError::Render(message.into())
    }
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::Parse { line, message } => {
                write!(f, "template parse error at line {line}: {message}")
            }
            TemplateError::Render(m) => write!(f, "template render error: {m}"),
        }
    }
}

impl std::error::Error for TemplateError {}

/// Result alias for template operations.
pub type Result<T> = std::result::Result<T, TemplateError>;
