//! The HTML generator (§2.5, §4).
//!
//! "Given an object and its HTML template, the HTML generator evaluates all
//! expressions in the template, concatenates them together, and produces
//! plain HTML text. It either emits the HTML value as a page or embeds the
//! value in pages that refer to that object."
//!
//! Template selection, per §4: for every internal object the generator
//! selects (1) an object-specific template, (2) the template named by the
//! object's `HTML-template` attribute, or (3) the template associated with a
//! collection the object belongs to.
//!
//! The page-vs-component decision is delayed until generation: an internal
//! object referenced by an `SFMT` becomes a *link to its own page* by
//! default, and is *embedded* when the `EMBED` directive says so.

use crate::ast::*;
use crate::error::{Result, TemplateError};
use crate::parse::parse_template;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use strudel_graph::fxhash::{FxHashMap, FxHashSet};
use strudel_graph::graph::GraphReader;
use strudel_graph::{FileKind, Graph, Oid, Value};
use strudel_obs::trace;

/// Resolves an external file reference (e.g. `abstracts/icde98.txt`) to its
/// textual contents so it can be embedded. Returning `None` falls back to a
/// link.
pub type FileResolver = Box<dyn Fn(&str) -> Option<String> + Send + Sync>;

/// The set of templates available to the generator, with the §4 selection
/// precedence.
#[derive(Default)]
pub struct TemplateSet {
    by_object: FxHashMap<Oid, Template>,
    named: BTreeMap<String, Template>,
    by_collection: Vec<(String, Template)>,
    default: Option<Template>,
}

impl TemplateSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Associates a template with a single object (highest precedence).
    pub fn set_object_template(&mut self, n: Oid, src: &str) -> Result<()> {
        self.by_object.insert(n, parse_template(src)?);
        Ok(())
    }

    /// Registers a template under a name, addressable from an object's
    /// `HTML-template` attribute.
    pub fn set_named(&mut self, name: &str, src: &str) -> Result<()> {
        self.named.insert(name.to_string(), parse_template(src)?);
        Ok(())
    }

    /// Associates a template with every member of a collection. "Associating
    /// an HTML template with a collection of objects allows the user to
    /// produce the same look and feel for related pages."
    pub fn set_collection_template(&mut self, collection: &str, src: &str) -> Result<()> {
        let t = parse_template(src)?;
        if let Some(slot) = self.by_collection.iter_mut().find(|(c, _)| c == collection) {
            slot.1 = t;
        } else {
            self.by_collection.push((collection.to_string(), t));
        }
        Ok(())
    }

    /// Sets a fallback template used when nothing else matches.
    pub fn set_default(&mut self, src: &str) -> Result<()> {
        self.default = Some(parse_template(src)?);
        Ok(())
    }

    /// Number of registered templates.
    pub fn len(&self) -> usize {
        self.by_object.len()
            + self.named.len()
            + self.by_collection.len()
            + usize::from(self.default.is_some())
    }

    /// Whether no templates are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Selects the template for object `n` per the §4 precedence rules.
    pub fn select<'a>(
        &'a self,
        graph: &Graph,
        reader: &GraphReader<'_>,
        n: Oid,
    ) -> Option<&'a Template> {
        if let Some(t) = self.by_object.get(&n) {
            return Some(t);
        }
        // The object's HTML-template attribute names a registered template.
        if let Some(sym) = graph.universe().interner().get("HTML-template") {
            if let Some(v) = reader.attr(n, sym) {
                if let Some(name) = v.text() {
                    if let Some(t) = self.named.get(&*name) {
                        return Some(t);
                    }
                }
            }
        }
        for (coll, t) in &self.by_collection {
            if let Some(c) = graph.collection_str(coll) {
                if c.contains(&Value::Node(n)) {
                    return Some(t);
                }
            }
        }
        self.default.as_ref()
    }
}

/// A generated, browsable web site: file name → HTML text.
#[derive(Debug, Default)]
pub struct GeneratedSite {
    /// The emitted pages, keyed by file name.
    pub pages: BTreeMap<String, String>,
    /// Which page realizes which node.
    pub page_of: FxHashMap<Oid, String>,
    /// Non-fatal generation warnings.
    pub warnings: Vec<String>,
    /// Per-page render wall-clock times `(file name, microseconds)`, in
    /// emission order. Populated only when [`Generator::with_timings`] was
    /// enabled; empty otherwise (the disabled path never reads the clock).
    pub render_us: Vec<(String, u64)>,
}

impl GeneratedSite {
    /// Total size of the emitted HTML, in bytes.
    pub fn total_bytes(&self) -> usize {
        self.pages.values().map(String::len).sum()
    }

    /// Writes every page into `dir` (created if missing).
    ///
    /// Each page is published atomically (temp file + rename), so a crash
    /// or concurrent reader mid-republication sees either the old page or
    /// the new one — never a torn or empty file; one directory fsync at the
    /// end makes the batch durable.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (name, html) in &self.pages {
            strudel_graph::fsio::atomic_write_in(dir, name, html.as_bytes())?;
        }
        strudel_graph::fsio::fsync_dir(dir)
    }
}

/// The HTML generator: renders a site graph through a [`TemplateSet`].
pub struct Generator<'g> {
    graph: &'g Graph,
    templates: &'g TemplateSet,
    file_resolver: Option<FileResolver>,
    timings: bool,
}

impl<'g> Generator<'g> {
    /// Creates a generator over a site graph.
    pub fn new(graph: &'g Graph, templates: &'g TemplateSet) -> Self {
        Generator {
            graph,
            templates,
            file_resolver: None,
            timings: false,
        }
    }

    /// Installs a resolver for embedding text/HTML file contents.
    pub fn with_file_resolver(mut self, resolver: FileResolver) -> Self {
        self.file_resolver = Some(resolver);
        self
    }

    /// Records per-page render times into [`GeneratedSite::render_us`].
    pub fn with_timings(mut self, on: bool) -> Self {
        self.timings = on;
        self
    }

    /// Generates the browsable site starting from `roots` (each root is
    /// realized as a page; further pages are discovered through links).
    pub fn generate(&self, roots: &[Oid]) -> Result<GeneratedSite> {
        let reader = self.graph.reader();
        let mut run = Run {
            gen: self,
            reader: &reader,
            site: GeneratedSite::default(),
            used_names: FxHashSet::default(),
            queue: Vec::new(),
            embedding: Vec::new(),
            precomputed: None,
            discovered: Vec::new(),
        };
        for &r in roots {
            run.ensure_page(r);
        }
        while let Some(n) = run.queue.pop() {
            let mut tspan = trace::span("render.page", trace::Layer::Render);
            let t = self.timings.then(std::time::Instant::now);
            let html = run.render_object(n)?;
            let file = run
                .site
                .page_of
                .get(&n)
                .expect("queued pages are named")
                .clone();
            if let Some(t) = t {
                run.site
                    .render_us
                    .push((file.clone(), t.elapsed().as_micros() as u64));
            }
            if tspan.is_live() {
                tspan.attr_text("file", &file);
                tspan.attr_u64("bytes", html.len() as u64);
            }
            run.site.pages.insert(file, html);
        }
        Ok(run.site)
    }

    /// Generates starting from every node of a named collection (the usual
    /// `COLLECT Roots(...)` convention).
    pub fn generate_from_collection(&self, collection: &str) -> Result<GeneratedSite> {
        let roots: Vec<Oid> = self
            .graph
            .collection_str(collection)
            .map(|c| c.items().iter().filter_map(Value::as_node).collect())
            .unwrap_or_default();
        self.generate(&roots)
    }

    /// Renders a single object to an HTML fragment without emitting pages
    /// for anything it links to. Useful for testing templates.
    pub fn render_fragment(&self, n: Oid) -> Result<String> {
        let reader = self.graph.reader();
        let mut run = Run {
            gen: self,
            reader: &reader,
            site: GeneratedSite::default(),
            used_names: FxHashSet::default(),
            queue: Vec::new(),
            embedding: Vec::new(),
            precomputed: None,
            discovered: Vec::new(),
        };
        run.render_object(n)
    }

    /// Like [`Generator::generate`], but renders pages on `threads` worker
    /// threads. Page rendering is read-only over the site graph, so the
    /// page set is discovered in parallel BFS waves; file names are
    /// pre-assigned deterministically (graph member order) to every object
    /// that has a template, so cross-page links are stable without shared
    /// mutable state. Output is identical to the serial generator except
    /// when two objects' sanitized names collide: both generators resolve
    /// collisions with the same `{base}-{oid}.html` scheme and never drop a
    /// page, but they may disagree on WHICH colliding member keeps the bare
    /// `{base}.html` name (the serial generator assigns names in traversal
    /// order, the parallel one in graph member order).
    pub fn generate_parallel(&self, roots: &[Oid], threads: usize) -> Result<GeneratedSite> {
        let threads = threads.max(1);
        let reader = self.graph.reader();
        // Pre-assign a file name to every object that could become a page.
        let mut names: FxHashMap<Oid, String> = FxHashMap::default();
        let mut used: FxHashSet<String> = FxHashSet::default();
        for &n in self.graph.nodes() {
            if self.templates.select(self.graph, &reader, n).is_some() {
                let base = sanitize(
                    &reader
                        .name(n)
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("node{}", n.0)),
                );
                names.insert(n, assign_unique_name(&mut used, &base, n));
            }
        }
        drop(reader);

        let mut site = GeneratedSite::default();
        let mut scheduled: FxHashSet<Oid> = FxHashSet::default();
        let mut frontier: Vec<Oid> = Vec::new();
        for &r in roots {
            if names.contains_key(&r) && scheduled.insert(r) {
                frontier.push(r);
            } else if !names.contains_key(&r) {
                site.warnings
                    .push(format!("root node {} has no template", r.0));
            }
        }

        // Capture the coordinator's trace context (if any) so render spans
        // emitted on worker threads still parent under the caller's span.
        let trace_ctx = trace::current();
        while !frontier.is_empty() {
            type Rendered = (Oid, String, Vec<Oid>, Vec<String>, u64);
            let render_chunk = |chunk: &[Oid]| -> Result<Vec<Rendered>> {
                let _trace = trace_ctx.as_ref().map(trace::enter);
                let reader = self.graph.reader();
                let mut out = Vec::with_capacity(chunk.len());
                for &n in chunk {
                    let mut run = Run {
                        gen: self,
                        reader: &reader,
                        site: GeneratedSite::default(),
                        used_names: FxHashSet::default(),
                        queue: Vec::new(),
                        embedding: Vec::new(),
                        precomputed: Some(&names),
                        discovered: Vec::new(),
                    };
                    let mut tspan = trace::span("render.page", trace::Layer::Render);
                    let t = self.timings.then(std::time::Instant::now);
                    let html = run.render_object(n)?;
                    let us = t.map_or(0, |t| t.elapsed().as_micros() as u64);
                    if tspan.is_live() {
                        tspan.attr_text("file", &names[&n]);
                        tspan.attr_u64("bytes", html.len() as u64);
                    }
                    out.push((n, html, run.discovered, run.site.warnings, us));
                }
                Ok(out)
            };
            let results: Vec<Rendered> = if threads <= 1 {
                // One worker: render the wave inline — same precomputed-name
                // code path, no thread spawns.
                render_chunk(&frontier)?
            } else {
                let chunk_size = frontier.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    let render_chunk = &render_chunk;
                    let handles: Vec<_> = frontier
                        .chunks(chunk_size)
                        .map(|chunk| scope.spawn(move || render_chunk(chunk)))
                        .collect();
                    let mut all = Vec::new();
                    for h in handles {
                        all.extend(h.join().expect("render worker panicked")?);
                    }
                    Ok(all)
                })?
            };
            frontier.clear();
            for (n, html, discovered, warnings, us) in results {
                let file = names[&n].clone();
                site.page_of.insert(n, file.clone());
                if self.timings {
                    site.render_us.push((file.clone(), us));
                }
                site.pages.insert(file, html);
                site.warnings.extend(warnings);
                for d in discovered {
                    if names.contains_key(&d) && scheduled.insert(d) {
                        frontier.push(d);
                    }
                }
            }
        }
        Ok(site)
    }
}

struct Run<'a, 'g> {
    gen: &'a Generator<'g>,
    reader: &'a GraphReader<'g>,
    site: GeneratedSite,
    used_names: FxHashSet<String>,
    queue: Vec<Oid>,
    /// Objects currently being embedded, for cycle detection.
    embedding: Vec<Oid>,
    /// Parallel mode: file names were assigned up front; discovered pages
    /// are recorded here instead of queued.
    precomputed: Option<&'a FxHashMap<Oid, String>>,
    discovered: Vec<Oid>,
}

/// Loop-variable bindings, innermost last.
type Scope = Vec<(String, Value)>;

impl Run<'_, '_> {
    /// Assigns a file name to `n` and queues it for rendering, if it has a
    /// template. Returns the file name.
    fn ensure_page(&mut self, n: Oid) -> Option<String> {
        if let Some(names) = self.precomputed {
            return match names.get(&n) {
                Some(file) => {
                    self.discovered.push(n);
                    Some(file.clone())
                }
                None => {
                    self.site.warnings.push(format!(
                        "object {} has no template; rendered as text",
                        self.display_name(n)
                    ));
                    None
                }
            };
        }
        if let Some(f) = self.site.page_of.get(&n) {
            return Some(f.clone());
        }
        if self
            .gen
            .templates
            .select(self.gen.graph, self.reader, n)
            .is_none()
        {
            self.site.warnings.push(format!(
                "object {} has no template; rendered as text",
                self.display_name(n)
            ));
            return None;
        }
        let base = sanitize(&self.display_name(n));
        let file = assign_unique_name(&mut self.used_names, &base, n);
        self.site.page_of.insert(n, file.clone());
        self.queue.push(n);
        Some(file)
    }

    fn display_name(&self, n: Oid) -> String {
        self.reader
            .name(n)
            .map(str::to_string)
            .unwrap_or_else(|| format!("node{}", n.0))
    }

    fn render_object(&mut self, n: Oid) -> Result<String> {
        // Pull the generator reference out of `self` so the selected template
        // borrows the `'a` template set, not `&mut self` — this lets the
        // template be rendered without cloning its AST.
        let gen = self.gen;
        let template = gen
            .templates
            .select(gen.graph, self.reader, n)
            .ok_or_else(|| {
                TemplateError::render(format!("no template for object {}", self.display_name(n)))
            })?;
        let mut out = String::new();
        let mut scope: Scope = Vec::new();
        self.render_nodes(&template.nodes, n, &mut scope, &mut out)?;
        Ok(out)
    }

    fn render_nodes(
        &mut self,
        nodes: &[Node],
        ctx: Oid,
        scope: &mut Scope,
        out: &mut String,
    ) -> Result<()> {
        for node in nodes {
            match node {
                Node::Html(h) => out.push_str(h),
                Node::Fmt {
                    expr,
                    format,
                    all,
                    opts,
                } => {
                    let values = self.values_of(expr, ctx, scope);
                    let mut items: Vec<Value> = if *all {
                        values
                    } else {
                        values.into_iter().take(1).collect()
                    };
                    if let Some(order) = opts.order {
                        self.sort_values(&mut items, opts.key.as_ref(), order);
                    }
                    let mut rendered = Vec::with_capacity(items.len());
                    for v in &items {
                        rendered.push(self.render_value(v, format, ctx, scope)?);
                    }
                    emit_list(out, &rendered, opts);
                }
                Node::If { cond, then, else_ } => {
                    if self.eval_cond(cond, ctx, scope)? {
                        self.render_nodes(then, ctx, scope, out)?;
                    } else {
                        self.render_nodes(else_, ctx, scope, out)?;
                    }
                }
                Node::For {
                    var,
                    expr,
                    opts,
                    body,
                } => {
                    let mut items = self.values_of(expr, ctx, scope);
                    if let Some(order) = opts.order {
                        self.sort_values(&mut items, opts.key.as_ref(), order);
                    }
                    let mut rendered = Vec::with_capacity(items.len());
                    for item in items {
                        scope.push((var.clone(), item));
                        let mut buf = String::new();
                        let r = self.render_nodes(body, ctx, scope, &mut buf);
                        scope.pop();
                        r?;
                        rendered.push(buf);
                    }
                    emit_list(out, &rendered, opts);
                }
            }
        }
        Ok(())
    }

    /// All values of an attribute expression, in graph insertion order. The
    /// first segment may be a loop variable; each further segment traverses
    /// one attribute of reachable internal objects ("limited traversal of
    /// the site graph", §4).
    fn values_of(&self, expr: &AttrExpr, ctx: Oid, scope: &Scope) -> Vec<Value> {
        let mut segments = expr.path.iter();
        let first = segments.next().expect("attr paths are non-empty");
        let mut current: Vec<Value> =
            if let Some((_, v)) = scope.iter().rev().find(|(name, _)| name == first) {
                vec![v.clone()]
            } else {
                self.attr_values(Value::Node(ctx), first)
            };
        for seg in segments {
            let mut next = Vec::new();
            for v in &current {
                next.extend(self.attr_values(v.clone(), seg));
            }
            current = next;
        }
        current
    }

    fn attr_values(&self, v: Value, attr: &str) -> Vec<Value> {
        let Some(n) = v.as_node() else {
            return Vec::new();
        };
        let Some(sym) = self.gen.graph.universe().interner().get(attr) else {
            return Vec::new();
        };
        self.reader.attr_values(n, sym).cloned().collect()
    }

    fn scalar_of(&self, expr: &Expr, ctx: Oid, scope: &Scope) -> Option<Value> {
        match expr {
            Expr::Attr(a) => self.values_of(a, ctx, scope).into_iter().next(),
            Expr::Const(Constant::Bool(b)) => Some(Value::Bool(*b)),
            Expr::Const(Constant::Int(i)) => Some(Value::Int(*i)),
            Expr::Const(Constant::Float(f)) => Some(Value::Float(*f)),
            Expr::Const(Constant::Str(s)) => Some(Value::str(s)),
            Expr::Const(Constant::Null) => None,
        }
    }

    fn eval_cond(&self, cond: &Cond, ctx: Oid, scope: &Scope) -> Result<bool> {
        Ok(match cond {
            Cond::Test(e) => match self.scalar_of(e, ctx, scope) {
                None => false,
                Some(Value::Bool(b)) => b,
                Some(_) => true,
            },
            Cond::Cmp(l, op, r) => {
                let lv = self.scalar_of(l, ctx, scope);
                let rv = self.scalar_of(r, ctx, scope);
                match (lv, rv) {
                    (None, None) => matches!(op, Op::Eq),
                    (None, Some(_)) | (Some(_), None) => matches!(op, Op::Ne),
                    (Some(a), Some(b)) => {
                        use std::cmp::Ordering::*;
                        match op {
                            Op::Eq => a.coerced_eq(&b),
                            Op::Ne => !a.coerced_eq(&b),
                            Op::Lt => a.coerced_cmp(&b) == Some(Less),
                            Op::Le => matches!(a.coerced_cmp(&b), Some(Less | Equal)),
                            Op::Gt => a.coerced_cmp(&b) == Some(Greater),
                            Op::Ge => matches!(a.coerced_cmp(&b), Some(Greater | Equal)),
                        }
                    }
                }
            }
            Cond::And(a, b) => self.eval_cond(a, ctx, scope)? && self.eval_cond(b, ctx, scope)?,
            Cond::Or(a, b) => self.eval_cond(a, ctx, scope)? || self.eval_cond(b, ctx, scope)?,
            Cond::Not(c) => !self.eval_cond(c, ctx, scope)?,
        })
    }

    fn sort_values(&self, items: &mut [Value], key: Option<&AttrExpr>, order: SortOrder) {
        let key_of = |v: &Value| -> Value {
            match key {
                Some(k) => {
                    // The key path applies to the item itself.
                    let mut vals = vec![v.clone()];
                    for seg in &k.path {
                        vals = vals
                            .iter()
                            .flat_map(|x| self.attr_values(x.clone(), seg))
                            .collect();
                    }
                    vals.into_iter().next().unwrap_or_else(|| v.clone())
                }
                None => v.clone(),
            }
        };
        items.sort_by(|a, b| {
            let (ka, kb) = (key_of(a), key_of(b));
            ka.coerced_cmp(&kb)
                .unwrap_or_else(|| ka.to_string().cmp(&kb.to_string()))
        });
        if order == SortOrder::Descend {
            items.reverse();
        }
    }

    fn tag_text(&self, tag: &Tag, ctx: Oid, scope: &Scope) -> Option<String> {
        match tag {
            Tag::Str(s) => Some(s.clone()),
            Tag::Attr(a) => self
                .values_of(a, ctx, scope)
                .into_iter()
                .next()
                .map(|v| value_text(&v)),
        }
    }

    /// Type-specific rendering rules (§4).
    fn render_value(
        &mut self,
        v: &Value,
        format: &Format,
        ctx: Oid,
        scope: &Scope,
    ) -> Result<String> {
        let tag = match format {
            Format::Link(Some(t)) => self.tag_text(t, ctx, scope),
            _ => None,
        };
        Ok(match v {
            Value::Int(i) => escape(&i.to_string()),
            Value::Float(f) => escape(&f.to_string()),
            Value::Bool(b) => escape(&b.to_string()),
            Value::Str(s) => escape(s),
            Value::Url(u) => {
                let text = tag.unwrap_or_else(|| u.to_string());
                format!("<a href=\"{}\">{}</a>", escape_attr(u), escape(&text))
            }
            Value::File(kind, path) => self.render_file(*kind, path, format, tag),
            Value::Node(n) => self.render_node_value(*n, format, tag)?,
        })
    }

    fn render_file(
        &self,
        kind: FileKind,
        path: &str,
        format: &Format,
        tag: Option<String>,
    ) -> String {
        let embed_contents = |run: &Self| run.gen.file_resolver.as_ref().and_then(|r| r(path));
        match (kind, format) {
            // Text and HTML files embed by default ("the attribute's HTML
            // value is converted to a string and is embedded").
            (FileKind::Text, Format::Default | Format::Embed) => match embed_contents(self) {
                Some(text) => escape(&text),
                None => file_link(path, tag.as_deref()),
            },
            (FileKind::Html, Format::Default | Format::Embed) => match embed_contents(self) {
                Some(html) => html,
                None => file_link(path, tag.as_deref()),
            },
            (FileKind::Image, Format::Link(_)) => file_link(path, tag.as_deref()),
            (FileKind::Image, _) => {
                format!(
                    "<img src=\"{}\" alt=\"{}\">",
                    escape_attr(path),
                    escape(tag.as_deref().unwrap_or(path))
                )
            }
            // PostScript "should not be realized as strings. For these
            // values, the HTML generator produces an appropriate link".
            (FileKind::PostScript, _) | (_, Format::Link(_)) => file_link(path, tag.as_deref()),
        }
    }

    fn render_node_value(
        &mut self,
        n: Oid,
        format: &Format,
        tag: Option<String>,
    ) -> Result<String> {
        match format {
            Format::Embed => {
                if self.embedding.contains(&n) {
                    return Err(TemplateError::render(format!(
                        "EMBED cycle through object {}",
                        self.display_name(n)
                    )));
                }
                if self
                    .gen
                    .templates
                    .select(self.gen.graph, self.reader, n)
                    .is_none()
                {
                    self.site.warnings.push(format!(
                        "EMBED of template-less object {}",
                        self.display_name(n)
                    ));
                    return Ok(escape(&self.display_name(n)));
                }
                self.embedding.push(n);
                let html = self.render_object(n)?;
                self.embedding.pop();
                Ok(html)
            }
            Format::Default | Format::Link(_) => match self.ensure_page(n) {
                Some(file) => {
                    let text = tag.unwrap_or_else(|| self.display_name(n));
                    Ok(format!(
                        "<a href=\"{}\">{}</a>",
                        escape_attr(&file),
                        escape(&text)
                    ))
                }
                None => Ok(escape(&tag.unwrap_or_else(|| self.display_name(n)))),
            },
        }
    }
}

fn emit_list(out: &mut String, items: &[String], opts: &EnumOpts) {
    match opts.list {
        Some(kind) => {
            let tag = match kind {
                ListKind::Ul => "ul",
                ListKind::Ol => "ol",
            };
            let _ = write!(out, "<{tag}>");
            for item in items {
                let _ = write!(out, "<li>{item}</li>");
            }
            let _ = write!(out, "</{tag}>");
        }
        None => {
            let delim = opts.delim.as_deref().unwrap_or("");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(delim);
                }
                out.push_str(item);
            }
        }
    }
}

fn file_link(path: &str, tag: Option<&str>) -> String {
    format!(
        "<a href=\"{}\">{}</a>",
        escape_attr(path),
        escape(tag.unwrap_or(path))
    )
}

/// The plain-text form of a value, for link tags.
fn value_text(v: &Value) -> String {
    match v {
        Value::Str(s) | Value::Url(s) | Value::File(_, s) => s.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Node(n) => format!("node{}", n.0),
    }
}

/// HTML-escapes text content. Clean strings (the common case) are copied in
/// one shot; otherwise unescaped runs are appended as whole slices.
pub fn escape(s: &str) -> String {
    let needs = |b: u8| matches!(b, b'&' | b'<' | b'>' | b'"');
    let Some(first) = s.bytes().position(needs) else {
        return s.to_string();
    };
    let mut out = String::with_capacity(s.len() + 8);
    out.push_str(&s[..first]);
    let mut run = first;
    for (i, b) in s.bytes().enumerate().skip(first) {
        let rep = match b {
            b'&' => "&amp;",
            b'<' => "&lt;",
            b'>' => "&gt;",
            b'"' => "&quot;",
            _ => continue,
        };
        out.push_str(&s[run..i]);
        out.push_str(rep);
        run = i + 1;
    }
    out.push_str(&s[run..]);
    out
}

fn escape_attr(s: &str) -> String {
    escape(s)
}

/// Sanitizes an object name into a file-name stem: `YearPage(1997)` →
/// `yearpage_1997`.
/// Picks a page file name for `n` that is not yet in `used`, inserting it.
/// Scheme (same for serial and parallel generation): `{base}.html`, then
/// `{base}-{oid}.html`, then `{base}-{oid}-{k}.html` for k = 2, 3, ... —
/// looping until the insert actually succeeds, so two colliding objects can
/// never be assigned the same file.
fn assign_unique_name(used: &mut FxHashSet<String>, base: &str, n: Oid) -> String {
    let mut file = format!("{base}.html");
    if used.insert(file.clone()) {
        return file;
    }
    file = format!("{base}-{}.html", n.0);
    let mut k = 2usize;
    while !used.insert(file.clone()) {
        file = format!("{base}-{}-{k}.html", n.0);
        k += 1;
    }
    file
}

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_sep = true;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_sep = false;
        } else if !last_sep {
            out.push('_');
            last_sep = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    if out.is_empty() {
        out.push_str("page");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> (Graph, Oid, Oid) {
        let mut g = Graph::standalone();
        let root = g.new_node(Some("RootPage()"));
        let pub1 = g.new_node(Some("PaperPresentation(pub1)"));
        g.add_edge_str(root, "Paper", Value::Node(pub1)).unwrap();
        g.add_edge_str(pub1, "title", "Optimizing Regular Paths")
            .unwrap();
        g.add_edge_str(pub1, "author", "Mary Fernandez").unwrap();
        g.add_edge_str(pub1, "author", "Dan Suciu").unwrap();
        g.add_edge_str(pub1, "year", 1998i64).unwrap();
        g.add_edge_str(
            pub1,
            "postscript",
            Value::file(FileKind::PostScript, "papers/icde98.ps.gz"),
        )
        .unwrap();
        g.add_to_collection_str("Roots", Value::Node(root));
        g.add_to_collection_str("Papers", Value::Node(pub1));
        (g, root, pub1)
    }

    #[test]
    fn renders_scalar_attributes() {
        let (g, _, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_object_template(pub1, "<h1><SFMT @title></h1> (<SFMT @year>)")
            .unwrap();
        let genr = Generator::new(&g, &ts);
        let html = genr.render_fragment(pub1).unwrap();
        assert_eq!(html, "<h1>Optimizing Regular Paths</h1> (1998)");
    }

    #[test]
    fn sfor_enumerates_multivalued_attributes() {
        let (g, _, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_object_template(
            pub1,
            r#"By <SFOR a IN @author DELIM=", "><SFMT @a></SFOR>."#,
        )
        .unwrap();
        let html = Generator::new(&g, &ts).render_fragment(pub1).unwrap();
        assert_eq!(html, "By Mary Fernandez, Dan Suciu.");
    }

    #[test]
    fn sfmt_all_shorthand_equals_sfor() {
        let (g, _, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_object_template(pub1, r#"<SFMT @author ALL DELIM=", ">"#)
            .unwrap();
        let html = Generator::new(&g, &ts).render_fragment(pub1).unwrap();
        assert_eq!(html, "Mary Fernandez, Dan Suciu");
    }

    #[test]
    fn postscript_files_become_links_with_attr_tag() {
        let (g, _, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_object_template(pub1, r#"<SFMT @postscript LINK=@title>"#)
            .unwrap();
        let html = Generator::new(&g, &ts).render_fragment(pub1).unwrap();
        assert_eq!(
            html,
            r#"<a href="papers/icde98.ps.gz">Optimizing Regular Paths</a>"#
        );
    }

    #[test]
    fn sif_tests_attribute_existence() {
        let (g, _, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_object_template(
            pub1,
            r#"<SIF @journal>J: <SFMT @journal><SELSE>no journal</SIF>"#,
        )
        .unwrap();
        let html = Generator::new(&g, &ts).render_fragment(pub1).unwrap();
        assert_eq!(html, "no journal");
    }

    #[test]
    fn sif_comparisons_coerce() {
        let (g, _, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_object_template(
            pub1,
            r#"<SIF @year >= 1998>recent</SIF><SIF @year = "1998">!</SIF>"#,
        )
        .unwrap();
        let html = Generator::new(&g, &ts).render_fragment(pub1).unwrap();
        assert_eq!(html, "recent!");
    }

    #[test]
    fn node_references_become_page_links() {
        let (g, root, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_object_template(root, r#"<SFMT @Paper LINK=@Paper.title>"#)
            .unwrap();
        ts.set_object_template(pub1, "<SFMT @title>").unwrap();
        let out = Generator::new(&g, &ts).generate(&[root]).unwrap();
        assert_eq!(out.pages.len(), 2);
        let root_html = &out.pages[&out.page_of[&root]];
        assert!(
            root_html
                .contains(r#"<a href="paperpresentation_pub1.html">Optimizing Regular Paths</a>"#),
            "{root_html}"
        );
        assert_eq!(out.pages[&out.page_of[&pub1]], "Optimizing Regular Paths");
    }

    #[test]
    fn embed_inlines_instead_of_linking() {
        let (g, root, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_object_template(root, r#"[<SFMT @Paper EMBED>]"#)
            .unwrap();
        ts.set_object_template(pub1, "<SFMT @title>").unwrap();
        let out = Generator::new(&g, &ts).generate(&[root]).unwrap();
        // Only the root page is emitted; pub1 was embedded, not realized.
        assert_eq!(out.pages.len(), 1);
        assert_eq!(out.pages[&out.page_of[&root]], "[Optimizing Regular Paths]");
    }

    #[test]
    fn embed_cycles_are_detected() {
        let mut g = Graph::standalone();
        let a = g.new_node(Some("a"));
        let b = g.new_node(Some("b"));
        g.add_edge_str(a, "next", Value::Node(b)).unwrap();
        g.add_edge_str(b, "next", Value::Node(a)).unwrap();
        let mut ts = TemplateSet::new();
        ts.set_object_template(a, "<SFMT @next EMBED>").unwrap();
        ts.set_object_template(b, "<SFMT @next EMBED>").unwrap();
        let err = Generator::new(&g, &ts).generate(&[a]).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn collection_templates_give_shared_look() {
        let (g, _, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_collection_template("Papers", "paper: <SFMT @title>")
            .unwrap();
        let html = Generator::new(&g, &ts).render_fragment(pub1).unwrap();
        assert_eq!(html, "paper: Optimizing Regular Paths");
    }

    #[test]
    fn object_template_beats_collection_template() {
        let (g, _, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_collection_template("Papers", "coll").unwrap();
        ts.set_object_template(pub1, "obj").unwrap();
        assert_eq!(
            Generator::new(&g, &ts).render_fragment(pub1).unwrap(),
            "obj"
        );
    }

    #[test]
    fn html_template_attribute_selects_named_template() {
        let mut g = Graph::standalone();
        let n = g.new_node(Some("n"));
        g.add_edge_str(n, "HTML-template", "special").unwrap();
        let mut ts = TemplateSet::new();
        ts.set_named("special", "special template").unwrap();
        ts.set_default("default template").unwrap();
        assert_eq!(
            Generator::new(&g, &ts).render_fragment(n).unwrap(),
            "special template"
        );
    }

    #[test]
    fn order_and_key_sort_object_values() {
        let mut g = Graph::standalone();
        let root = g.new_node(Some("root"));
        let y98 = g.new_node(Some("Year(1998)"));
        let y96 = g.new_node(Some("Year(1996)"));
        g.add_edge_str(y98, "Year", 1998i64).unwrap();
        g.add_edge_str(y96, "Year", 1996i64).unwrap();
        g.add_edge_str(root, "YearPage", Value::Node(y98)).unwrap();
        g.add_edge_str(root, "YearPage", Value::Node(y96)).unwrap();
        let mut ts = TemplateSet::new();
        ts.set_object_template(
            root,
            r#"<SFOR y IN @YearPage ORDER=ascend KEY=@Year LIST=ul><SFMT @y.Year></SFOR>"#,
        )
        .unwrap();
        let html = Generator::new(&g, &ts).render_fragment(root).unwrap();
        assert_eq!(html, "<ul><li>1996</li><li>1998</li></ul>");
    }

    #[test]
    fn descend_order_on_scalars() {
        let mut g = Graph::standalone();
        let n = g.new_node(None);
        for y in [1996i64, 1998, 1997] {
            g.add_edge_str(n, "year", y).unwrap();
        }
        let mut ts = TemplateSet::new();
        ts.set_object_template(n, r#"<SFMT @year ALL ORDER=descend DELIM=",">"#)
            .unwrap();
        assert_eq!(
            Generator::new(&g, &ts).render_fragment(n).unwrap(),
            "1998,1997,1996"
        );
    }

    #[test]
    fn text_files_embed_via_resolver() {
        let mut g = Graph::standalone();
        let n = g.new_node(None);
        g.add_edge_str(n, "abstract", Value::file(FileKind::Text, "abs/x.txt"))
            .unwrap();
        let mut ts = TemplateSet::new();
        ts.set_object_template(n, "<SFMT @abstract>").unwrap();
        let genr = Generator::new(&g, &ts).with_file_resolver(Box::new(|p| {
            (p == "abs/x.txt").then(|| "the <abstract>".to_string())
        }));
        assert_eq!(genr.render_fragment(n).unwrap(), "the &lt;abstract&gt;");
    }

    #[test]
    fn text_files_fall_back_to_links_without_resolver() {
        let mut g = Graph::standalone();
        let n = g.new_node(None);
        g.add_edge_str(n, "abstract", Value::file(FileKind::Text, "abs/x.txt"))
            .unwrap();
        let mut ts = TemplateSet::new();
        ts.set_object_template(n, "<SFMT @abstract>").unwrap();
        assert_eq!(
            Generator::new(&g, &ts).render_fragment(n).unwrap(),
            r#"<a href="abs/x.txt">abs/x.txt</a>"#
        );
    }

    #[test]
    fn images_become_img_tags() {
        let mut g = Graph::standalone();
        let n = g.new_node(None);
        g.add_edge_str(n, "logo", Value::file(FileKind::Image, "logo.png"))
            .unwrap();
        let mut ts = TemplateSet::new();
        ts.set_object_template(n, "<SFMT @logo>").unwrap();
        assert_eq!(
            Generator::new(&g, &ts).render_fragment(n).unwrap(),
            r#"<img src="logo.png" alt="logo.png">"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut g = Graph::standalone();
        let n = g.new_node(None);
        g.add_edge_str(n, "t", "a < b & c").unwrap();
        let mut ts = TemplateSet::new();
        ts.set_object_template(n, "<SFMT @t>").unwrap();
        assert_eq!(
            Generator::new(&g, &ts).render_fragment(n).unwrap(),
            "a &lt; b &amp; c"
        );
    }

    #[test]
    fn missing_attribute_renders_nothing() {
        let (g, _, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_object_template(pub1, "[<SFMT @nonexistent>]")
            .unwrap();
        assert_eq!(Generator::new(&g, &ts).render_fragment(pub1).unwrap(), "[]");
    }

    #[test]
    fn generate_from_collection_uses_roots() {
        let (g, root, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_object_template(root, "<SFMT @Paper>").unwrap();
        ts.set_object_template(pub1, "x").unwrap();
        let out = Generator::new(&g, &ts)
            .generate_from_collection("Roots")
            .unwrap();
        assert_eq!(out.pages.len(), 2);
        assert!(out.page_of.contains_key(&root));
    }

    #[test]
    fn filenames_are_sanitized_and_unique() {
        assert_eq!(sanitize("YearPage(1997)"), "yearpage_1997");
        assert_eq!(sanitize("RootPage()"), "rootpage");
        assert_eq!(sanitize("***"), "page");
        let mut g = Graph::standalone();
        let a = g.new_node(Some("X(1)"));
        let b = g.new_node(Some("X[1]"));
        g.add_edge_str(a, "next", Value::Node(b)).unwrap();
        let mut ts = TemplateSet::new();
        ts.set_default("<SFMT @next>").unwrap();
        let out = Generator::new(&g, &ts).generate(&[a, b]).unwrap();
        assert_eq!(
            out.pages.len(),
            2,
            "collision must be resolved: {:?}",
            out.pages.keys()
        );
    }

    #[test]
    fn write_to_dir_emits_files() {
        let (g, root, pub1) = site();
        let mut ts = TemplateSet::new();
        ts.set_object_template(root, "<SFMT @Paper>").unwrap();
        ts.set_object_template(pub1, "x").unwrap();
        let out = Generator::new(&g, &ts).generate(&[root]).unwrap();
        let dir = std::env::temp_dir().join(format!("strudel_gen_test_{}", std::process::id()));
        out.write_to_dir(&dir).unwrap();
        for name in out.pages.keys() {
            assert!(dir.join(name).exists());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn templateless_reference_warns_and_degrades() {
        let (g, root, _) = site();
        let mut ts = TemplateSet::new();
        ts.set_object_template(root, "<SFMT @Paper>").unwrap();
        let out = Generator::new(&g, &ts).generate(&[root]).unwrap();
        assert_eq!(out.pages.len(), 1);
        assert!(!out.warnings.is_empty());
    }

    #[test]
    fn assign_unique_name_loops_past_taken_fallbacks() {
        let mut used: FxHashSet<String> = FxHashSet::default();
        used.insert("a.html".into());
        used.insert("a-7.html".into());
        used.insert("a-7-2.html".into());
        assert_eq!(assign_unique_name(&mut used, "a", Oid(7)), "a-7-3.html");
        assert!(used.contains("a-7-3.html"));
        assert_eq!(assign_unique_name(&mut used, "b", Oid(9)), "b.html");
    }

    #[test]
    fn colliding_page_names_stay_unique_in_both_generators() {
        // Three distinct objects whose display names all sanitize to the
        // same base, and a decoy whose literal name equals the suffixed
        // name the second collider would naively get.
        let mut g = Graph::standalone();
        let root = g.new_node(Some("Root"));
        let mut ts = TemplateSet::new();
        ts.set_object_template(root, "<SFMT @Story ALL>").unwrap();
        let mut stories = Vec::new();
        for _ in 0..3 {
            let s = g.new_node(Some("Story Page"));
            g.add_edge_str(s, "t", "body").unwrap();
            g.add_edge_str(root, "Story", Value::Node(s)).unwrap();
            stories.push(s);
        }
        let decoy = g.new_node(Some(&format!("story_page-{}", stories[1].0)));
        g.add_edge_str(decoy, "t", "decoy body").unwrap();
        g.add_edge_str(root, "Story", Value::Node(decoy)).unwrap();
        for &s in stories.iter().chain([&decoy]) {
            ts.set_object_template(s, "<SFMT @t>").unwrap();
        }

        for out in [
            Generator::new(&g, &ts).generate(&[root]).unwrap(),
            Generator::new(&g, &ts)
                .generate_parallel(&[root], 4)
                .unwrap(),
        ] {
            // 5 objects -> 5 pages; no assignment overwrote another.
            assert_eq!(out.pages.len(), 5, "{:?}", out.pages.keys());
            assert_eq!(out.page_of.len(), 5);
            let mut files: Vec<_> = out.page_of.values().collect();
            files.sort();
            files.dedup();
            assert_eq!(files.len(), 5, "duplicate file assignment: {files:?}");
            for (n, f) in &out.page_of {
                assert!(out.pages.contains_key(f), "page_of[{n:?}] = {f} missing");
            }
        }
    }
}
