//! The template AST (Fig. 6 of the paper).

use std::fmt;

/// An attribute expression `@ID.ID…` — "either a single attribute, e.g.
/// `Paper`, or a bounded sequence of attributes that reference reachable
/// objects, e.g. `Paper.Name`" (§4). The first segment may also name a loop
/// variable bound by an enclosing `SFOR`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AttrExpr {
    /// The identifier path (non-empty).
    pub path: Vec<String>,
}

impl AttrExpr {
    /// Builds an attribute expression from path segments.
    pub fn new(path: impl IntoIterator<Item = impl Into<String>>) -> Self {
        AttrExpr {
            path: path.into_iter().map(Into::into).collect(),
        }
    }
}

impl fmt::Display for AttrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.path.join("."))
    }
}

/// Constants of the condition language: `BOOL | INT | FLOAT | STRING | NULL`.
#[derive(Clone, PartialEq, Debug)]
pub enum Constant {
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// The null constant (absent attribute).
    Null,
}

/// A scalar expression: an attribute expression or a constant.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Attribute lookup.
    Attr(AttrExpr),
    /// Constant.
    Const(Constant),
}

/// Relational operators of the condition language.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A condition: `Expr (Op Expr)? | Cond AND/OR Cond | NOT Cond | (Cond)`.
/// A bare attribute expression tests non-nullness — "it is often necessary
/// to test for the existence of an object's attribute" (§4).
#[derive(Clone, PartialEq, Debug)]
pub enum Cond {
    /// Non-null / truthiness test of an expression.
    Test(Expr),
    /// Binary comparison.
    Cmp(Expr, Op, Expr),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

/// How an `SFMT` realizes an internal object or file value.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum Format {
    /// Type-specific default: pages become links, components embed.
    #[default]
    Default,
    /// Force embedding ("the EMBED directive overrides this default and the
    /// AbstractPage object is embedded in the generated HTML page").
    Embed,
    /// Force a link, with an optional tag (`LINK=@title`, `LINK="here"`).
    Link(Option<Tag>),
}

/// The tag of a link: a string or an attribute expression evaluated against
/// the *current* object.
#[derive(Clone, PartialEq, Debug)]
pub enum Tag {
    /// Literal tag text.
    Str(String),
    /// Tag from an attribute.
    Attr(AttrExpr),
}

/// Sort order for `ORDER=` directives: "sorts an attribute's values in
/// either lexicographically increasing or decreasing order" (§4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SortOrder {
    /// `ORDER=ascend`
    Ascend,
    /// `ORDER=descend`
    Descend,
}

/// List wrapper for enumerations (the paper's `<ul>`/`<ol>` idiom
/// abbreviations).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ListKind {
    /// Unordered list.
    Ul,
    /// Ordered list.
    Ol,
}

/// Common enumeration modifiers shared by `SFMT … ALL` and `SFOR`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct EnumOpts {
    /// Optional sort order.
    pub order: Option<SortOrder>,
    /// Sort key: "if the attribute's values are internal objects, the
    /// optional KEY value specifies the object's attribute that should be
    /// used as the key".
    pub key: Option<AttrExpr>,
    /// Separator emitted between items.
    pub delim: Option<String>,
    /// Wrap items in `<ul>`/`<ol>` with `<li>` around each item.
    pub list: Option<ListKind>,
}

/// One node of a parsed template.
#[derive(Clone, PartialEq, Debug)]
pub enum Node {
    /// Verbatim HTML text.
    Html(String),
    /// `<SFMT …>` — format expression.
    Fmt {
        /// What to format.
        expr: AttrExpr,
        /// Realization directive.
        format: Format,
        /// Format every value of the attribute (`ALL`), not just the first.
        all: bool,
        /// Ordering/delimiter/list options (only meaningful with `all`).
        opts: EnumOpts,
    },
    /// `<SIF cond> … <SELSE> … </SIF>`.
    If {
        /// The condition.
        cond: Cond,
        /// Rendered when the condition holds.
        then: Vec<Node>,
        /// Rendered otherwise.
        else_: Vec<Node>,
    },
    /// `<SFOR var IN expr …> … </SFOR>`.
    For {
        /// Loop variable, referenced as `@var` in the body.
        var: String,
        /// The enumerated attribute expression.
        expr: AttrExpr,
        /// Ordering/delimiter/list options.
        opts: EnumOpts,
        /// Body template.
        body: Vec<Node>,
    },
}

/// A parsed template: a sequence of nodes.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Template {
    /// The nodes, in document order.
    pub nodes: Vec<Node>,
    /// The source text (kept for diagnostics and round-tripping).
    pub source: String,
}

impl Template {
    /// Number of directives (SFMT/SIF/SFOR) in the template, recursively.
    pub fn directive_count(&self) -> usize {
        fn count(nodes: &[Node]) -> usize {
            nodes
                .iter()
                .map(|n| match n {
                    Node::Html(_) => 0,
                    Node::Fmt { .. } => 1,
                    Node::If { then, else_, .. } => 1 + count(then) + count(else_),
                    Node::For { body, .. } => 1 + count(body),
                })
                .sum()
        }
        count(&self.nodes)
    }
}
