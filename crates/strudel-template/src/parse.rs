//! Parsing HTML templates: plain HTML with `SFMT` / `SIF` / `SFOR`
//! directives.
//!
//! Directive names are matched case-insensitively (`<sfmt …>` works); all
//! other text — including every regular HTML tag — passes through verbatim,
//! because "our plain template text is plain HTML with programmatic
//! extensions, not a program that produces HTML text" (§4).

use crate::ast::*;
use crate::error::{Result, TemplateError};

/// Parses a template source string.
pub fn parse_template(src: &str) -> Result<Template> {
    let mut p = Outer {
        src,
        pos: 0,
        line: 1,
    };
    let nodes = p.parse_nodes(&mut Vec::new())?;
    Ok(Template {
        nodes,
        source: src.to_string(),
    })
}

/// A frame on the open-directive stack, for error messages and matching.
#[derive(PartialEq, Debug, Clone, Copy)]
enum Frame {
    If,
    Else,
    For,
}

struct Outer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

/// What the outer scanner found next.
enum Piece {
    Html(String),
    Fmt(String, usize),
    IfOpen(String, usize),
    Else,
    IfClose,
    ForOpen(String, usize),
    ForClose,
    Eof,
}

impl<'a> Outer<'a> {
    fn err(&self, line: usize, msg: impl Into<String>) -> TemplateError {
        TemplateError::parse(line, msg)
    }

    /// Scans up to the next directive, returning the preceding HTML (if
    /// any) via `pending`.
    fn next_piece(&mut self) -> Result<Piece> {
        let bytes = self.src.as_bytes();
        let start = self.pos;
        let mut html_end = self.pos;
        while self.pos < bytes.len() {
            if bytes[self.pos] == b'<' {
                if let Some((piece, consumed)) = self.try_directive()? {
                    if html_end > start {
                        // Emit pending HTML first; rewind so the directive
                        // is re-scanned on the next call.
                        self.pos = html_end;
                        return Ok(Piece::Html(self.src[start..html_end].to_string()));
                    }
                    self.pos += consumed;
                    self.line += self.src[html_end..html_end + consumed]
                        .matches('\n')
                        .count();
                    return Ok(piece);
                }
            }
            if bytes[self.pos] == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
            html_end = self.pos;
        }
        if html_end > start {
            Ok(Piece::Html(self.src[start..html_end].to_string()))
        } else {
            Ok(Piece::Eof)
        }
    }

    /// If the text at `self.pos` starts a directive, returns it plus the
    /// number of bytes it spans. Does not advance.
    fn try_directive(&self) -> Result<Option<(Piece, usize)>> {
        let rest = &self.src[self.pos..];
        let lower = |n: usize| rest.get(..n).map(|s| s.to_ascii_lowercase());
        let line = self.line;
        if lower(6).as_deref() == Some("<selse") && rest[6..].starts_with('>') {
            return Ok(Some((Piece::Else, 7)));
        }
        if lower(6).as_deref() == Some("</sif>") {
            return Ok(Some((Piece::IfClose, 6)));
        }
        if lower(7).as_deref() == Some("</sfor>") {
            return Ok(Some((Piece::ForClose, 7)));
        }
        for (prefix, kind) in [("<sfmt", 0u8), ("<sif", 1), ("<sfor", 2)] {
            if let Some(head) = lower(prefix.len()) {
                if head == prefix {
                    // The directive name must end at a word boundary.
                    let after = rest.as_bytes().get(prefix.len()).copied();
                    if after.is_some_and(|b| b.is_ascii_alphanumeric()) {
                        continue;
                    }
                    let body_start = prefix.len();
                    let end = find_tag_end(rest, body_start).ok_or_else(|| {
                        self.err(line, format!("unterminated {} directive", prefix))
                    })?;
                    let body = rest[body_start..end].trim().to_string();
                    let piece = match kind {
                        0 => Piece::Fmt(body, line),
                        1 => Piece::IfOpen(body, line),
                        _ => Piece::ForOpen(body, line),
                    };
                    return Ok(Some((piece, end + 1)));
                }
            }
        }
        Ok(None)
    }

    fn parse_nodes(&mut self, stack: &mut Vec<Frame>) -> Result<Vec<Node>> {
        let mut nodes = Vec::new();
        loop {
            match self.next_piece()? {
                Piece::Html(h) => nodes.push(Node::Html(h)),
                Piece::Fmt(body, line) => nodes.push(parse_fmt(&body, line)?),
                Piece::IfOpen(body, line) => {
                    let cond = parse_cond_str(&body, line)?;
                    let depth = stack.len();
                    stack.push(Frame::If);
                    let then = self.parse_nodes(stack)?;
                    // The recursion returned either because </SIF> popped our
                    // frame (stack back to `depth`) or because <SELSE>
                    // switched it to Else (still `depth + 1`).
                    let else_ = if stack.len() == depth + 1 && stack.last() == Some(&Frame::Else) {
                        self.parse_nodes(stack)?
                    } else {
                        Vec::new()
                    };
                    debug_assert_eq!(stack.len(), depth, "if/else frames balanced");
                    nodes.push(Node::If { cond, then, else_ });
                }
                Piece::Else => match stack.last() {
                    Some(Frame::If) => {
                        // Switch the open frame to Else and return the THEN
                        // branch; the caller continues with the ELSE branch.
                        stack.pop();
                        stack.push(Frame::Else);
                        return Ok(nodes);
                    }
                    _ => return Err(self.err(self.line, "<SELSE> outside <SIF>")),
                },
                Piece::IfClose => match stack.pop() {
                    Some(Frame::If) | Some(Frame::Else) => return Ok(nodes),
                    _ => return Err(self.err(self.line, "</SIF> without matching <SIF>")),
                },
                Piece::ForOpen(body, line) => {
                    let (var, expr, opts) = parse_for_head(&body, line)?;
                    stack.push(Frame::For);
                    let inner = self.parse_nodes(stack)?;
                    nodes.push(Node::For {
                        var,
                        expr,
                        opts,
                        body: inner,
                    });
                }
                Piece::ForClose => match stack.pop() {
                    Some(Frame::For) => return Ok(nodes),
                    _ => return Err(self.err(self.line, "</SFOR> without matching <SFOR>")),
                },
                Piece::Eof => {
                    if let Some(open) = stack.last() {
                        return Err(self.err(self.line, format!("unclosed {open:?} directive")));
                    }
                    return Ok(nodes);
                }
            }
        }
    }
}

/// Finds the index of the closing `>` of a directive, skipping over quoted
/// strings and the `>=` operator (a bare `>` closes the tag, so strict
/// greater-than inside `SIF` is written with the `GT` keyword).
fn find_tag_end(s: &str, from: usize) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = from;
    let mut in_str = false;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'>' if !in_str => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 1; // `>=` comparison operator, not the tag end
                } else {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

// ------------------------------------------------- inner-directive lexer ----

#[derive(Clone, Debug, PartialEq)]
enum T {
    Attr(AttrExpr),
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LParen,
    RParen,
}

fn lex_inner(s: &str, line: usize) -> Result<Vec<T>> {
    let bytes = s.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    let err = |m: String| TemplateError::parse(line, m);
    while i < bytes.len() {
        match bytes[i] {
            b if b.is_ascii_whitespace() => i += 1,
            b'@' => {
                i += 1;
                let mut path = Vec::new();
                loop {
                    let start = i;
                    while i < bytes.len()
                        && (bytes[i].is_ascii_alphanumeric()
                            || bytes[i] == b'_'
                            || bytes[i] == b'-')
                    {
                        i += 1;
                    }
                    if i == start {
                        return Err(err("empty attribute name after `@` or `.`".into()));
                    }
                    path.push(s[start..i].to_string());
                    if i < bytes.len() && bytes[i] == b'.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(T::Attr(AttrExpr { path }));
            }
            b'"' => {
                i += 1;
                let mut text = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err("unterminated string in directive".into()));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            match bytes.get(i) {
                                Some(b'n') => text.push('\n'),
                                Some(b't') => text.push('\t'),
                                Some(b'"') => text.push('"'),
                                Some(b'\\') => text.push('\\'),
                                other => return Err(err(format!("bad escape {other:?}"))),
                            }
                            i += 1;
                        }
                        _ => {
                            let start = i;
                            i += 1;
                            while i < bytes.len() && (bytes[i] & 0xC0) == 0x80 {
                                i += 1;
                            }
                            text.push_str(&s[start..i]);
                        }
                    }
                }
                out.push(T::Str(text));
            }
            b'=' => {
                out.push(T::Eq);
                i += 1;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(T::Ne);
                i += 2;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(T::Le);
                    i += 2;
                } else {
                    out.push(T::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(T::Ge);
                    i += 2;
                } else {
                    out.push(T::Gt);
                    i += 1;
                }
            }
            b'(' => {
                out.push(T::LParen);
                i += 1;
            }
            b')' => {
                out.push(T::RParen);
                i += 1;
            }
            b'-' | b'0'..=b'9' => {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                            is_float = true;
                            i += 1;
                        }
                        _ => break,
                    }
                }
                let text = &s[start..i];
                if is_float {
                    out.push(T::Float(
                        text.parse()
                            .map_err(|_| err(format!("bad float {text:?}")))?,
                    ));
                } else {
                    out.push(T::Int(
                        text.parse().map_err(|_| err(format!("bad int {text:?}")))?,
                    ));
                }
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(T::Ident(s[start..i].to_string()));
            }
            other => {
                return Err(err(format!(
                    "unexpected character {:?} in directive",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

struct Inner {
    toks: Vec<T>,
    pos: usize,
    line: usize,
}

impl Inner {
    fn err(&self, msg: impl Into<String>) -> TemplateError {
        TemplateError::parse(self.line, msg)
    }

    fn peek(&self) -> Option<&T> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<T> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(T::Ident(s)) if s.eq_ignore_ascii_case(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_eq(&mut self, what: &str) -> Result<()> {
        match self.bump() {
            Some(T::Eq) => Ok(()),
            other => Err(self.err(format!("expected `=` after {what}, found {other:?}"))),
        }
    }

    fn parse_tag(&mut self) -> Result<Tag> {
        match self.bump() {
            Some(T::Str(s)) => Ok(Tag::Str(s)),
            Some(T::Attr(a)) => Ok(Tag::Attr(a)),
            other => Err(self.err(format!("expected a tag (string or @attr), found {other:?}"))),
        }
    }

    /// Parses the trailing modifiers shared by SFMT-ALL and SFOR.
    fn parse_enum_opts(&mut self, opts: &mut EnumOpts) -> Result<bool> {
        if self.eat_kw("ORDER") {
            self.expect_eq("ORDER")?;
            opts.order = Some(match self.bump() {
                Some(T::Ident(s)) if s.eq_ignore_ascii_case("ascend") => SortOrder::Ascend,
                Some(T::Ident(s)) if s.eq_ignore_ascii_case("descend") => SortOrder::Descend,
                other => {
                    return Err(
                        self.err(format!("ORDER must be ascend or descend, found {other:?}"))
                    )
                }
            });
            return Ok(true);
        }
        if self.eat_kw("KEY") {
            self.expect_eq("KEY")?;
            opts.key = Some(match self.bump() {
                Some(T::Attr(a)) => a,
                other => {
                    return Err(
                        self.err(format!("KEY must be an @attr expression, found {other:?}"))
                    )
                }
            });
            return Ok(true);
        }
        if self.eat_kw("DELIM") {
            self.expect_eq("DELIM")?;
            opts.delim = Some(match self.bump() {
                Some(T::Str(s)) => s,
                other => return Err(self.err(format!("DELIM must be a string, found {other:?}"))),
            });
            return Ok(true);
        }
        if self.eat_kw("LIST") {
            self.expect_eq("LIST")?;
            opts.list = Some(match self.bump() {
                Some(T::Ident(s)) if s.eq_ignore_ascii_case("ul") => ListKind::Ul,
                Some(T::Ident(s)) if s.eq_ignore_ascii_case("ol") => ListKind::Ol,
                other => return Err(self.err(format!("LIST must be ul or ol, found {other:?}"))),
            });
            return Ok(true);
        }
        Ok(false)
    }

    // ---- condition grammar ----

    fn parse_cond(&mut self) -> Result<Cond> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("OR") {
            let rhs = self.parse_and()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Cond> {
        let mut lhs = self.parse_unary()?;
        while self.eat_kw("AND") {
            let rhs = self.parse_unary()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Cond> {
        if self.eat_kw("NOT") {
            return Ok(Cond::Not(Box::new(self.parse_unary()?)));
        }
        if matches!(self.peek(), Some(T::LParen)) {
            self.bump();
            let inner = self.parse_cond()?;
            match self.bump() {
                Some(T::RParen) => return Ok(inner),
                other => return Err(self.err(format!("expected `)`, found {other:?}"))),
            }
        }
        let lhs = self.parse_expr()?;
        // `GT`/`LT`/`GE`/`LE` keyword spellings exist because a bare `>`
        // would close the directive tag.
        let op = match self.peek() {
            Some(T::Eq) => Some(Op::Eq),
            Some(T::Ne) => Some(Op::Ne),
            Some(T::Lt) => Some(Op::Lt),
            Some(T::Le) => Some(Op::Le),
            Some(T::Gt) => Some(Op::Gt),
            Some(T::Ge) => Some(Op::Ge),
            Some(T::Ident(s)) if s.eq_ignore_ascii_case("gt") => Some(Op::Gt),
            Some(T::Ident(s)) if s.eq_ignore_ascii_case("ge") => Some(Op::Ge),
            Some(T::Ident(s)) if s.eq_ignore_ascii_case("lt") => Some(Op::Lt),
            Some(T::Ident(s)) if s.eq_ignore_ascii_case("le") => Some(Op::Le),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_expr()?;
            Ok(Cond::Cmp(lhs, op, rhs))
        } else {
            Ok(Cond::Test(lhs))
        }
    }

    fn parse_expr(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(T::Attr(a)) => Ok(Expr::Attr(a)),
            Some(T::Str(s)) => Ok(Expr::Const(Constant::Str(s))),
            Some(T::Int(i)) => Ok(Expr::Const(Constant::Int(i))),
            Some(T::Float(f)) => Ok(Expr::Const(Constant::Float(f))),
            Some(T::Ident(s)) if s.eq_ignore_ascii_case("true") => {
                Ok(Expr::Const(Constant::Bool(true)))
            }
            Some(T::Ident(s)) if s.eq_ignore_ascii_case("false") => {
                Ok(Expr::Const(Constant::Bool(false)))
            }
            Some(T::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Expr::Const(Constant::Null)),
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }
}

fn parse_fmt(body: &str, line: usize) -> Result<Node> {
    let mut p = Inner {
        toks: lex_inner(body, line)?,
        pos: 0,
        line,
    };
    let expr = match p.bump() {
        Some(T::Attr(a)) => a,
        other => {
            return Err(p.err(format!(
                "SFMT needs an @attr expression first, found {other:?}"
            )))
        }
    };
    let mut format = Format::Default;
    let mut all = false;
    let mut opts = EnumOpts::default();
    while p.peek().is_some() {
        if p.eat_kw("EMBED") {
            format = Format::Embed;
        } else if p.eat_kw("LINK") {
            let tag = if matches!(p.peek(), Some(T::Eq)) {
                p.bump();
                Some(p.parse_tag()?)
            } else {
                None
            };
            format = Format::Link(tag);
        } else if p.eat_kw("ALL") {
            all = true;
        } else if p.parse_enum_opts(&mut opts)? {
            // handled
        } else {
            return Err(p.err(format!("unexpected token in SFMT: {:?}", p.peek())));
        }
    }
    Ok(Node::Fmt {
        expr,
        format,
        all,
        opts,
    })
}

fn parse_cond_str(body: &str, line: usize) -> Result<Cond> {
    let mut p = Inner {
        toks: lex_inner(body, line)?,
        pos: 0,
        line,
    };
    let cond = p.parse_cond()?;
    if let Some(t) = p.peek() {
        return Err(p.err(format!("trailing token in SIF condition: {t:?}")));
    }
    Ok(cond)
}

fn parse_for_head(body: &str, line: usize) -> Result<(String, AttrExpr, EnumOpts)> {
    let mut p = Inner {
        toks: lex_inner(body, line)?,
        pos: 0,
        line,
    };
    let var = match p.bump() {
        Some(T::Ident(v)) => v,
        other => return Err(p.err(format!("SFOR needs a loop variable, found {other:?}"))),
    };
    if !p.eat_kw("IN") {
        return Err(p.err("SFOR requires `IN` after the loop variable"));
    }
    let expr = match p.bump() {
        Some(T::Attr(a)) => a,
        other => return Err(p.err(format!("SFOR needs an @attr expression, found {other:?}"))),
    };
    let mut opts = EnumOpts::default();
    while p.peek().is_some() {
        if !p.parse_enum_opts(&mut opts)? {
            return Err(p.err(format!("unexpected token in SFOR: {:?}", p.peek())));
        }
    }
    Ok((var, expr, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_html_passes_through() {
        let t = parse_template("<html><body><h1>Hi & bye</h1></body></html>").unwrap();
        assert_eq!(t.nodes.len(), 1);
        assert!(matches!(&t.nodes[0], Node::Html(h) if h.contains("<h1>")));
        assert_eq!(t.directive_count(), 0);
    }

    #[test]
    fn sfmt_basic_and_modifiers() {
        let t = parse_template(r#"<SFMT @title>"#).unwrap();
        assert!(
            matches!(&t.nodes[0], Node::Fmt { expr, format: Format::Default, all: false, .. }
            if expr.path == vec!["title".to_string()])
        );

        let t = parse_template(r#"<SFMT @postscript LINK=@title>"#).unwrap();
        assert!(matches!(
            &t.nodes[0],
            Node::Fmt {
                format: Format::Link(Some(Tag::Attr(_))),
                ..
            }
        ));

        let t = parse_template(r#"<SFMT @Abstract EMBED>"#).unwrap();
        assert!(matches!(
            &t.nodes[0],
            Node::Fmt {
                format: Format::Embed,
                ..
            }
        ));

        let t = parse_template(r#"<SFMT @author ALL DELIM=", ">"#).unwrap();
        assert!(
            matches!(&t.nodes[0], Node::Fmt { all: true, opts, .. } if opts.delim.as_deref() == Some(", "))
        );
    }

    #[test]
    fn attr_paths() {
        let t = parse_template("<SFMT @Paper.Name>").unwrap();
        assert!(
            matches!(&t.nodes[0], Node::Fmt { expr, .. } if expr.path == vec!["Paper".to_string(), "Name".to_string()])
        );
    }

    #[test]
    fn sif_with_else() {
        let t =
            parse_template(r#"<SIF @booktitle>In <SFMT @booktitle><SELSE><SFMT @journal></SIF>"#)
                .unwrap();
        match &t.nodes[0] {
            Node::If { cond, then, else_ } => {
                assert!(matches!(cond, Cond::Test(Expr::Attr(_))));
                assert_eq!(then.len(), 2);
                assert_eq!(else_.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sif_without_else() {
        let t = parse_template(r#"<SIF @year >= 1998>recent</SIF>"#).unwrap();
        match &t.nodes[0] {
            Node::If { cond, then, else_ } => {
                assert!(matches!(cond, Cond::Cmp(_, Op::Ge, _)));
                assert_eq!(then.len(), 1);
                assert!(else_.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boolean_connectives_and_parens() {
        let t = parse_template(r#"<SIF (@a = 1 OR @b != "x") AND NOT @c>y</SIF>"#).unwrap();
        match &t.nodes[0] {
            Node::If { cond, .. } => {
                assert!(matches!(cond, Cond::And(_, _)), "{cond:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn null_constant() {
        let t = parse_template(r#"<SIF @sponsor = NULL>unsponsored</SIF>"#).unwrap();
        match &t.nodes[0] {
            Node::If {
                cond: Cond::Cmp(_, Op::Eq, Expr::Const(Constant::Null)),
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sfor_with_order_key_list() {
        let t = parse_template(
            r#"<SFOR y IN @YearPage ORDER=ascend KEY=@Year LIST=ul><SFMT @y></SFOR>"#,
        )
        .unwrap();
        match &t.nodes[0] {
            Node::For {
                var,
                expr,
                opts,
                body,
            } => {
                assert_eq!(var, "y");
                assert_eq!(expr.path, vec!["YearPage".to_string()]);
                assert_eq!(opts.order, Some(SortOrder::Ascend));
                assert_eq!(opts.key.as_ref().unwrap().path, vec!["Year".to_string()]);
                assert_eq!(opts.list, Some(ListKind::Ul));
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_directives() {
        let t =
            parse_template(r#"<SFOR p IN @Paper><SIF @p.year = 1997><SFMT @p.title></SIF></SFOR>"#)
                .unwrap();
        assert_eq!(t.directive_count(), 3);
    }

    #[test]
    fn case_insensitive_directive_names() {
        let t = parse_template(r#"<sfmt @x><sif @y>z</sif>"#).unwrap();
        assert_eq!(t.directive_count(), 2);
    }

    #[test]
    fn unclosed_directives_error() {
        assert!(parse_template("<SIF @x>never closed").is_err());
        assert!(parse_template("<SFOR a IN @b>never closed").is_err());
        assert!(parse_template("</SIF>").is_err());
        assert!(parse_template("<SELSE>").is_err());
    }

    #[test]
    fn unterminated_tag_errors() {
        assert!(parse_template("<SFMT @title").is_err());
    }

    #[test]
    fn gt_inside_strings_does_not_close_tag() {
        let t = parse_template(r#"<SFMT @x LINK="a > b">"#).unwrap();
        assert!(
            matches!(&t.nodes[0], Node::Fmt { format: Format::Link(Some(Tag::Str(s))), .. } if s == "a > b")
        );
    }

    #[test]
    fn html_tags_that_look_similar_pass_through() {
        // <SFORM> is not <SFOR; <span> is plainly HTML.
        let t = parse_template("<SFORM><span>x</span>").unwrap();
        assert_eq!(t.directive_count(), 0);
    }

    #[test]
    fn error_lines_are_tracked() {
        let err = parse_template("line1\nline2\n<SFMT >").unwrap_err();
        match err {
            TemplateError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fig7_paper_presentation_template_parses() {
        // Reconstruction of the Fig. 7 PaperPresentation template.
        let t = parse_template(
            r#"<SFMT @postscript LINK=@title>. By <SFOR a IN @author DELIM=", "><SFMT @a></SFOR>.
<SIF @booktitle>In <SFMT @booktitle><SELSE><SIF @journal><SFMT @journal> <SFMT @volume></SIF></SIF>, <SFMT @year>.
<SFMT @Abstract LINK="Abstract">"#,
        )
        .unwrap();
        assert!(t.directive_count() >= 8);
    }
}
