//! # strudel-template
//!
//! STRUDEL's HTML-template language (§4 of the paper) and the HTML
//! generator (§2.5).
//!
//! "The template language provides three extensions to plain HTML: a format
//! expression (SFMT), a conditional expression (SIF), and an enumeration
//! expression (SFOR), each of which produces plain HTML text."
//!
//! Concrete syntax implemented here (the paper's figures give the grammar,
//! Fig. 6; this is a faithful concrete rendering of it):
//!
//! ```html
//! <H2><SFMT @title></H2>
//! By <SFOR a IN @author DELIM=", "><SFMT @a></SFOR>.
//! <SIF @booktitle>In <SFMT @booktitle>.<SELSE><SFMT @journal>.</SIF>
//! <SFMT @postscript LINK=@title>
//! <SFOR y IN @YearPage ORDER=ascend KEY=@Year LIST=ul><SFMT @y LINK=@y.Year></SFOR>
//! <SFMT @Abstract EMBED>
//! ```
//!
//! * **`<SFMT expr [EMBED|LINK[=tag]] [ALL] [ORDER=…] [KEY=…] [DELIM=…]>`** —
//!   maps an attribute expression to its HTML value using type-specific
//!   rules (strings and numbers embed as text, PostScript files become
//!   links, images become `<img>`, internal objects become links to their
//!   page or are embedded with `EMBED`). `ALL` formats every value of a
//!   multi-valued attribute.
//! * **`<SIF cond> … <SELSE> … </SIF>`** — tests attribute existence and
//!   compares attribute expressions with constants (`=`, `!=`, `<`, `<=`,
//!   `>`, `>=`, `AND`, `OR`, `NOT`, parentheses, `NULL`).
//! * **`<SFOR v IN expr [ORDER=…] [KEY=…] [DELIM=…] [LIST=ul|ol]> … </SFOR>`**
//!   — iterates over all values of an attribute expression, binding `v`.
//!
//! The generator ([`gen`]) selects a template for each internal object —
//! an object-specific template, the object's `HTML-template` attribute, or
//! the template of a collection it belongs to — and realizes objects as
//! pages or embedded components, delaying the choice to generation time
//! exactly as §4 describes.

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod gen;
pub mod parse;

pub use ast::{AttrExpr, Cond, Node, Template};
pub use error::{Result, TemplateError};
pub use gen::{GeneratedSite, Generator, TemplateSet};
pub use parse::parse_template;
