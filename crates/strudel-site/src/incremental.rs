//! Incremental maintenance of materialized site graphs (\[FER 98c\], §6).
//!
//! "To support large-scale sites, we need to solve the problem of
//! incremental view updates for semistructured data, which is an open
//! problem." This module solves the practically important fragment: for
//! **positive** site-definition queries (no negation) whose edge conditions
//! are single-edge tests (literal labels or arc variables — which, per
//! §5.2, is what real site-definition queries look like: "the
//! site-definition queries rarely used the closure operator"), insertions
//! insertions into **and deletions from** the data graph are propagated to
//! the materialized site graph by **semi-naive evaluation**: each changed
//! edge or collection member seeds the conditions it can satisfy, the rest
//! of the governing conjunction is evaluated around the seed, and only the
//! affected bindings' constructions run (or are retracted).
//!
//! Each binding row is derived exactly once: when a delta could seed
//! several conditions of one rule, rows are kept only at the *first*
//! position the delta matches (the classic delta-rule expansion
//! `Δ(C₁∧…∧Cₙ) = Σᵢ C₁…Cᵢ₋₁ ∧ ΔCᵢ ∧ Cᵢ₊₁…Cₙ`). Construction therefore
//! counts one derivation per row — the DRed-style support counts kept by
//! [`SkolemTable`] — and a deletion seeds the *same* rows over the
//! pre-removal graph and retracts them, deleting an edge, member, or page
//! only when its last supporting derivation goes.
//!
//! Queries outside the fragment are detected up front and reported as
//! [`IncrementalError::Negation`] or [`IncrementalError::PathExpression`];
//! the caller falls back to a full rebuild — exactly the boundary the paper
//! leaves open.

use strudel_graph::{Graph, Oid, Sym, Value};
use strudel_struql::analyze::analyze;
use strudel_struql::ast::{Block, Condition, PathStep, Query, Rpe, Term};
use strudel_struql::binding::Bindings;
use strudel_struql::construct::{apply_block, retract_block, ConstructStats, SkolemTable};
use strudel_struql::{evaluate_conditions, EvalOptions, StruqlError};

/// Why a query cannot be maintained incrementally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncrementalError {
    /// The query uses an aggregate: a delta changes existing group values
    /// rather than only adding edges.
    Aggregate(String),
    /// The query uses negation: insertions may *retract* bindings.
    Negation(String),
    /// The query uses a multi-edge regular path expression: one inserted
    /// edge can create unboundedly many new paths.
    PathExpression(String),
    /// An underlying evaluation error.
    Eval(String),
}

impl std::fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrementalError::Aggregate(c) => {
                write!(
                    f,
                    "aggregate `{c}` is not incrementally maintainable (group values change)"
                )
            }
            IncrementalError::Negation(c) => {
                write!(f, "negated condition `{c}` breaks monotonicity")
            }
            IncrementalError::PathExpression(c) => {
                write!(
                    f,
                    "multi-edge path expression `{c}` is not incrementally maintainable here"
                )
            }
            IncrementalError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for IncrementalError {}

impl From<StruqlError> for IncrementalError {
    fn from(e: StruqlError) -> Self {
        IncrementalError::Eval(e.to_string())
    }
}

/// A change to the data graph. Additions are propagated *after* the data
/// graph reflects them; removals are propagated *before* the edge or member
/// leaves the data graph, so the retracted bindings can still be derived
/// (the [`IncrementalSite::add_edge`] / [`IncrementalSite::remove_edge`]
/// conveniences get this ordering right).
#[derive(Clone, Debug, PartialEq)]
pub enum Delta {
    /// An edge `from --label--> to` was added.
    EdgeAdded {
        /// Source node.
        from: Oid,
        /// Label (interned in the data graph's universe).
        label: Sym,
        /// Target value.
        to: Value,
    },
    /// `value` joined the named collection.
    CollectionAdded {
        /// Collection name.
        name: String,
        /// The new member.
        value: Value,
    },
    /// The edge `from --label--> to` is being removed.
    EdgeRemoved {
        /// Source node.
        from: Oid,
        /// Label (interned in the data graph's universe).
        label: Sym,
        /// Target value.
        to: Value,
    },
    /// `value` is leaving the named collection.
    CollectionRemoved {
        /// Collection name.
        name: String,
        /// The departing member.
        value: Value,
    },
}

impl Delta {
    /// Whether this delta retracts data (as opposed to adding it).
    pub fn is_removal(&self) -> bool {
        matches!(
            self,
            Delta::EdgeRemoved { .. } | Delta::CollectionRemoved { .. }
        )
    }
}

/// One flattened rule: the governing conjunction plus the construction
/// clauses of one block.
#[derive(Clone, Debug)]
struct Rule {
    conditions: Vec<Condition>,
    construct: Block,
}

/// Counters for the maintainer.
#[derive(Default, Clone, Copy, Debug)]
pub struct IncStats {
    /// Deltas processed.
    pub deltas: u64,
    /// (rule, seed-condition) evaluations performed.
    pub seeded_evaluations: u64,
    /// Seeded evaluations whose bindings were non-empty, i.e. rules that
    /// actually fired construction or retraction.
    pub rules_fired: u64,
    /// New bindings derived.
    pub new_bindings: u64,
    /// Bindings retracted by removal deltas.
    pub retracted_bindings: u64,
    /// Construction counters.
    pub construct: ConstructStats,
}

/// Maintains a materialized site graph under data-graph insertions and
/// deletions.
pub struct IncrementalSite {
    rules: Vec<Rule>,
    opts: EvalOptions,
    /// The materialized site graph.
    pub site: Graph,
    /// The Skolem table of the materialization.
    pub table: SkolemTable,
    stats: IncStats,
}

impl IncrementalSite {
    /// Checks `query` for the maintainable fragment and materializes the
    /// initial site over `data`.
    pub fn new(data: &Graph, query: &Query, opts: EvalOptions) -> Result<Self, IncrementalError> {
        let analyzed = analyze(query, &opts.predicates)?;
        check_supported(&analyzed.query)?;
        let mut rules = Vec::new();
        flatten(&analyzed.query.root, &mut Vec::new(), &mut rules);
        let mut site = Graph::new(std::sync::Arc::clone(data.universe()));
        let mut table = SkolemTable::new();
        let mut stats = IncStats::default();
        // Cold-build the site from the flattened rules rather than through
        // the nested engine: both produce the same site graph (set
        // semantics), but the flattened evaluation takes exactly one
        // derivation count per binding row — the same accounting the
        // per-delta propagation uses, which retraction depends on.
        for rule in &rules {
            let bindings = evaluate_conditions(&rule.conditions, data, Bindings::unit(), &opts)
                .map_err(IncrementalError::from)?;
            apply_block(
                &rule.construct,
                &bindings,
                &mut site,
                &mut table,
                &mut stats.construct,
            )
            .map_err(IncrementalError::from)?;
        }
        Ok(IncrementalSite {
            rules,
            opts,
            site,
            table,
            stats,
        })
    }

    /// Maintainer counters.
    pub fn stats(&self) -> IncStats {
        self.stats
    }

    /// Propagates one delta. For additions, `data` must already reflect the
    /// change; for removals, `data` must *still contain* the removed edge or
    /// member (propagate first, then mutate the data graph), so the
    /// retracted bindings evaluate to exactly the rows their insertions
    /// derived. Retracting a binding that was never derived (out-of-order or
    /// duplicate removal deltas) is reported as [`IncrementalError::Eval`].
    pub fn apply(&mut self, data: &Graph, delta: &Delta) -> Result<(), IncrementalError> {
        self.stats.deltas += 1;
        let rules = self.rules.clone();
        for rule in &rules {
            // Seeds for every condition position up front: position `i`
            // contributes only rows the delta does not already seed at an
            // earlier position, so each affected row is derived (and
            // counted) exactly once — the delta-rule expansion
            // `Δ(C₁∧…∧Cₙ) = Σᵢ C₁…Cᵢ₋₁ ∧ ΔCᵢ ∧ Cᵢ₊₁…Cₙ`.
            let seeds: Vec<Option<Bindings>> = rule
                .conditions
                .iter()
                .map(|c| seed_bindings(data, c, delta))
                .collect();
            for (i, seed) in seeds.iter().enumerate() {
                let Some(seed) = seed else {
                    continue;
                };
                self.stats.seeded_evaluations += 1;
                // Evaluate the remaining conjunction around the seed. The
                // seeded condition itself is skipped: the delta satisfies it
                // by construction.
                let rest: Vec<Condition> = rule
                    .conditions
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, c)| c.clone())
                    .collect();
                let mut bindings = evaluate_conditions(&rest, data, seed.clone(), &self.opts)?;
                // Drop rows where an earlier condition is also matched by
                // the delta: those rows belong to that earlier seed.
                let earlier: Vec<Vec<(usize, Value)>> = seeds[..i]
                    .iter()
                    .filter_map(|s| s.as_ref())
                    .map(|s| {
                        s.vars()
                            .iter()
                            .enumerate()
                            .filter_map(|(c, v)| {
                                bindings.col(v).map(|col| (col, s.row(0)[c].clone()))
                            })
                            .collect()
                    })
                    .collect();
                if !earlier.is_empty() {
                    bindings.retain_rows(|row| {
                        !earlier
                            .iter()
                            .any(|cols| cols.iter().all(|(col, v)| row[*col] == *v))
                    });
                }
                if bindings.is_empty() {
                    continue;
                }
                self.stats.rules_fired += 1;
                if delta.is_removal() {
                    self.stats.retracted_bindings += bindings.len() as u64;
                    retract_block(
                        &rule.construct,
                        &bindings,
                        &mut self.site,
                        &mut self.table,
                        &mut self.stats.construct,
                    )?;
                } else {
                    self.stats.new_bindings += bindings.len() as u64;
                    apply_block(
                        &rule.construct,
                        &bindings,
                        &mut self.site,
                        &mut self.table,
                        &mut self.stats.construct,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Convenience: adds an edge to `data` *and* propagates it. A no-op if
    /// the edge is already present (the maintained pipeline keeps the data
    /// graph set-semantic, which the derivation counts rely on).
    pub fn add_edge(
        &mut self,
        data: &mut Graph,
        from: Oid,
        label: &str,
        to: Value,
    ) -> Result<(), IncrementalError> {
        let sym = data.sym(label);
        if data.has_edge(from, sym, &to) {
            return Ok(());
        }
        data.add_edge(from, sym, to.clone())
            .map_err(|e| IncrementalError::Eval(e.to_string()))?;
        self.apply(
            data,
            &Delta::EdgeAdded {
                from,
                label: sym,
                to,
            },
        )
    }

    /// Convenience: adds a collection member to `data` *and* propagates it.
    /// A no-op if the value is already a member.
    pub fn add_to_collection(
        &mut self,
        data: &mut Graph,
        name: &str,
        value: Value,
    ) -> Result<(), IncrementalError> {
        if !data.add_to_collection_str(name, value.clone()) {
            return Ok(());
        }
        self.apply(
            data,
            &Delta::CollectionAdded {
                name: name.to_string(),
                value,
            },
        )
    }

    /// Convenience: retracts an edge's derivations *and* removes it from
    /// `data`. The retraction is propagated over the pre-removal graph (so
    /// the withdrawn bindings evaluate to exactly the rows insertion
    /// derived), then the edge leaves the data graph. A no-op if the edge
    /// is absent.
    pub fn remove_edge(
        &mut self,
        data: &mut Graph,
        from: Oid,
        label: &str,
        to: &Value,
    ) -> Result<(), IncrementalError> {
        let Some(sym) = data.universe().interner().get(label) else {
            return Ok(());
        };
        if !data.has_edge(from, sym, to) {
            return Ok(());
        }
        self.apply(
            data,
            &Delta::EdgeRemoved {
                from,
                label: sym,
                to: to.clone(),
            },
        )?;
        data.remove_edge(from, sym, to)
            .map_err(|e| IncrementalError::Eval(e.to_string()))?;
        Ok(())
    }

    /// Convenience: retracts a collection member's derivations *and*
    /// removes it from `data` (propagate first, then mutate, as with
    /// [`IncrementalSite::remove_edge`]). A no-op if the value is not a
    /// member.
    pub fn remove_from_collection(
        &mut self,
        data: &mut Graph,
        name: &str,
        value: &Value,
    ) -> Result<(), IncrementalError> {
        let present = data.collection_str(name).is_some_and(|c| c.contains(value));
        if !present {
            return Ok(());
        }
        self.apply(
            data,
            &Delta::CollectionRemoved {
                name: name.to_string(),
                value: value.clone(),
            },
        )?;
        data.remove_from_collection_str(name, value);
        Ok(())
    }
}

/// Rejects queries outside the maintainable fragment.
fn check_supported(query: &Query) -> Result<(), IncrementalError> {
    for block in query.blocks() {
        for cond in &block.where_ {
            match cond {
                Condition::Collection { negated: true, .. }
                | Condition::Predicate { negated: true, .. }
                | Condition::Edge { negated: true, .. }
                | Condition::In { negated: true, .. } => {
                    return Err(IncrementalError::Negation(cond.to_string()));
                }
                Condition::Edge {
                    step: PathStep::Rpe(rpe),
                    ..
                } if !matches!(rpe, Rpe::Label(_)) => {
                    return Err(IncrementalError::PathExpression(cond.to_string()));
                }
                _ => {}
            }
        }
        for link in &block.links {
            if let Term::Agg(..) = &link.to {
                return Err(IncrementalError::Aggregate(link.to.to_string()));
            }
        }
        for coll in &block.collects {
            if let Term::Agg(..) = &coll.arg {
                return Err(IncrementalError::Aggregate(coll.arg.to_string()));
            }
        }
    }
    Ok(())
}

fn flatten(block: &Block, path: &mut Vec<Condition>, rules: &mut Vec<Rule>) {
    let depth = path.len();
    path.extend(block.where_.iter().cloned());
    if !(block.creates.is_empty() && block.links.is_empty() && block.collects.is_empty()) {
        rules.push(Rule {
            conditions: path.clone(),
            construct: Block {
                creates: block.creates.clone(),
                links: block.links.clone(),
                collects: block.collects.clone(),
                ..Block::default()
            },
        });
    }
    for child in &block.children {
        flatten(child, path, rules);
    }
    path.truncate(depth);
}

/// If `cond` can be satisfied by `delta`, returns bindings with the
/// condition's variables bound from the delta. Shared with the click-time
/// cache ([`crate::dynamic`]), whose invalidation drops exactly the cached
/// clauses one of whose conditions the delta can seed.
pub(crate) fn seed_bindings(data: &Graph, cond: &Condition, delta: &Delta) -> Option<Bindings> {
    use strudel_struql::ast::Term;
    let mut b = Bindings::unit();
    let bind = |b: &mut Bindings, var: &str, value: Value| -> bool {
        if let Some(col) = b.col(var) {
            // Repeated variable within the seed: values must agree.
            b.row(0).get(col).is_some_and(|v| *v == value)
        } else {
            b.add_var_with(var, value);
            true
        }
    };
    match (cond, delta) {
        (
            Condition::Edge {
                from,
                step,
                to,
                negated: false,
            },
            Delta::EdgeAdded {
                from: df,
                label: dl,
                to: dt,
            }
            | Delta::EdgeRemoved {
                from: df,
                label: dl,
                to: dt,
            },
        ) => {
            match step {
                PathStep::Rpe(Rpe::Label(l)) => {
                    if data.universe().interner().get(l) != Some(*dl) {
                        return None;
                    }
                }
                PathStep::ArcVar(v) => {
                    let lv = Value::Str(data.universe().interner().resolve(*dl));
                    if !bind(&mut b, v, lv) {
                        return None;
                    }
                }
                _ => return None,
            }
            match from {
                Term::Var(v) => {
                    if !bind(&mut b, v, Value::Node(*df)) {
                        return None;
                    }
                }
                Term::Lit(_) | Term::Skolem(_) | Term::Agg(..) => return None,
            }
            match to {
                Term::Var(v) => {
                    if !bind(&mut b, v, dt.clone()) {
                        return None;
                    }
                }
                Term::Lit(l) => {
                    if !l.to_value().coerced_eq(dt) {
                        return None;
                    }
                }
                Term::Skolem(_) | Term::Agg(..) => return None,
            }
            Some(b)
        }
        (
            Condition::Collection {
                name,
                arg,
                negated: false,
            },
            Delta::CollectionAdded { name: dn, value }
            | Delta::CollectionRemoved { name: dn, value },
        ) => {
            if name != dn {
                return None;
            }
            match arg {
                Term::Var(v) => {
                    if !bind(&mut b, v, value.clone()) {
                        return None;
                    }
                    Some(b)
                }
                Term::Lit(l) => l.to_value().coerced_eq(value).then_some(b),
                Term::Skolem(_) | Term::Agg(..) => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_struql::parse_query;

    const NEWS_QUERY: &str = r#"
CREATE FrontPage()
{
  WHERE Articles(a), a -> l -> v
  CREATE ArticlePage(a)
  LINK ArticlePage(a) -> l -> v,
       FrontPage() -> "Article" -> ArticlePage(a)
  {
    WHERE l = "section"
    CREATE SectionPage(v)
    LINK SectionPage(v) -> "Story" -> ArticlePage(a),
         FrontPage() -> "Section" -> SectionPage(v)
  }
}
"#;

    fn base_data() -> Graph {
        let mut g = Graph::standalone();
        for i in 0..3 {
            let a = g.new_node(Some(&format!("a{i}")));
            g.add_to_collection_str("Articles", Value::Node(a));
            g.add_edge_str(a, "headline", format!("story {i}").as_str())
                .unwrap();
            g.add_edge_str(a, "section", "world").unwrap();
        }
        g
    }

    /// Full-rebuild reference for equality checks.
    fn full_rebuild(data: &Graph, query: &Query) -> (usize, usize) {
        let out = query.evaluate(data, &EvalOptions::default()).unwrap();
        (out.graph.node_count(), out.graph.edge_count())
    }

    fn site_sig(site: &Graph) -> (usize, usize) {
        (site.node_count(), site.edge_count())
    }

    #[test]
    fn new_article_propagates() {
        let mut data = base_data();
        let query = parse_query(NEWS_QUERY).unwrap();
        let mut inc = IncrementalSite::new(&data, &query, EvalOptions::default()).unwrap();
        let before = site_sig(&inc.site);

        // Insert a new article: node + collection + attributes.
        let a = data.new_node(Some("a_new"));
        inc.add_edge(&mut data, a, "headline", Value::str("breaking"))
            .unwrap();
        inc.add_edge(&mut data, a, "section", Value::str("sports"))
            .unwrap();
        inc.add_to_collection(&mut data, "Articles", Value::Node(a))
            .unwrap();

        assert!(site_sig(&inc.site) > before);
        assert_eq!(
            site_sig(&inc.site),
            full_rebuild(&data, &query),
            "incremental == rebuild"
        );
        // The new sports section page exists and carries the new story.
        let sp = inc
            .table
            .lookup("SectionPage", &[Value::str("sports")])
            .expect("new section page");
        let story = inc.site.universe().interner().get("Story").unwrap();
        assert_eq!(inc.site.reader().attr_values(sp, story).count(), 1);
    }

    #[test]
    fn attribute_added_to_existing_article() {
        let mut data = base_data();
        let query = parse_query(NEWS_QUERY).unwrap();
        let mut inc = IncrementalSite::new(&data, &query, EvalOptions::default()).unwrap();
        let a0 = data.nodes()[0];
        inc.add_edge(&mut data, a0, "byline", Value::str("A. Reporter"))
            .unwrap();
        assert_eq!(site_sig(&inc.site), full_rebuild(&data, &query));
        // The article page gained the byline.
        let page = inc.table.lookup("ArticlePage", &[Value::Node(a0)]).unwrap();
        let byline = inc.site.universe().interner().get("byline").unwrap();
        assert_eq!(
            inc.site.reader().attr(page, byline),
            Some(&Value::str("A. Reporter"))
        );
    }

    #[test]
    fn second_section_creates_new_section_page() {
        let mut data = base_data();
        let query = parse_query(NEWS_QUERY).unwrap();
        let mut inc = IncrementalSite::new(&data, &query, EvalOptions::default()).unwrap();
        assert!(inc
            .table
            .lookup("SectionPage", &[Value::str("tech")])
            .is_none());
        let a1 = data.nodes()[1];
        inc.add_edge(&mut data, a1, "section", Value::str("tech"))
            .unwrap();
        assert!(inc
            .table
            .lookup("SectionPage", &[Value::str("tech")])
            .is_some());
        assert_eq!(site_sig(&inc.site), full_rebuild(&data, &query));
    }

    #[test]
    fn rederivation_is_idempotent() {
        let mut data = base_data();
        let query = parse_query(NEWS_QUERY).unwrap();
        let mut inc = IncrementalSite::new(&data, &query, EvalOptions::default()).unwrap();
        let a0 = data.nodes()[0];
        inc.add_edge(&mut data, a0, "tag", Value::str("x")).unwrap();
        let after_once = site_sig(&inc.site);
        // Re-notify the same delta (e.g. a duplicate event): set semantics
        // must absorb it. (The data graph now has a duplicate edge, so the
        // rebuild reference is not comparable; just check the site.)
        let sym = data.universe().interner().get("tag").unwrap();
        inc.apply(
            &data,
            &Delta::EdgeAdded {
                from: a0,
                label: sym,
                to: Value::str("x"),
            },
        )
        .unwrap();
        assert_eq!(site_sig(&inc.site), after_once);
    }

    #[test]
    fn join_rules_fire_on_either_side() {
        // A rule joining two edge conditions: inserting either edge last
        // must complete the join.
        let query = parse_query(
            r#"{ WHERE People(m), m -> "name" -> n, x -> "author" -> n
                 CREATE Wrote(m, x) LINK Wrote(m, x) -> "who" -> m, Wrote(m, x) -> "what" -> x
                 COLLECT W(Wrote(m, x)) }"#,
        )
        .unwrap();
        let mut data = Graph::standalone();
        let m = data.new_node(Some("mary"));
        data.add_to_collection_str("People", Value::Node(m));
        data.add_edge_str(m, "name", "Mary").unwrap();
        let mut inc = IncrementalSite::new(&data, &query, EvalOptions::default()).unwrap();
        assert_eq!(
            inc.site.collection_str("W").map(|c| c.len()).unwrap_or(0),
            0
        );

        // Author edge arrives later.
        let paper = data.new_node(Some("paper"));
        inc.add_edge(&mut data, paper, "author", Value::str("Mary"))
            .unwrap();
        assert_eq!(inc.site.collection_str("W").unwrap().len(), 1);

        // And the other insertion order: a new person matching an existing
        // author edge.
        let m2 = data.new_node(Some("dan"));
        data.add_edge_str(paper, "author", Value::str("Dan"))
            .unwrap();
        let sym = data.universe().interner().get("author").unwrap();
        inc.apply(
            &data,
            &Delta::EdgeAdded {
                from: paper,
                label: sym,
                to: Value::str("Dan"),
            },
        )
        .unwrap();
        inc.add_to_collection(&mut data, "People", Value::Node(m2))
            .unwrap();
        inc.add_edge(&mut data, m2, "name", Value::str("Dan"))
            .unwrap();
        assert_eq!(inc.site.collection_str("W").unwrap().len(), 2);
    }

    #[test]
    fn negation_is_rejected() {
        let data = base_data();
        let query =
            parse_query(r#"{ WHERE Articles(a), not(a -> "section" -> "sports") CREATE P(a) }"#)
                .unwrap();
        let err = match IncrementalSite::new(&data, &query, EvalOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("negation must be rejected"),
        };
        assert!(matches!(err, IncrementalError::Negation(_)), "{err}");
    }

    #[test]
    fn path_expressions_are_rejected() {
        let data = base_data();
        let query = parse_query(r#"{ WHERE Root(p), p -> * -> q CREATE P(q) }"#).unwrap();
        let err = match IncrementalSite::new(&data, &query, EvalOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("path expressions must be rejected"),
        };
        assert!(matches!(err, IncrementalError::PathExpression(_)), "{err}");
    }

    #[test]
    fn insert_then_remove_restores_site() {
        let mut data = base_data();
        let query = parse_query(NEWS_QUERY).unwrap();
        let mut inc = IncrementalSite::new(&data, &query, EvalOptions::default()).unwrap();
        let before = site_sig(&inc.site);

        let a = data.new_node(Some("a_new"));
        inc.add_edge(&mut data, a, "headline", Value::str("breaking"))
            .unwrap();
        inc.add_edge(&mut data, a, "section", Value::str("sports"))
            .unwrap();
        inc.add_to_collection(&mut data, "Articles", Value::Node(a))
            .unwrap();
        assert!(site_sig(&inc.site) > before);

        // Retract everything in a different order than it arrived.
        inc.remove_edge(&mut data, a, "section", &Value::str("sports"))
            .unwrap();
        assert!(
            inc.table
                .lookup("SectionPage", &[Value::str("sports")])
                .is_none(),
            "sports page lost its last story"
        );
        inc.remove_from_collection(&mut data, "Articles", &Value::Node(a))
            .unwrap();
        inc.remove_edge(&mut data, a, "headline", &Value::str("breaking"))
            .unwrap();
        assert_eq!(site_sig(&inc.site), before);
        assert_eq!(site_sig(&inc.site), full_rebuild(&data, &query));
        assert!(inc.table.lookup("ArticlePage", &[Value::Node(a)]).is_none());
    }

    #[test]
    fn shared_pages_survive_partial_retraction() {
        // Both a0 and a1 sit in "world": retracting one story must keep the
        // section page (its support has not dropped to zero).
        let mut data = base_data();
        let query = parse_query(NEWS_QUERY).unwrap();
        let mut inc = IncrementalSite::new(&data, &query, EvalOptions::default()).unwrap();
        let (a0, a1) = (data.nodes()[0], data.nodes()[1]);

        inc.remove_edge(&mut data, a0, "section", &Value::str("world"))
            .unwrap();
        let wp = inc
            .table
            .lookup("SectionPage", &[Value::str("world")])
            .expect("world page still supported by a1, a2");
        let story = inc.site.universe().interner().get("Story").unwrap();
        assert_eq!(inc.site.reader().attr_values(wp, story).count(), 2);
        assert_eq!(site_sig(&inc.site), full_rebuild(&data, &query));

        inc.remove_edge(&mut data, a1, "section", &Value::str("world"))
            .unwrap();
        let a2 = data.nodes()[2];
        inc.remove_edge(&mut data, a2, "section", &Value::str("world"))
            .unwrap();
        assert!(inc
            .table
            .lookup("SectionPage", &[Value::str("world")])
            .is_none());
        assert_eq!(site_sig(&inc.site), full_rebuild(&data, &query));
    }

    #[test]
    fn collection_retraction_removes_article_pages() {
        let mut data = base_data();
        let query = parse_query(NEWS_QUERY).unwrap();
        let mut inc = IncrementalSite::new(&data, &query, EvalOptions::default()).unwrap();
        let a0 = data.nodes()[0];
        assert!(inc
            .table
            .lookup("ArticlePage", &[Value::Node(a0)])
            .is_some());
        inc.remove_from_collection(&mut data, "Articles", &Value::Node(a0))
            .unwrap();
        assert!(inc
            .table
            .lookup("ArticlePage", &[Value::Node(a0)])
            .is_none());
        assert_eq!(site_sig(&inc.site), full_rebuild(&data, &query));
        // Removing a non-member is a no-op.
        let before = site_sig(&inc.site);
        inc.remove_from_collection(&mut data, "Articles", &Value::Node(a0))
            .unwrap();
        assert_eq!(site_sig(&inc.site), before);
    }

    #[test]
    fn join_retraction_fires_on_either_side() {
        let query = parse_query(
            r#"{ WHERE People(m), m -> "name" -> n, x -> "author" -> n
                 CREATE Wrote(m, x) LINK Wrote(m, x) -> "who" -> m, Wrote(m, x) -> "what" -> x
                 COLLECT W(Wrote(m, x)) }"#,
        )
        .unwrap();
        let mut data = Graph::standalone();
        let m = data.new_node(Some("mary"));
        data.add_to_collection_str("People", Value::Node(m));
        data.add_edge_str(m, "name", "Mary").unwrap();
        let paper = data.new_node(Some("paper"));
        data.add_edge_str(paper, "author", Value::str("Mary"))
            .unwrap();
        let mut inc = IncrementalSite::new(&data, &query, EvalOptions::default()).unwrap();
        assert_eq!(inc.site.collection_str("W").unwrap().len(), 1);

        // Retract one side of the join; the derived row must go.
        inc.remove_edge(&mut data, paper, "author", &Value::str("Mary"))
            .unwrap();
        assert!(inc.site.collection_str("W").unwrap().is_empty());
        assert!(inc
            .table
            .lookup("Wrote", &[Value::Node(m), Value::Node(paper)])
            .is_none());

        // Reinsert, then retract the other side.
        inc.add_edge(&mut data, paper, "author", Value::str("Mary"))
            .unwrap();
        assert_eq!(inc.site.collection_str("W").unwrap().len(), 1);
        inc.remove_edge(&mut data, m, "name", &Value::str("Mary"))
            .unwrap();
        assert!(inc.site.collection_str("W").unwrap().is_empty());
    }

    #[test]
    fn over_retraction_is_a_typed_error() {
        let data = base_data();
        let query = parse_query(NEWS_QUERY).unwrap();
        let mut inc = IncrementalSite::new(&data, &query, EvalOptions::default()).unwrap();
        let a0 = data.nodes()[0];
        let sym = data.universe().interner().get("headline").unwrap();
        let delta = Delta::EdgeRemoved {
            from: a0,
            label: sym,
            to: Value::str("story 0"),
        };
        // First raw retraction is fine (the edge is still in `data`)...
        inc.apply(&data, &delta).unwrap();
        // ...but replaying it retracts derivations that no longer exist.
        let err = inc.apply(&data, &delta).unwrap_err();
        assert!(matches!(err, IncrementalError::Eval(_)), "{err}");
    }

    #[test]
    fn stats_accumulate() {
        let mut data = base_data();
        let query = parse_query(NEWS_QUERY).unwrap();
        let mut inc = IncrementalSite::new(&data, &query, EvalOptions::default()).unwrap();
        let a0 = data.nodes()[0];
        inc.add_edge(&mut data, a0, "k", Value::Int(1)).unwrap();
        let stats = inc.stats();
        assert_eq!(stats.deltas, 1);
        assert!(stats.seeded_evaluations >= 1);
        assert!(stats.new_bindings >= 1);
    }
}
