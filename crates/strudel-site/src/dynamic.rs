//! Incremental / click-time evaluation (\[FER 98c\], §1 and §6).
//!
//! Materializing a whole site up front "has problems similar to those of
//! data warehousing"; the alternative the paper proposes is to "precompute
//! the root(s) of a Web site, then compute at click time the query that
//! obtains the information required to display the next page."
//!
//! [`DynamicSite`] implements that decomposition. The site-definition query
//! is split into one sub-query per `LINK` clause: when the user "clicks"
//! into page `F(v̄)`, each clause `F(X) -> L -> T` is evaluated with `X`
//! bound to `v̄`, yielding exactly that page's outgoing links. Results are
//! cached — "our optimization techniques cache query results to reduce
//! click time for future queries".
//!
//! The cache is shared: all methods take `&self`, so one `DynamicSite` can
//! serve many threads concurrently. It is bounded (entry count and
//! approximate bytes, see [`CacheConfig`]) with least-recently-used
//! eviction, and supports *invalidation*: after a data-graph insertion or
//! deletion, [`DynamicSite::invalidate`] drops exactly the cached clause
//! results the change can affect, reusing the semi-naive dependency
//! analysis of [`crate::incremental`].

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::incremental::{seed_bindings, Delta};
use strudel_graph::fxhash::FxHashMap;
use strudel_graph::{Graph, Value};
use strudel_obs::trace;
use strudel_struql::analyze::analyze;
use strudel_struql::ast::{Block, Condition, LabelTerm, PathStep, Rpe, Term};
use strudel_struql::binding::Bindings;
use strudel_struql::{evaluate_conditions, EvalOptions, Query, Result, StruqlError};

/// A logical page: a Skolem function applied to argument values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PageRef {
    /// The Skolem function name, e.g. `YearPage`.
    pub skolem: String,
    /// The argument values, e.g. `[Int(1997)]`.
    pub args: Vec<Value>,
}

impl std::fmt::Display for PageRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}({})",
            self.skolem,
            self.args
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// The target of an out-link: another logical page or a plain value.
#[derive(Clone, PartialEq, Debug)]
pub enum Target {
    /// A link to another page.
    Page(PageRef),
    /// Page content (an atomic value or a data-graph node).
    Value(Value),
}

/// One outgoing link of a page, as computed at click time.
#[derive(Clone, PartialEq, Debug)]
pub struct OutLink {
    /// The edge label.
    pub label: String,
    /// The target.
    pub target: Target,
}

/// Counters for the dynamic evaluator.
#[derive(Default, Clone, Copy, Debug)]
pub struct DynStats {
    /// Pages expanded (at least one clause was a cache miss).
    pub expansions: u64,
    /// Per-clause cache hits.
    pub cache_hits: u64,
    /// Per-clause cache misses (clause evaluated and result inserted).
    pub cache_misses: u64,
    /// Per-clause sub-queries evaluated.
    pub clause_queries: u64,
    /// Cache entries evicted to stay within the configured bounds.
    pub evictions: u64,
    /// Cache entries dropped by [`DynamicSite::invalidate`].
    pub invalidated: u64,
}

/// Bounds for the click-time result cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Maximum number of cached (clause, arguments) entries.
    pub max_entries: usize,
    /// Approximate maximum total bytes of cached keys and links.
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 4096,
            max_bytes: 16 * 1024 * 1024,
        }
    }
}

impl CacheConfig {
    /// A cache with effectively no bounds.
    pub fn unbounded() -> Self {
        CacheConfig {
            max_entries: usize::MAX,
            max_bytes: usize::MAX,
        }
    }
}

/// A link clause lifted out of the query, with its governing conjunction.
#[derive(Clone, Debug)]
struct ClauseInfo {
    from_fn: String,
    from_args: Vec<String>,
    label: LabelTerm,
    to: Term,
    conditions: Vec<Condition>,
}

/// A create clause lifted out of the query (for page enumeration).
#[derive(Clone, Debug)]
struct CreateInfo {
    name: String,
    args: Vec<String>,
    conditions: Vec<Condition>,
}

// ---- bounded LRU cache ----------------------------------------------------

type CacheKey = (usize, Vec<Value>);

const NIL: usize = usize::MAX;

struct CacheEntry {
    key: CacheKey,
    links: Vec<OutLink>,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// Hand-rolled LRU: a slab of entries threaded on an intrusive list
/// (most-recent at `head`), indexed by a hash map. O(1) get/insert/evict.
struct LruCache {
    map: FxHashMap<CacheKey, usize>,
    slots: Vec<Option<CacheEntry>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    cfg: CacheConfig,
}

fn approx_value_bytes(v: &Value) -> usize {
    std::mem::size_of::<Value>()
        + match v {
            Value::Str(s) | Value::Url(s) | Value::File(_, s) => s.len(),
            _ => 0,
        }
}

fn approx_link_bytes(l: &OutLink) -> usize {
    let target = match &l.target {
        Target::Value(v) => approx_value_bytes(v),
        Target::Page(p) => p.skolem.len() + p.args.iter().map(approx_value_bytes).sum::<usize>(),
    };
    std::mem::size_of::<OutLink>() + l.label.len() + target
}

fn approx_entry_bytes(key: &CacheKey, links: &[OutLink]) -> usize {
    // Entry struct + map slot overhead, then the owned heap data.
    std::mem::size_of::<CacheEntry>()
        + 32
        + key.1.iter().map(approx_value_bytes).sum::<usize>()
        + links.iter().map(approx_link_bytes).sum::<usize>()
}

impl LruCache {
    fn new(cfg: CacheConfig) -> Self {
        LruCache {
            map: FxHashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            cfg,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let e = self.slots[idx].as_ref().expect("unlink of free slot");
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("list prev").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("list next").prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        {
            let e = self.slots[idx].as_mut().expect("push of free slot");
            e.prev = NIL;
            e.next = self.head;
        }
        if self.head != NIL {
            self.slots[self.head].as_mut().expect("old head").prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking it most-recently used.
    fn get(&mut self, key: &CacheKey) -> Option<&[OutLink]> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.slots[idx].as_ref().expect("mapped slot").links)
    }

    /// Removes one entry by slab index.
    fn remove_idx(&mut self, idx: usize) {
        self.unlink(idx);
        let entry = self.slots[idx].take().expect("remove of free slot");
        self.map.remove(&entry.key);
        self.bytes -= entry.bytes;
        self.free.push(idx);
    }

    /// Inserts (or replaces) an entry, then evicts from the LRU end until
    /// within bounds. Returns the number of evictions.
    fn insert(&mut self, key: CacheKey, links: Vec<OutLink>) -> u64 {
        if let Some(&idx) = self.map.get(&key) {
            self.remove_idx(idx);
        }
        let bytes = approx_entry_bytes(&key, &links);
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[idx] = Some(CacheEntry {
            key: key.clone(),
            links,
            bytes,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, idx);
        self.push_front(idx);
        self.bytes += bytes;

        let mut evicted = 0;
        // Never evict the entry just inserted, even if it alone exceeds
        // max_bytes: the caller paid for it and is about to use it.
        while (self.map.len() > self.cfg.max_entries || self.bytes > self.cfg.max_bytes)
            && self.tail != idx
            && self.tail != NIL
        {
            self.remove_idx(self.tail);
            evicted += 1;
        }
        evicted
    }

    /// Drops every entry for which `pred` returns true; returns the count.
    fn drop_matching(&mut self, mut pred: impl FnMut(&CacheKey) -> bool) -> u64 {
        let doomed: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| pred(k))
            .map(|(_, &i)| i)
            .collect();
        let n = doomed.len() as u64;
        for idx in doomed {
            self.remove_idx(idx);
        }
        n
    }

    fn snapshot(&self) -> Vec<(CacheKey, Vec<OutLink>)> {
        // Walk LRU→MRU so that restoring in order reproduces the recency
        // ranking (later inserts end up more recent).
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.tail;
        while idx != NIL {
            let e = self.slots[idx].as_ref().expect("listed slot");
            out.push((e.key.clone(), e.links.clone()));
            idx = e.prev;
        }
        out
    }
}

/// Interior counters, updatable through `&self` without the cache lock.
#[derive(Default)]
struct Counters {
    expansions: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    clause_queries: AtomicU64,
    evictions: AtomicU64,
    invalidated: AtomicU64,
}

/// An exported copy of the click-time cache, for warm restarts. Only
/// meaningful when restored into a [`DynamicSite`] built from the same
/// query (clause numbering must match).
pub struct CacheSnapshot {
    entries: Vec<(CacheKey, Vec<OutLink>)>,
}

/// A site evaluated lazily, page by page. Shareable across threads: all
/// evaluation methods take `&self`.
pub struct DynamicSite<'g> {
    data: &'g Graph,
    opts: EvalOptions,
    clauses: Vec<ClauseInfo>,
    creates: Vec<CreateInfo>,
    cache: Mutex<LruCache>,
    counters: Counters,
}

impl<'g> DynamicSite<'g> {
    /// Decomposes `query` over `data` with the default cache bounds. The
    /// query is analyzed (so bare path steps resolve) but nothing is
    /// evaluated yet.
    pub fn new(data: &'g Graph, query: &Query, opts: EvalOptions) -> Result<Self> {
        Self::with_cache(data, query, opts, CacheConfig::default())
    }

    /// Like [`DynamicSite::new`] with explicit cache bounds.
    pub fn with_cache(
        data: &'g Graph,
        query: &Query,
        opts: EvalOptions,
        cache: CacheConfig,
    ) -> Result<Self> {
        let analyzed = analyze(query, &opts.predicates)?;
        let mut clauses = Vec::new();
        let mut creates = Vec::new();
        collect(
            &analyzed.query.root,
            &mut Vec::new(),
            &mut clauses,
            &mut creates,
        );
        Ok(DynamicSite {
            data,
            opts,
            clauses,
            creates,
            cache: Mutex::new(LruCache::new(cache)),
            counters: Counters::default(),
        })
    }

    /// Evaluator counters so far.
    pub fn stats(&self) -> DynStats {
        DynStats {
            expansions: self.counters.expansions.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            clause_queries: self.counters.clause_queries.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            invalidated: self.counters.invalidated.load(Ordering::Relaxed),
        }
    }

    /// Aggregated hit/miss/invalidation counters of the regular-path memo
    /// cache these options evaluate with (main cache plus every per-worker
    /// cache; see [`strudel_struql::PathCache::stats`]).
    pub fn path_cache_stats(&self) -> strudel_struql::PathCacheStats {
        self.opts.path_cache.stats()
    }

    /// Hit/miss/invalidation counters of the compiled-plan cache these
    /// options evaluate with (see [`strudel_struql::PlanCache::stats`]).
    /// Click-time expansions of an unchanged graph should be all hits after
    /// each link clause's first evaluation.
    pub fn plan_cache_stats(&self) -> strudel_struql::PlanCacheStats {
        self.opts.plan_cache.stats()
    }

    /// The effective `jobs` setting clause evaluations run with.
    pub fn jobs(&self) -> usize {
        self.opts.jobs
    }

    /// Number of live cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }

    /// Approximate bytes held by the cache.
    pub fn cache_bytes(&self) -> usize {
        self.cache.lock().bytes
    }

    /// Drops every cached entry (bounds are kept). Counted neither as
    /// eviction nor invalidation: the caller asked for a cold cache.
    pub fn cache_clear(&self) {
        let mut cache = self.cache.lock();
        let cfg = cache.cfg;
        *cache = LruCache::new(cfg);
    }

    /// The precomputed roots: pages of zero-argument Skolem functions
    /// created under an unconditional (empty) conjunction.
    pub fn roots(&self) -> Vec<PageRef> {
        let mut out = Vec::new();
        for c in &self.creates {
            if c.args.is_empty() && c.conditions.is_empty() {
                let page = PageRef {
                    skolem: c.name.clone(),
                    args: Vec::new(),
                };
                if !out.contains(&page) {
                    out.push(page);
                }
            }
        }
        out
    }

    /// Enumerates every page of one Skolem function by evaluating its
    /// creation conjunction (used for site maps; ordinary browsing reaches
    /// pages through [`DynamicSite::expand`]).
    pub fn pages_of(&self, skolem: &str) -> Result<Vec<PageRef>> {
        let mut out = Vec::new();
        let mut seen = strudel_graph::fxhash::FxHashSet::default();
        for c in self.creates.iter().filter(|c| c.name == skolem) {
            let bindings =
                evaluate_conditions(&c.conditions, self.data, Bindings::unit(), &self.opts)?;
            self.counters.clause_queries.fetch_add(1, Ordering::Relaxed);
            for row in bindings.rows() {
                let args: Option<Vec<Value>> = c
                    .args
                    .iter()
                    .map(|a| bindings.get(row, a).cloned())
                    .collect();
                let Some(args) = args else {
                    return Err(StruqlError::Eval(format!(
                        "unbound Skolem argument in {}",
                        c.name
                    )));
                };
                if seen.insert(args.clone()) {
                    out.push(PageRef {
                        skolem: skolem.to_string(),
                        args,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Click-time expansion: computes the outgoing links of `page` by
    /// running each of its link clauses with the page's Skolem arguments
    /// bound. Cached per (clause, arguments); safe to call from many
    /// threads over one shared site.
    pub fn expand(&self, page: &PageRef) -> Result<Vec<OutLink>> {
        // Flight-recorder span for the cache layer: hit/miss counts per
        // request tell apart "slow because cold" from "slow because the
        // query is slow" (the nested eval.op spans cover the latter).
        let mut tspan = trace::span("cache.expand", trace::Layer::Cache);
        let mut span_hits = 0u64;
        let mut span_misses = 0u64;
        if tspan.is_live() {
            tspan.attr_text("page", &page.skolem);
        }
        let mut out: Vec<OutLink> = Vec::new();
        let clause_ids: Vec<usize> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.from_fn == page.skolem && c.from_args.len() == page.args.len())
            .map(|(i, _)| i)
            .collect();
        let mut expanded = false;
        for i in clause_ids {
            let key = (i, page.args.clone());
            if let Some(cached) = self.cache.lock().get(&key) {
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                span_hits += 1;
                out.extend(cached.iter().cloned());
                continue;
            }
            // Evaluate outside the lock: clause queries are the expensive
            // part, and concurrent misses on the same key are harmless
            // (both compute the same value; the second insert replaces).
            expanded = true;
            self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            span_misses += 1;
            let links = self.eval_clause(i, page)?;
            out.extend(links.iter().cloned());
            let evicted = self.cache.lock().insert(key, links);
            if evicted > 0 {
                self.counters
                    .evictions
                    .fetch_add(evicted, Ordering::Relaxed);
            }
        }
        if expanded {
            self.counters.expansions.fetch_add(1, Ordering::Relaxed);
        }
        // Set semantics across clauses.
        let mut seen = Vec::new();
        out.retain(|l| {
            if seen.contains(l) {
                false
            } else {
                seen.push(l.clone());
                true
            }
        });
        tspan.attr_u64("hits", span_hits);
        tspan.attr_u64("misses", span_misses);
        tspan.attr_u64("links", out.len() as u64);
        Ok(out)
    }

    /// Drops the cached results a data-graph change — an insertion *or a
    /// removal* — can affect. Additions should be applied to the data graph
    /// before invalidating; removal deltas may be applied before or after
    /// the data mutation (seed matching needs only the interner, not the
    /// edge's presence). Returns the number of entries dropped.
    ///
    /// Granularity: a cached `(clause, args)` entry is dropped when one of
    /// the clause's conditions can match the delta (the seed analysis of
    /// [`crate::incremental`]) *and* the seed's bindings are consistent
    /// with the entry's Skolem arguments. Clauses with negated conditions
    /// or multi-edge path expressions — where a change can affect bindings
    /// without matching any single condition — are dropped wholesale.
    pub fn invalidate(&self, delta: &Delta) -> u64 {
        let mut tspan = trace::span("cache.invalidate", trace::Layer::Cache);
        let affected: Vec<Affected> = self
            .clauses
            .iter()
            .map(|c| clause_affected(self.data, c, delta))
            .collect();
        let dropped = self
            .cache
            .lock()
            .drop_matching(|(clause, args)| match &affected[*clause] {
                Affected::No => false,
                Affected::All => true,
                Affected::Args(constraints) => constraints.iter().any(|cons| {
                    cons.iter()
                        .zip(args)
                        .all(|(c, a)| c.as_ref().is_none_or(|v| v.coerced_eq(a)))
                }),
            });
        if dropped > 0 {
            self.counters
                .invalidated
                .fetch_add(dropped, Ordering::Relaxed);
        }
        tspan.attr_u64("dropped", dropped);
        dropped
    }

    /// Exports the cache contents for a warm restart (see [`CacheSnapshot`]).
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            entries: self.cache.lock().snapshot(),
        }
    }

    /// Imports entries from [`DynamicSite::cache_snapshot`], subject to
    /// this site's bounds. Entries referencing clauses this site does not
    /// have are skipped.
    pub fn cache_restore(&self, snap: CacheSnapshot) {
        let mut cache = self.cache.lock();
        let mut evicted = 0;
        for (key, links) in snap.entries {
            if key.0 < self.clauses.len() {
                evicted += cache.insert(key, links);
            }
        }
        drop(cache);
        if evicted > 0 {
            self.counters
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }

    fn eval_clause(&self, idx: usize, page: &PageRef) -> Result<Vec<OutLink>> {
        let clause = &self.clauses[idx];
        // Bind the page's Skolem arguments.
        let mut start = Bindings::empty();
        let mut row: Vec<Value> = Vec::new();
        for (var, val) in clause.from_args.iter().zip(&page.args) {
            if let Some(col) = start.col(var) {
                // Repeated variable: values must agree.
                if &row[col] != val {
                    return Ok(Vec::new());
                }
            } else {
                start.add_var(var);
                row.push(val.clone());
            }
        }
        start.push_row(&row);
        let bindings = evaluate_conditions(&clause.conditions, self.data, start, &self.opts)?;
        self.counters.clause_queries.fetch_add(1, Ordering::Relaxed);

        // Aggregate targets group by this page (the clause's Skolem source)
        // and label; compute them over all rows at click time.
        if let Term::Agg(func, var) = &clause.to {
            let mut groups: FxHashMap<String, strudel_graph::fxhash::FxHashSet<Value>> =
                FxHashMap::default();
            for row in bindings.rows() {
                let label = match &clause.label {
                    LabelTerm::Lit(s) => s.clone(),
                    LabelTerm::Var(v) => match bindings.get(row, v).and_then(Value::text) {
                        Some(t) => t.to_string(),
                        None => continue,
                    },
                };
                if let Some(v) = bindings.get(row, var) {
                    groups.entry(label).or_default().insert(v.clone());
                }
            }
            let mut links: Vec<OutLink> = Vec::new();
            let mut labels: Vec<String> = groups.keys().cloned().collect();
            labels.sort();
            for label in labels {
                if let Some(v) = strudel_struql::construct::aggregate(*func, &groups[&label]) {
                    links.push(OutLink {
                        label,
                        target: Target::Value(v),
                    });
                }
            }
            return Ok(links);
        }

        let mut links = Vec::new();
        for row in bindings.rows() {
            let label = match &clause.label {
                LabelTerm::Lit(s) => s.clone(),
                LabelTerm::Var(v) => match bindings.get(row, v).and_then(Value::text) {
                    Some(t) => t.to_string(),
                    None => continue,
                },
            };
            let target = match &clause.to {
                Term::Skolem(sk) => {
                    let args: Option<Vec<Value>> = sk
                        .args
                        .iter()
                        .map(|a| bindings.get(row, a).cloned())
                        .collect();
                    match args {
                        Some(args) => Target::Page(PageRef {
                            skolem: sk.name.clone(),
                            args,
                        }),
                        None => continue,
                    }
                }
                Term::Var(v) => match bindings.get(row, v) {
                    Some(val) => Target::Value(val.clone()),
                    None => continue,
                },
                Term::Lit(l) => Target::Value(l.to_value()),
                Term::Agg(..) => unreachable!("handled above"),
            };
            let link = OutLink { label, target };
            if !links.contains(&link) {
                links.push(link);
            }
        }
        Ok(links)
    }
}

/// How a delta can affect one clause's cached results.
enum Affected {
    /// No condition can match the delta; cached results stay valid.
    No,
    /// Every cached argument vector may be affected (negation / RPE, where
    /// an insertion can change bindings without matching one condition).
    All,
    /// Affected argument vectors are those consistent with one of these
    /// per-position constraints (`None` = unconstrained position).
    Args(Vec<Vec<Option<Value>>>),
}

fn clause_affected(data: &Graph, clause: &ClauseInfo, delta: &Delta) -> Affected {
    let mut constraints = Vec::new();
    for cond in &clause.conditions {
        match cond {
            Condition::Edge { negated: true, .. } | Condition::Collection { negated: true, .. } => {
                return Affected::All;
            }
            Condition::Edge {
                step: PathStep::Rpe(rpe),
                ..
            } if !matches!(rpe, Rpe::Label(_)) => {
                return Affected::All;
            }
            _ => {
                if let Some(seed) = seed_bindings(data, cond, delta) {
                    // Restrict to cache keys whose Skolem arguments agree
                    // with what the seed binds.
                    let cons: Vec<Option<Value>> = clause
                        .from_args
                        .iter()
                        .map(|a| seed.col(a).map(|col| seed.row(0)[col].clone()))
                        .collect();
                    constraints.push(cons);
                }
            }
        }
    }
    if constraints.is_empty() {
        Affected::No
    } else {
        Affected::Args(constraints)
    }
}

fn collect(
    block: &Block,
    path: &mut Vec<Condition>,
    clauses: &mut Vec<ClauseInfo>,
    creates: &mut Vec<CreateInfo>,
) {
    let depth = path.len();
    path.extend(block.where_.iter().cloned());
    for link in &block.links {
        clauses.push(ClauseInfo {
            from_fn: link.from.name.clone(),
            from_args: link.from.args.clone(),
            label: link.label.clone(),
            to: link.to.clone(),
            conditions: path.clone(),
        });
    }
    for sk in &block.creates {
        creates.push(CreateInfo {
            name: sk.name.clone(),
            args: sk.args.clone(),
            conditions: path.clone(),
        });
    }
    for child in &block.children {
        collect(child, path, clauses, creates);
    }
    path.truncate(depth);
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::ddl;
    use strudel_struql::parse_query;

    const FIG3: &str = r#"
CREATE RootPage(), AbstractsPage()
LINK RootPage() -> "AbstractsPage" -> AbstractsPage()
{
  WHERE Publications(x), x -> l -> v
  CREATE PaperPresentation(x), AbstractPage(x)
  LINK AbstractPage(x) -> l -> v,
       PaperPresentation(x) -> l -> v,
       PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
       AbstractsPage() -> "Abstract" -> AbstractPage(x)
  {
    WHERE l = "year"
    CREATE YearPage(v)
    LINK YearPage(v) -> "Year" -> v,
         YearPage(v) -> "Paper" -> PaperPresentation(x),
         RootPage() -> "YearPage" -> YearPage(v)
  }
}
"#;

    fn data() -> Graph {
        ddl::parse(
            r#"
object p1 in Publications { title "A" year 1997 }
object p2 in Publications { title "B" year 1998 }
object p3 in Publications { title "C" year 1997 }
"#,
        )
        .unwrap()
    }

    #[test]
    fn roots_are_unconditional_zero_arg_skolems() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let roots = site.roots();
        assert_eq!(roots.len(), 2);
        assert!(roots.iter().any(|r| r.skolem == "RootPage"));
        assert!(roots.iter().any(|r| r.skolem == "AbstractsPage"));
    }

    #[test]
    fn click_expansion_of_root() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let root = PageRef {
            skolem: "RootPage".into(),
            args: vec![],
        };
        let links = site.expand(&root).unwrap();
        // 1 AbstractsPage link + 2 distinct YearPage links.
        assert_eq!(links.len(), 3, "{links:?}");
        let years: Vec<&OutLink> = links.iter().filter(|l| l.label == "YearPage").collect();
        assert_eq!(years.len(), 2);
        assert!(years
            .iter()
            .all(|l| matches!(&l.target, Target::Page(p) if p.skolem == "YearPage")));
    }

    #[test]
    fn click_expansion_is_per_page() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let y1997 = PageRef {
            skolem: "YearPage".into(),
            args: vec![Value::Int(1997)],
        };
        let links = site.expand(&y1997).unwrap();
        // Year edge + two papers from 1997 (p1, p3) — not p2.
        let papers: Vec<_> = links.iter().filter(|l| l.label == "Paper").collect();
        assert_eq!(papers.len(), 2, "{links:?}");
        assert!(links
            .iter()
            .any(|l| l.label == "Year" && matches!(&l.target, Target::Value(Value::Int(1997)))));

        let y1998 = PageRef {
            skolem: "YearPage".into(),
            args: vec![Value::Int(1998)],
        };
        let links98 = site.expand(&y1998).unwrap();
        assert_eq!(links98.iter().filter(|l| l.label == "Paper").count(), 1);
    }

    #[test]
    fn arc_variable_labels_expand() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        // PaperPresentation(p1): copied attributes + Abstract link.
        let p1 = g.nodes()[0];
        let page = PageRef {
            skolem: "PaperPresentation".into(),
            args: vec![Value::Node(p1)],
        };
        let links = site.expand(&page).unwrap();
        assert!(links.iter().any(|l| l.label == "title"));
        assert!(links.iter().any(|l| l.label == "year"));
        assert!(links.iter().any(|l| l.label == "Abstract"
            && matches!(&l.target, Target::Page(p) if p.skolem == "AbstractPage")));
    }

    #[test]
    fn expansion_matches_materialized_site() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let opts = EvalOptions::default();
        let materialized = q.evaluate(&g, &opts).unwrap();
        let dynamic = DynamicSite::new(&g, &q, opts).unwrap();

        // For every materialized page, the dynamic expansion must produce
        // exactly the same out-edge count.
        for (name, args, oid) in materialized.table.iter() {
            let page = PageRef {
                skolem: name.to_string(),
                args: args.to_vec(),
            };
            let links = dynamic.expand(&page).unwrap();
            let materialized_edges = materialized.graph.out_edges(oid).len();
            assert_eq!(links.len(), materialized_edges, "page {page}");
        }
    }

    #[test]
    fn cache_hits_on_repeat_clicks() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let root = PageRef {
            skolem: "RootPage".into(),
            args: vec![],
        };
        site.expand(&root).unwrap();
        let before = site.stats();
        assert!(before.cache_misses > 0);
        site.expand(&root).unwrap();
        let after = site.stats();
        assert_eq!(after.expansions, before.expansions);
        assert_eq!(after.cache_misses, before.cache_misses);
        assert!(after.cache_hits > before.cache_hits);
    }

    #[test]
    fn pages_of_enumerates_extension() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let years = site.pages_of("YearPage").unwrap();
        assert_eq!(years.len(), 2);
        let pps = site.pages_of("PaperPresentation").unwrap();
        assert_eq!(pps.len(), 3);
        assert!(site.pages_of("Nothing").unwrap().is_empty());
    }

    #[test]
    fn unknown_page_yields_no_links() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let bogus = PageRef {
            skolem: "Nowhere".into(),
            args: vec![],
        };
        assert!(site.expand(&bogus).unwrap().is_empty());
        // A YearPage that no data supports: clauses run but bind nothing
        // (the conjunction is unsatisfiable with v = 1642).
        let empty = PageRef {
            skolem: "YearPage".into(),
            args: vec![Value::Int(1642)],
        };
        let links = site.expand(&empty).unwrap();
        assert!(links.is_empty(), "{links:?}");
    }

    #[test]
    fn cache_respects_entry_bound_and_counts_evictions() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let cfg = CacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
        };
        let site = DynamicSite::with_cache(&g, &q, EvalOptions::default(), cfg).unwrap();
        for page in [
            PageRef {
                skolem: "RootPage".into(),
                args: vec![],
            },
            PageRef {
                skolem: "YearPage".into(),
                args: vec![Value::Int(1997)],
            },
            PageRef {
                skolem: "YearPage".into(),
                args: vec![Value::Int(1998)],
            },
            PageRef {
                skolem: "AbstractsPage".into(),
                args: vec![],
            },
        ] {
            site.expand(&page).unwrap();
            assert!(
                site.cache_len() <= 2,
                "cache exceeded bound: {}",
                site.cache_len()
            );
        }
        assert!(site.stats().evictions > 0);
    }

    #[test]
    fn cache_respects_byte_bound() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let cfg = CacheConfig {
            max_entries: usize::MAX,
            max_bytes: 600,
        };
        let site = DynamicSite::with_cache(&g, &q, EvalOptions::default(), cfg).unwrap();
        for page in site.pages_of("PaperPresentation").unwrap() {
            site.expand(&page).unwrap();
            // A single oversized entry may stay (the caller just computed
            // it), but the cache must not accumulate beyond that.
            assert!(site.cache_len() <= 1 || site.cache_bytes() <= 600);
        }
        assert!(site.stats().evictions > 0);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        // YearPage and RootPage each have two link clauses, so every cold
        // expansion inserts two entries. Capacity four holds both years.
        let cfg = CacheConfig {
            max_entries: 4,
            max_bytes: usize::MAX,
        };
        let site = DynamicSite::with_cache(&g, &q, EvalOptions::default(), cfg).unwrap();
        let y1997 = PageRef {
            skolem: "YearPage".into(),
            args: vec![Value::Int(1997)],
        };
        let y1998 = PageRef {
            skolem: "YearPage".into(),
            args: vec![Value::Int(1998)],
        };
        let root = PageRef {
            skolem: "RootPage".into(),
            args: vec![],
        };
        site.expand(&y1997).unwrap();
        site.expand(&y1998).unwrap();
        // Touch 1997 so 1998 becomes least recently used, then displace
        // two entries with the root page.
        site.expand(&y1997).unwrap();
        site.expand(&root).unwrap();
        assert_eq!(site.stats().evictions, 2);

        // The recently-touched year survived ...
        let before = site.stats();
        site.expand(&y1997).unwrap();
        let s = site.stats();
        assert_eq!(s.cache_misses, before.cache_misses, "{s:?}");
        assert_eq!(s.cache_hits, before.cache_hits + 2, "{s:?}");
        // ... and the least-recently-used year was evicted.
        site.expand(&y1998).unwrap();
        let s2 = site.stats();
        assert_eq!(s2.cache_misses, s.cache_misses + 2, "{s2:?}");
    }

    #[test]
    fn invalidation_drops_only_matching_year() {
        let mut g = data();
        let q = parse_query(FIG3).unwrap();
        // Pre-intern and find p1 before the site borrows the graph.
        let p1 = g.nodes()[0];
        let note = g.sym("note");
        g.add_edge(p1, note, Value::str("extended version"))
            .unwrap();
        let site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let y1997 = PageRef {
            skolem: "YearPage".into(),
            args: vec![Value::Int(1997)],
        };
        let y1998 = PageRef {
            skolem: "YearPage".into(),
            args: vec![Value::Int(1998)],
        };
        site.expand(&y1997).unwrap();
        site.expand(&y1998).unwrap();
        let entries_before = site.cache_len();

        // The arc-variable clause `x -> l -> v` in the Fig. 3 query matches
        // any edge, so PaperPresentation/AbstractPage caches for p1 go; the
        // YearPage caches are keyed on v (the year) and only match if the
        // delta's target coerces to the year — "extended version" does not.
        let dropped = site.invalidate(&Delta::EdgeAdded {
            from: p1,
            label: note,
            to: Value::str("extended version"),
        });
        assert_eq!(site.cache_len(), entries_before - dropped as usize);
        // Both YearPage caches survive: the new value is not a year key.
        site.expand(&y1997).unwrap();
        site.expand(&y1998).unwrap();
        let s = site.stats();
        assert_eq!(s.invalidated, dropped);

        // A new year edge invalidates exactly that year's cache keys.
        let year = g.sym("year");
        let before_1997 = site.cache_len();
        let dropped_year = site.invalidate(&Delta::EdgeAdded {
            from: p1,
            label: year,
            to: Value::Int(1997),
        });
        assert!(dropped_year > 0);
        assert!(site.cache_len() < before_1997);
    }

    #[test]
    fn removal_delta_invalidates_matching_entries() {
        let mut g = data();
        let q = parse_query(FIG3).unwrap();
        let p1 = g.nodes()[0];
        let year = g.sym("year");
        let site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let y1997 = PageRef {
            skolem: "YearPage".into(),
            args: vec![Value::Int(1997)],
        };
        let y1998 = PageRef {
            skolem: "YearPage".into(),
            args: vec![Value::Int(1998)],
        };
        // Warm both year caches, then retract p1's 1997 edge.
        let links_before = site.expand(&y1997).unwrap();
        site.expand(&y1998).unwrap();
        assert_eq!(
            links_before.iter().filter(|l| l.label == "Paper").count(),
            2
        );

        let dropped = site.invalidate(&Delta::EdgeRemoved {
            from: p1,
            label: year,
            to: Value::Int(1997),
        });
        assert!(dropped > 0, "1997 entries must be dropped");

        // Recompute on the mutated graph through a fresh borrow, carrying
        // the invalidated cache over: 1997 loses a paper, 1998 is served
        // from the surviving warm entries.
        let snap = site.cache_snapshot();
        g.remove_edge(p1, year, &Value::Int(1997)).unwrap();
        let site2 = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        site2.cache_restore(snap);
        let links_after = site2.expand(&y1997).unwrap();
        assert_eq!(links_after.iter().filter(|l| l.label == "Paper").count(), 1);
        site2.expand(&y1998).unwrap();
        let s = site2.stats();
        assert!(
            s.cache_hits > 0,
            "1998 entries survived invalidation: {s:?}"
        );
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let root = PageRef {
            skolem: "RootPage".into(),
            args: vec![],
        };
        let links = site.expand(&root).unwrap();
        let snap = site.cache_snapshot();

        let warm = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        warm.cache_restore(snap);
        assert_eq!(warm.cache_len(), site.cache_len());
        let links2 = warm.expand(&root).unwrap();
        assert_eq!(links, links2);
        let s = warm.stats();
        assert_eq!(s.cache_misses, 0, "restored entries must serve the click");
        assert!(s.cache_hits > 0);
    }
}
