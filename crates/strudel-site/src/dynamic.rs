//! Incremental / click-time evaluation (\[FER 98c\], §1 and §6).
//!
//! Materializing a whole site up front "has problems similar to those of
//! data warehousing"; the alternative the paper proposes is to "precompute
//! the root(s) of a Web site, then compute at click time the query that
//! obtains the information required to display the next page."
//!
//! [`DynamicSite`] implements that decomposition. The site-definition query
//! is split into one sub-query per `LINK` clause: when the user "clicks"
//! into page `F(v̄)`, each clause `F(X) -> L -> T` is evaluated with `X`
//! bound to `v̄`, yielding exactly that page's outgoing links. Results are
//! cached — "our optimization techniques cache query results to reduce
//! click time for future queries".

use strudel_graph::fxhash::FxHashMap;
use strudel_graph::{Graph, Value};
use strudel_struql::analyze::analyze;
use strudel_struql::ast::{Block, Condition, LabelTerm, Term};
use strudel_struql::binding::Bindings;
use strudel_struql::{evaluate_conditions, EvalOptions, Query, Result, StruqlError};

/// A logical page: a Skolem function applied to argument values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PageRef {
    /// The Skolem function name, e.g. `YearPage`.
    pub skolem: String,
    /// The argument values, e.g. `[Int(1997)]`.
    pub args: Vec<Value>,
}

impl std::fmt::Display for PageRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.skolem, self.args.iter().map(ToString::to_string).collect::<Vec<_>>().join(","))
    }
}

/// The target of an out-link: another logical page or a plain value.
#[derive(Clone, PartialEq, Debug)]
pub enum Target {
    /// A link to another page.
    Page(PageRef),
    /// Page content (an atomic value or a data-graph node).
    Value(Value),
}

/// One outgoing link of a page, as computed at click time.
#[derive(Clone, PartialEq, Debug)]
pub struct OutLink {
    /// The edge label.
    pub label: String,
    /// The target.
    pub target: Target,
}

/// Counters for the dynamic evaluator.
#[derive(Default, Clone, Copy, Debug)]
pub struct DynStats {
    /// Pages expanded (cache misses).
    pub expansions: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Per-clause sub-queries evaluated.
    pub clause_queries: u64,
}

/// A link clause lifted out of the query, with its governing conjunction.
#[derive(Clone, Debug)]
struct ClauseInfo {
    from_fn: String,
    from_args: Vec<String>,
    label: LabelTerm,
    to: Term,
    conditions: Vec<Condition>,
}

/// A create clause lifted out of the query (for page enumeration).
#[derive(Clone, Debug)]
struct CreateInfo {
    name: String,
    args: Vec<String>,
    conditions: Vec<Condition>,
}

/// A site evaluated lazily, page by page.
pub struct DynamicSite<'g> {
    data: &'g Graph,
    opts: EvalOptions,
    clauses: Vec<ClauseInfo>,
    creates: Vec<CreateInfo>,
    cache: FxHashMap<(usize, Vec<Value>), Vec<OutLink>>,
    stats: DynStats,
}

impl<'g> DynamicSite<'g> {
    /// Decomposes `query` over `data`. The query is analyzed (so bare path
    /// steps resolve) but nothing is evaluated yet.
    pub fn new(data: &'g Graph, query: &Query, opts: EvalOptions) -> Result<Self> {
        let analyzed = analyze(query, &opts.predicates)?;
        let mut clauses = Vec::new();
        let mut creates = Vec::new();
        collect(&analyzed.query.root, &mut Vec::new(), &mut clauses, &mut creates);
        Ok(DynamicSite { data, opts, clauses, creates, cache: FxHashMap::default(), stats: DynStats::default() })
    }

    /// Evaluator counters so far.
    pub fn stats(&self) -> DynStats {
        self.stats
    }

    /// The precomputed roots: pages of zero-argument Skolem functions
    /// created under an unconditional (empty) conjunction.
    pub fn roots(&self) -> Vec<PageRef> {
        let mut out = Vec::new();
        for c in &self.creates {
            if c.args.is_empty() && c.conditions.is_empty() {
                let page = PageRef { skolem: c.name.clone(), args: Vec::new() };
                if !out.contains(&page) {
                    out.push(page);
                }
            }
        }
        out
    }

    /// Enumerates every page of one Skolem function by evaluating its
    /// creation conjunction (used for site maps; ordinary browsing reaches
    /// pages through [`DynamicSite::expand`]).
    pub fn pages_of(&mut self, skolem: &str) -> Result<Vec<PageRef>> {
        let mut out = Vec::new();
        let mut seen = strudel_graph::fxhash::FxHashSet::default();
        let creates: Vec<CreateInfo> =
            self.creates.iter().filter(|c| c.name == skolem).cloned().collect();
        for c in &creates {
            let bindings = evaluate_conditions(&c.conditions, self.data, Bindings::unit(), &self.opts)?;
            self.stats.clause_queries += 1;
            for row in &bindings.rows {
                let args: Option<Vec<Value>> = c.args.iter().map(|a| bindings.get(row, a).cloned()).collect();
                let Some(args) = args else {
                    return Err(StruqlError::Eval(format!("unbound Skolem argument in {}", c.name)));
                };
                if seen.insert(args.clone()) {
                    out.push(PageRef { skolem: skolem.to_string(), args });
                }
            }
        }
        Ok(out)
    }

    /// Click-time expansion: computes the outgoing links of `page` by
    /// running each of its link clauses with the page's Skolem arguments
    /// bound. Cached per (clause, arguments).
    pub fn expand(&mut self, page: &PageRef) -> Result<Vec<OutLink>> {
        let mut out: Vec<OutLink> = Vec::new();
        let clause_ids: Vec<usize> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.from_fn == page.skolem && c.from_args.len() == page.args.len())
            .map(|(i, _)| i)
            .collect();
        let mut expanded = false;
        for i in clause_ids {
            let key = (i, page.args.clone());
            if let Some(cached) = self.cache.get(&key) {
                self.stats.cache_hits += 1;
                out.extend(cached.iter().cloned());
                continue;
            }
            expanded = true;
            let links = self.eval_clause(i, page)?;
            out.extend(links.iter().cloned());
            self.cache.insert(key, links);
        }
        if expanded {
            self.stats.expansions += 1;
        }
        // Set semantics across clauses.
        let mut seen = Vec::new();
        out.retain(|l| {
            if seen.contains(l) {
                false
            } else {
                seen.push(l.clone());
                true
            }
        });
        Ok(out)
    }

    fn eval_clause(&mut self, idx: usize, page: &PageRef) -> Result<Vec<OutLink>> {
        let clause = self.clauses[idx].clone();
        // Bind the page's Skolem arguments.
        let mut start = Bindings::empty();
        let mut row: Vec<Value> = Vec::new();
        for (var, val) in clause.from_args.iter().zip(&page.args) {
            if let Some(col) = start.col(var) {
                // Repeated variable: values must agree.
                if &row[col] != val {
                    return Ok(Vec::new());
                }
            } else {
                start.add_var(var);
                row.push(val.clone());
            }
        }
        start.rows.push(row);
        let bindings = evaluate_conditions(&clause.conditions, self.data, start, &self.opts)?;
        self.stats.clause_queries += 1;

        // Aggregate targets group by this page (the clause's Skolem source)
        // and label; compute them over all rows at click time.
        if let Term::Agg(func, var) = &clause.to {
            let mut groups: FxHashMap<String, strudel_graph::fxhash::FxHashSet<Value>> =
                FxHashMap::default();
            for row in &bindings.rows {
                let label = match &clause.label {
                    LabelTerm::Lit(s) => s.clone(),
                    LabelTerm::Var(v) => match bindings.get(row, v).and_then(Value::text) {
                        Some(t) => t.to_string(),
                        None => continue,
                    },
                };
                if let Some(v) = bindings.get(row, var) {
                    groups.entry(label).or_default().insert(v.clone());
                }
            }
            let mut links: Vec<OutLink> = Vec::new();
            let mut labels: Vec<String> = groups.keys().cloned().collect();
            labels.sort();
            for label in labels {
                if let Some(v) = strudel_struql::construct::aggregate(*func, &groups[&label]) {
                    links.push(OutLink { label, target: Target::Value(v) });
                }
            }
            return Ok(links);
        }

        let mut links = Vec::new();
        for row in &bindings.rows {
            let label = match &clause.label {
                LabelTerm::Lit(s) => s.clone(),
                LabelTerm::Var(v) => match bindings.get(row, v).and_then(Value::text) {
                    Some(t) => t.to_string(),
                    None => continue,
                },
            };
            let target = match &clause.to {
                Term::Skolem(sk) => {
                    let args: Option<Vec<Value>> =
                        sk.args.iter().map(|a| bindings.get(row, a).cloned()).collect();
                    match args {
                        Some(args) => Target::Page(PageRef { skolem: sk.name.clone(), args }),
                        None => continue,
                    }
                }
                Term::Var(v) => match bindings.get(row, v) {
                    Some(val) => Target::Value(val.clone()),
                    None => continue,
                },
                Term::Lit(l) => Target::Value(l.to_value()),
                Term::Agg(..) => unreachable!("handled above"),
            };
            let link = OutLink { label, target };
            if !links.contains(&link) {
                links.push(link);
            }
        }
        Ok(links)
    }
}

fn collect(
    block: &Block,
    path: &mut Vec<Condition>,
    clauses: &mut Vec<ClauseInfo>,
    creates: &mut Vec<CreateInfo>,
) {
    let depth = path.len();
    path.extend(block.where_.iter().cloned());
    for link in &block.links {
        clauses.push(ClauseInfo {
            from_fn: link.from.name.clone(),
            from_args: link.from.args.clone(),
            label: link.label.clone(),
            to: link.to.clone(),
            conditions: path.clone(),
        });
    }
    for sk in &block.creates {
        creates.push(CreateInfo { name: sk.name.clone(), args: sk.args.clone(), conditions: path.clone() });
    }
    for child in &block.children {
        collect(child, path, clauses, creates);
    }
    path.truncate(depth);
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::ddl;
    use strudel_struql::parse_query;

    const FIG3: &str = r#"
CREATE RootPage(), AbstractsPage()
LINK RootPage() -> "AbstractsPage" -> AbstractsPage()
{
  WHERE Publications(x), x -> l -> v
  CREATE PaperPresentation(x), AbstractPage(x)
  LINK AbstractPage(x) -> l -> v,
       PaperPresentation(x) -> l -> v,
       PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
       AbstractsPage() -> "Abstract" -> AbstractPage(x)
  {
    WHERE l = "year"
    CREATE YearPage(v)
    LINK YearPage(v) -> "Year" -> v,
         YearPage(v) -> "Paper" -> PaperPresentation(x),
         RootPage() -> "YearPage" -> YearPage(v)
  }
}
"#;

    fn data() -> Graph {
        ddl::parse(
            r#"
object p1 in Publications { title "A" year 1997 }
object p2 in Publications { title "B" year 1998 }
object p3 in Publications { title "C" year 1997 }
"#,
        )
        .unwrap()
    }

    #[test]
    fn roots_are_unconditional_zero_arg_skolems() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let roots = site.roots();
        assert_eq!(roots.len(), 2);
        assert!(roots.iter().any(|r| r.skolem == "RootPage"));
        assert!(roots.iter().any(|r| r.skolem == "AbstractsPage"));
    }

    #[test]
    fn click_expansion_of_root() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let mut site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let root = PageRef { skolem: "RootPage".into(), args: vec![] };
        let links = site.expand(&root).unwrap();
        // 1 AbstractsPage link + 2 distinct YearPage links.
        assert_eq!(links.len(), 3, "{links:?}");
        let years: Vec<&OutLink> = links.iter().filter(|l| l.label == "YearPage").collect();
        assert_eq!(years.len(), 2);
        assert!(years.iter().all(|l| matches!(&l.target, Target::Page(p) if p.skolem == "YearPage")));
    }

    #[test]
    fn click_expansion_is_per_page() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let mut site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let y1997 = PageRef { skolem: "YearPage".into(), args: vec![Value::Int(1997)] };
        let links = site.expand(&y1997).unwrap();
        // Year edge + two papers from 1997 (p1, p3) — not p2.
        let papers: Vec<_> = links.iter().filter(|l| l.label == "Paper").collect();
        assert_eq!(papers.len(), 2, "{links:?}");
        assert!(links.iter().any(|l| l.label == "Year" && matches!(&l.target, Target::Value(Value::Int(1997)))));

        let y1998 = PageRef { skolem: "YearPage".into(), args: vec![Value::Int(1998)] };
        let links98 = site.expand(&y1998).unwrap();
        assert_eq!(links98.iter().filter(|l| l.label == "Paper").count(), 1);
    }

    #[test]
    fn arc_variable_labels_expand() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let mut site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        // PaperPresentation(p1): copied attributes + Abstract link.
        let p1 = g.nodes()[0];
        let page = PageRef { skolem: "PaperPresentation".into(), args: vec![Value::Node(p1)] };
        let links = site.expand(&page).unwrap();
        assert!(links.iter().any(|l| l.label == "title"));
        assert!(links.iter().any(|l| l.label == "year"));
        assert!(links.iter().any(|l| l.label == "Abstract" && matches!(&l.target, Target::Page(p) if p.skolem == "AbstractPage")));
    }

    #[test]
    fn expansion_matches_materialized_site() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let opts = EvalOptions::default();
        let materialized = q.evaluate(&g, &opts).unwrap();
        let mut dynamic = DynamicSite::new(&g, &q, opts).unwrap();

        // For every materialized page, the dynamic expansion must produce
        // exactly the same out-edge count.
        for (name, args, oid) in materialized.table.iter() {
            let page = PageRef { skolem: name.to_string(), args: args.to_vec() };
            let links = dynamic.expand(&page).unwrap();
            let materialized_edges = materialized.graph.out_edges(oid).len();
            assert_eq!(links.len(), materialized_edges, "page {page}");
        }
    }

    #[test]
    fn cache_hits_on_repeat_clicks() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let mut site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let root = PageRef { skolem: "RootPage".into(), args: vec![] };
        site.expand(&root).unwrap();
        let before = site.stats();
        site.expand(&root).unwrap();
        let after = site.stats();
        assert_eq!(after.expansions, before.expansions);
        assert!(after.cache_hits > before.cache_hits);
    }

    #[test]
    fn pages_of_enumerates_extension() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let mut site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let years = site.pages_of("YearPage").unwrap();
        assert_eq!(years.len(), 2);
        let pps = site.pages_of("PaperPresentation").unwrap();
        assert_eq!(pps.len(), 3);
        assert!(site.pages_of("Nothing").unwrap().is_empty());
    }

    #[test]
    fn unknown_page_yields_no_links() {
        let g = data();
        let q = parse_query(FIG3).unwrap();
        let mut site = DynamicSite::new(&g, &q, EvalOptions::default()).unwrap();
        let bogus = PageRef { skolem: "Nowhere".into(), args: vec![] };
        assert!(site.expand(&bogus).unwrap().is_empty());
        // A YearPage that no data supports: clauses run but bind nothing
        // (the conjunction is unsatisfiable with v = 1642).
        let empty = PageRef { skolem: "YearPage".into(), args: vec![Value::Int(1642)] };
        let links = site.expand(&empty).unwrap();
        assert!(links.is_empty(), "{links:?}");
    }
}
