//! Integrity constraints on site structure (\[FER 98b\], §1/§3.2).
//!
//! "Given a description of the Web site's structure in StruQL, we want to
//! check whether the resulting Web site is guaranteed to satisfy certain
//! constraints (e.g., all pages are reachable from the root, every
//! organization homepage points to the homepages of its suborganizations, or
//! proprietary data is not displayed on the external version of the site)."
//!
//! Two checkers are provided:
//!
//! * [`verify_schema`] — a *static*, conservative analysis over the
//!   [`SiteSchema`]: it answers [`Verdict::Satisfied`] or
//!   [`Verdict::Violated`] when the schema alone decides the constraint for
//!   **every** possible data graph, and [`Verdict::Unknown`] otherwise
//!   (e.g. an edge that exists only under a strictly stronger conjunction
//!   than the page's creation condition may or may not materialize).
//! * [`verify_graph`] — an *exact* check on a materialized site graph,
//!   using the Skolem table to find each function's extension.

use crate::schema::SiteSchema;
use strudel_graph::fxhash::FxHashSet;
use strudel_graph::{Graph, Oid, Value};
use strudel_struql::{BlockId, SkolemTable};

/// A structural integrity constraint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Constraint {
    /// Every page (Skolem node) is reachable from pages of the root Skolem
    /// function: "all pages are reachable from the site's root".
    AllReachableFrom {
        /// The root Skolem function name, e.g. `RootPage`.
        root: String,
    },
    /// Every `from`-page has at least one edge labeled `label` to a
    /// `to`-page: "every organization homepage points to the homepages of
    /// its suborganizations".
    EveryHasEdge {
        /// Source Skolem function.
        from: String,
        /// Required edge label.
        label: String,
        /// Target Skolem function.
        to: String,
    },
    /// No page of function `forbidden` is reachable from pages of function
    /// `from`: "proprietary data is not displayed on the external version".
    NoneReachable {
        /// Start Skolem function.
        from: String,
        /// Forbidden Skolem function.
        forbidden: String,
    },
}

/// The result of a static schema check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Guaranteed for every data graph.
    Satisfied,
    /// Guaranteed violated (structurally impossible to satisfy).
    Violated(String),
    /// The schema alone cannot decide; check the materialized graph.
    Unknown(String),
}

/// Whether governing conjunction `a` implies `b` syntactically: `b`'s block
/// set is a subset of `a`'s (every condition governing `b` also governs
/// `a`).
fn implies(a: &[BlockId], b: &[BlockId]) -> bool {
    b.iter().all(|x| a.contains(x))
}

/// Statically verifies `constraint` against a site schema.
pub fn verify_schema(schema: &SiteSchema, constraint: &Constraint) -> Verdict {
    match constraint {
        Constraint::AllReachableFrom { root } => {
            let Some(root_idx) = schema.node_index(root) else {
                return Verdict::Violated(format!("no Skolem function named {root}"));
            };
            let reach: FxHashSet<usize> = schema.reachable_from(root_idx).into_iter().collect();
            let mut conditional = Vec::new();
            for (i, node) in schema.nodes().iter().enumerate() {
                if i == 0 || schema.creation_queries(i).is_none() {
                    continue; // NS or never-created function
                }
                if !reach.contains(&i) {
                    return Verdict::Violated(format!(
                        "{} is never linked from {root} in the schema",
                        node.name()
                    ));
                }
                // Reachable in the schema, but is every *instance* linked?
                // Conservative: each schema edge into `i` must be governed by
                // a conjunction no stronger than the node's creation
                // conjunction, along some path. We only check the direct
                // in-edges here.
                let create_q = schema.creation_queries(i).expect("checked");
                let guaranteed = schema
                    .edges()
                    .iter()
                    .any(|e| e.to == i && implies(create_q, &e.queries));
                if !guaranteed && i != root_idx {
                    conditional.push(node.name().to_string());
                }
            }
            if conditional.is_empty() {
                Verdict::Satisfied
            } else {
                Verdict::Unknown(format!(
                    "pages of {} are linked only under extra conditions",
                    conditional.join(", ")
                ))
            }
        }
        Constraint::EveryHasEdge { from, label, to } => {
            let Some(from_idx) = schema.node_index(from) else {
                return Verdict::Violated(format!("no Skolem function named {from}"));
            };
            let Some(to_idx) = schema.node_index(to) else {
                return Verdict::Violated(format!("no Skolem function named {to}"));
            };
            let create_q = schema.creation_queries(from_idx).unwrap_or(&[]);
            let mut found_conditional = false;
            for e in schema.edges() {
                if e.from == from_idx && e.to == to_idx && e.label.as_deref() == Some(label) {
                    if implies(create_q, &e.queries) {
                        // The edge exists whenever the page exists.
                        return Verdict::Satisfied;
                    }
                    found_conditional = true;
                }
            }
            if found_conditional {
                Verdict::Unknown(format!(
                    "{from} -{label}-> {to} exists only under a stronger conjunction than {from}'s creation"
                ))
            } else {
                Verdict::Violated(format!(
                    "no link clause {from} -{label}-> {to} in the query"
                ))
            }
        }
        Constraint::NoneReachable { from, forbidden } => {
            let Some(from_idx) = schema.node_index(from) else {
                return Verdict::Violated(format!("no Skolem function named {from}"));
            };
            let Some(bad_idx) = schema.node_index(forbidden) else {
                // Nothing of that function can ever exist.
                return Verdict::Satisfied;
            };
            if schema.reachable_from(from_idx).contains(&bad_idx) {
                // A schema path exists; it may or may not materialize.
                Verdict::Unknown(format!("a schema path {from} →* {forbidden} exists"))
            } else {
                Verdict::Satisfied
            }
        }
    }
}

/// The extension of a Skolem function in a materialized site.
fn extension(table: &SkolemTable, name: &str) -> Vec<Oid> {
    table
        .iter()
        .filter(|(f, _, _)| *f == name)
        .map(|(_, _, oid)| oid)
        .collect()
}

/// Node-to-node reachability over a site graph.
fn graph_reachable(graph: &Graph, starts: &[Oid]) -> FxHashSet<Oid> {
    let reader = graph.reader();
    let mut seen: FxHashSet<Oid> = FxHashSet::default();
    let mut stack: Vec<Oid> = starts.to_vec();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        for (_, v) in reader.out(n) {
            if let Value::Node(m) = v {
                if !seen.contains(m) {
                    stack.push(*m);
                }
            }
        }
    }
    seen
}

/// Exactly verifies `constraint` against a materialized site graph and the
/// Skolem table that built it.
pub fn verify_graph(graph: &Graph, table: &SkolemTable, constraint: &Constraint) -> Verdict {
    match constraint {
        Constraint::AllReachableFrom { root } => {
            let roots = extension(table, root);
            if roots.is_empty() {
                return Verdict::Violated(format!("no instances of {root} exist"));
            }
            let reach = graph_reachable(graph, &roots);
            for (f, args, oid) in table.iter() {
                if !reach.contains(&oid) {
                    return Verdict::Violated(format!(
                        "{f}({}) is not reachable from {root}",
                        args.iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(",")
                    ));
                }
            }
            Verdict::Satisfied
        }
        Constraint::EveryHasEdge { from, label, to } => {
            let to_set: FxHashSet<Oid> = extension(table, to).into_iter().collect();
            let reader = graph.reader();
            let Some(sym) = graph.universe().interner().get(label) else {
                return Verdict::Violated(format!("label {label:?} never occurs in the site"));
            };
            for n in extension(table, from) {
                let ok = reader
                    .attr_values(n, sym)
                    .any(|v| v.as_node().is_some_and(|m| to_set.contains(&m)));
                if !ok {
                    return Verdict::Violated(format!(
                        "{} lacks a {label:?} edge to a {to} page",
                        graph.node_name(n).unwrap_or_default()
                    ));
                }
            }
            Verdict::Satisfied
        }
        Constraint::NoneReachable { from, forbidden } => {
            let reach = graph_reachable(graph, &extension(table, from));
            for n in extension(table, forbidden) {
                if reach.contains(&n) {
                    return Verdict::Violated(format!(
                        "{} is reachable from {from}",
                        graph.node_name(n).unwrap_or_default()
                    ));
                }
            }
            Verdict::Satisfied
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::ddl;
    use strudel_struql::{parse_query, EvalOptions};

    fn data() -> Graph {
        ddl::parse(
            r#"
object p1 in Publications { title "A" year 1997 }
object p2 in Publications { title "B" year 1998 proprietary true }
"#,
        )
        .unwrap()
    }

    const GOOD: &str = r#"
CREATE Root()
{
  WHERE Publications(x)
  CREATE Page(x)
  LINK Root() -> "Paper" -> Page(x), Page(x) -> "Up" -> Root()
}
"#;

    #[test]
    fn schema_reachability_satisfied() {
        let q = parse_query(GOOD).unwrap();
        let s = SiteSchema::from_query(&q);
        assert_eq!(
            verify_schema(
                &s,
                &Constraint::AllReachableFrom {
                    root: "Root".into()
                }
            ),
            Verdict::Satisfied
        );
    }

    #[test]
    fn schema_reachability_violated_for_orphan() {
        let q = parse_query(
            r#"CREATE Root()
               { WHERE Publications(x) CREATE Orphan(x) LINK Orphan(x) -> "Up" -> Root() }"#,
        )
        .unwrap();
        let s = SiteSchema::from_query(&q);
        match verify_schema(
            &s,
            &Constraint::AllReachableFrom {
                root: "Root".into(),
            },
        ) {
            Verdict::Violated(msg) => assert!(msg.contains("Orphan"), "{msg}"),
            other => panic!("expected Violated, got {other:?}"),
        }
    }

    #[test]
    fn schema_reachability_unknown_when_link_is_conditional() {
        // Pages are created for every publication, but linked only for 1997
        // ones: the schema alone cannot guarantee reachability.
        let q = parse_query(
            r#"CREATE Root()
               { WHERE Publications(x) CREATE Page(x)
                 { WHERE x -> "year" -> 1997 LINK Root() -> "Paper" -> Page(x) } }"#,
        )
        .unwrap();
        let s = SiteSchema::from_query(&q);
        assert!(matches!(
            verify_schema(
                &s,
                &Constraint::AllReachableFrom {
                    root: "Root".into()
                }
            ),
            Verdict::Unknown(_)
        ));
        // ...and the exact graph check catches the violation on real data.
        let out = parse_query(q.to_string().as_str())
            .unwrap()
            .evaluate(&data(), &EvalOptions::default())
            .unwrap();
        assert!(matches!(
            verify_graph(
                &out.graph,
                &out.table,
                &Constraint::AllReachableFrom {
                    root: "Root".into()
                }
            ),
            Verdict::Violated(_)
        ));
    }

    #[test]
    fn every_has_edge_schema_and_graph() {
        let q = parse_query(GOOD).unwrap();
        let s = SiteSchema::from_query(&q);
        let c = Constraint::EveryHasEdge {
            from: "Page".into(),
            label: "Up".into(),
            to: "Root".into(),
        };
        assert_eq!(verify_schema(&s, &c), Verdict::Satisfied);
        let out = q.evaluate(&data(), &EvalOptions::default()).unwrap();
        assert_eq!(verify_graph(&out.graph, &out.table, &c), Verdict::Satisfied);

        let missing = Constraint::EveryHasEdge {
            from: "Root".into(),
            label: "Index".into(),
            to: "Page".into(),
        };
        assert!(matches!(verify_schema(&s, &missing), Verdict::Violated(_)));
        assert!(matches!(
            verify_graph(&out.graph, &out.table, &missing),
            Verdict::Violated(_)
        ));
    }

    #[test]
    fn none_reachable_proprietary_exclusion() {
        // External site links only non-proprietary pages.
        let external = parse_query(
            r#"CREATE Root()
               { WHERE Publications(x), not(x -> "proprietary" -> true)
                 CREATE Page(x) LINK Root() -> "Paper" -> Page(x) }
               { WHERE Publications(x), x -> "proprietary" -> true
                 CREATE Secret(x) }"#,
        )
        .unwrap();
        let s = SiteSchema::from_query(&external);
        let c = Constraint::NoneReachable {
            from: "Root".into(),
            forbidden: "Secret".into(),
        };
        assert_eq!(verify_schema(&s, &c), Verdict::Satisfied);
        let out = external.evaluate(&data(), &EvalOptions::default()).unwrap();
        assert_eq!(verify_graph(&out.graph, &out.table, &c), Verdict::Satisfied);
    }

    #[test]
    fn none_reachable_detects_leak() {
        let leaky = parse_query(
            r#"CREATE Root()
               { WHERE Publications(x), x -> "proprietary" -> true
                 CREATE Secret(x) LINK Root() -> "Paper" -> Secret(x) }"#,
        )
        .unwrap();
        let s = SiteSchema::from_query(&leaky);
        let c = Constraint::NoneReachable {
            from: "Root".into(),
            forbidden: "Secret".into(),
        };
        assert!(matches!(verify_schema(&s, &c), Verdict::Unknown(_)));
        let out = leaky.evaluate(&data(), &EvalOptions::default()).unwrap();
        assert!(matches!(
            verify_graph(&out.graph, &out.table, &c),
            Verdict::Violated(_)
        ));
    }

    #[test]
    fn unknown_function_names() {
        let q = parse_query(GOOD).unwrap();
        let s = SiteSchema::from_query(&q);
        assert!(matches!(
            verify_schema(
                &s,
                &Constraint::AllReachableFrom {
                    root: "Nope".into()
                }
            ),
            Verdict::Violated(_)
        ));
        assert_eq!(
            verify_schema(
                &s,
                &Constraint::NoneReachable {
                    from: "Root".into(),
                    forbidden: "Nope".into()
                }
            ),
            Verdict::Satisfied
        );
    }

    #[test]
    fn graph_check_handles_empty_roots() {
        let q = parse_query(
            r#"{ WHERE Publications(x), x -> "year" -> 1642 CREATE Root() }
               { WHERE Publications(x) CREATE Page(x) COLLECT P(Page(x)) }"#,
        )
        .unwrap();
        let out = q.evaluate(&data(), &EvalOptions::default()).unwrap();
        assert!(matches!(
            verify_graph(
                &out.graph,
                &out.table,
                &Constraint::AllReachableFrom {
                    root: "Root".into()
                }
            ),
            Verdict::Violated(_)
        ));
    }
}
