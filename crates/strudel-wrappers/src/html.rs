//! The HTML wrapper.
//!
//! For the CNN demonstration the authors "did not have access to CNN's
//! databases of articles", so they "mapped their HTML pages into a data
//! graph containing about 300 articles" (§5.1); the AT&T site likewise used
//! hand-written wrappers for existing HTML pages. This wrapper extracts the
//! structure STRUDEL needs from a page: its `<title>`, headings, anchor
//! links, images, and paragraph text.

use strudel_graph::{FileKind, Graph, GraphError, Oid, Value};

/// The structured content extracted from one HTML page.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PageContent {
    /// `<title>` text.
    pub title: Option<String>,
    /// Heading texts (`<h1>`–`<h6>`), in order.
    pub headings: Vec<String>,
    /// `(href, anchor text)` pairs, in order.
    pub links: Vec<(String, String)>,
    /// `src` attributes of `<img>` tags.
    pub images: Vec<String>,
    /// Concatenated visible body text, whitespace-normalized.
    pub text: String,
}

/// A minimal, forgiving HTML scanner: tags are recognized lexically, text
/// is accumulated outside tags, scripts/styles are skipped, entities
/// `&amp; &lt; &gt; &quot; &#NN;` are decoded.
pub fn extract(html: &str) -> PageContent {
    let mut out = PageContent::default();
    let bytes = html.as_bytes();
    let mut i = 0usize;
    let mut text = String::new();
    // The element whose text we are currently capturing specially.
    let mut capture: Option<(&'static str, String)> = None;
    let mut current_href: Option<(String, String)> = None;
    let mut skip_until: Option<&'static str> = None;

    while i < bytes.len() {
        if bytes[i] == b'<' {
            let end = match html[i..].find('>') {
                Some(off) => i + off,
                None => break,
            };
            let tag_body = &html[i + 1..end];
            let (name, attrs) = split_tag(tag_body);
            let lower = name.to_ascii_lowercase();
            let closing = lower.starts_with('/');
            let base = lower.trim_start_matches('/').to_string();
            if let Some(waiting) = skip_until {
                if closing && base == waiting {
                    skip_until = None;
                }
                i = end + 1;
                continue;
            }
            match (closing, base.as_str()) {
                (false, "script") | (false, "style") => {
                    skip_until = Some(if base == "script" { "script" } else { "style" });
                }
                (false, "title") => capture = Some(("title", String::new())),
                (true, "title") => {
                    if let Some((_, t)) = capture.take() {
                        out.title = Some(normalize(&t));
                    }
                }
                (false, "h1" | "h2" | "h3" | "h4" | "h5" | "h6") => {
                    capture = Some(("h", String::new()))
                }
                (true, "h1" | "h2" | "h3" | "h4" | "h5" | "h6") => {
                    if let Some((_, t)) = capture.take() {
                        let t = normalize(&t);
                        if !t.is_empty() {
                            out.headings.push(t);
                        }
                    }
                }
                (false, "a") => {
                    if let Some(href) = attr_value(attrs, "href") {
                        current_href = Some((href, String::new()));
                    }
                }
                (true, "a") => {
                    if let Some((href, t)) = current_href.take() {
                        out.links.push((href, normalize(&t)));
                    }
                }
                (false, "img") => {
                    if let Some(src) = attr_value(attrs, "src") {
                        out.images.push(src);
                    }
                }
                _ => {}
            }
            i = end + 1;
        } else {
            let next_tag = html[i..]
                .find('<')
                .map(|off| i + off)
                .unwrap_or(bytes.len());
            let chunk = decode_entities(&html[i..next_tag]);
            if skip_until.is_none() {
                if let Some((_, buf)) = &mut capture {
                    buf.push_str(&chunk);
                }
                if let Some((_, buf)) = &mut current_href {
                    buf.push_str(&chunk);
                }
                text.push_str(&chunk);
                text.push(' ');
            }
            i = next_tag;
        }
    }
    out.text = normalize(&text);
    out
}

fn split_tag(tag: &str) -> (&str, &str) {
    let tag = tag.trim();
    match tag.find(|c: char| c.is_ascii_whitespace()) {
        Some(i) => (&tag[..i], &tag[i..]),
        None => (tag, ""),
    }
}

fn attr_value(attrs: &str, name: &str) -> Option<String> {
    let lower = attrs.to_ascii_lowercase();
    let pos = lower.find(&format!("{name}="))?;
    let rest = &attrs[pos + name.len() + 1..];
    let rest = rest.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.find('"').map(|end| stripped[..end].to_string())
    } else if let Some(stripped) = rest.strip_prefix('\'') {
        stripped.find('\'').map(|end| stripped[..end].to_string())
    } else {
        let end = rest
            .find(|c: char| c.is_ascii_whitespace())
            .unwrap_or(rest.len());
        Some(rest[..end].to_string())
    }
}

fn decode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let semi = rest.find(';');
        match semi {
            Some(end) if end <= 8 => {
                let entity = &rest[1..end];
                match entity {
                    "amp" => out.push('&'),
                    "lt" => out.push('<'),
                    "gt" => out.push('>'),
                    "quot" => out.push('"'),
                    "apos" => out.push('\''),
                    "nbsp" => out.push(' '),
                    _ if entity.starts_with('#') => {
                        let digits = &entity[1..];
                        let code = match digits.strip_prefix(['x', 'X']) {
                            Some(hex) => u32::from_str_radix(hex, 16).ok(),
                            None => digits.parse::<u32>().ok(),
                        };
                        match code.and_then(char::from_u32) {
                            Some(c) => out.push(c),
                            // Lenient fallback: an unparsable or invalid
                            // numeric reference stays literal text rather
                            // than vanishing.
                            None => {
                                out.push('&');
                                out.push_str(entity);
                                out.push(';');
                            }
                        }
                    }
                    _ => {
                        out.push('&');
                        out.push_str(entity);
                        out.push(';');
                    }
                }
                rest = &rest[end + 1..];
            }
            _ => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Maps a set of `(url, html)` pages into a data graph: one object per page
/// in the `Pages` collection, with `url`, `title`, `heading*`, `text`,
/// `image*` attributes and `link` edges — resolved to the target page's
/// *node* when the href names another wrapped page, kept as a URL value
/// otherwise.
pub fn to_graph(pages: &[(String, String)]) -> Result<Graph, GraphError> {
    let mut g = Graph::standalone();
    load_into(&mut g, pages)?;
    Ok(g)
}

/// Like [`to_graph`], loading into an existing graph.
pub fn load_into(g: &mut Graph, pages: &[(String, String)]) -> Result<(), GraphError> {
    let coll = g.ensure_collection("Pages");
    let mut nodes: Vec<(String, Oid, PageContent)> = Vec::with_capacity(pages.len());
    for (url, html) in pages {
        let node = g.new_node(Some(url));
        g.add_to_collection(coll, Value::Node(node));
        nodes.push((url.clone(), node, extract(html)));
    }
    let find = |href: &str| nodes.iter().find(|(u, _, _)| u == href).map(|(_, n, _)| *n);
    for (url, node, content) in &nodes {
        g.add_edge_str(*node, "url", Value::url(url))
            .expect("member");
        if let Some(t) = &content.title {
            g.add_edge_str(*node, "title", Value::str(t))
                .expect("member");
        }
        for h in &content.headings {
            g.add_edge_str(*node, "heading", Value::str(h))
                .expect("member");
        }
        if !content.text.is_empty() {
            g.add_edge_str(*node, "text", Value::str(&content.text))
                .expect("member");
        }
        for img in &content.images {
            let kind = FileKind::from_path(img).unwrap_or(FileKind::Image);
            g.add_edge_str(*node, "image", Value::file(kind, img))
                .expect("member");
        }
        for (href, _anchor) in &content.links {
            match find(href) {
                Some(target) => g
                    .add_edge_str(*node, "link", Value::Node(target))
                    .expect("member"),
                None => g
                    .add_edge_str(*node, "link", Value::url(href))
                    .expect("member"),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"<html><head><title>Top Story &amp; More</title>
<style>body { color: red }</style></head>
<body><h1>Breaking News</h1>
<p>Something happened &lt;today&gt;.</p>
<a href="story2.html">Related story</a>
<a href="http://elsewhere.example/x">External</a>
<img src="photo.jpg">
<script>ignore(this)</script>
</body></html>"#;

    #[test]
    fn extracts_title_headings_links_images() {
        let c = extract(PAGE);
        assert_eq!(c.title.as_deref(), Some("Top Story & More"));
        assert_eq!(c.headings, vec!["Breaking News"]);
        assert_eq!(c.links.len(), 2);
        assert_eq!(
            c.links[0],
            ("story2.html".to_string(), "Related story".to_string())
        );
        assert_eq!(c.images, vec!["photo.jpg"]);
        assert!(c.text.contains("Something happened <today>."), "{}", c.text);
        assert!(!c.text.contains("ignore"), "script content must be skipped");
        assert!(!c.text.contains("color"), "style content must be skipped");
    }

    #[test]
    fn entity_decoding() {
        assert_eq!(
            decode_entities("a &amp; b &#65; &unknown; &"),
            "a & b A &unknown; &"
        );
    }

    #[test]
    fn hex_and_named_entities_decode() {
        // Hexadecimal character references, both case markers.
        assert_eq!(decode_entities("&#x41;&#X42;&#x6a;"), "ABj");
        // Mixed with decimal and named forms in one run.
        assert_eq!(decode_entities("&apos;&#x27;&#39;"), "'''");
        assert_eq!(decode_entities("caf&#xE9;"), "café");
    }

    #[test]
    fn malformed_numeric_references_stay_literal() {
        // Unparsable digits, out-of-range code points, and surrogates
        // fall back to the literal text instead of disappearing.
        assert_eq!(decode_entities("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode_entities("&#abc;"), "&#abc;");
        assert_eq!(decode_entities("&#xD800;"), "&#xD800;");
        // A lone ampersand before a distant semicolon is untouched.
        assert_eq!(decode_entities("fish & chips; tea"), "fish & chips; tea");
    }

    #[test]
    fn attr_value_quoting_styles() {
        assert_eq!(
            attr_value(r#" href="x.html""#, "href"),
            Some("x.html".into())
        );
        assert_eq!(attr_value(" href='y.html'", "href"), Some("y.html".into()));
        assert_eq!(
            attr_value(" href=z.html class=q", "href"),
            Some("z.html".into())
        );
        assert_eq!(attr_value(" class=q", "href"), None);
    }

    #[test]
    fn graph_resolves_internal_links() {
        let pages = vec![
            (
                "index.html".to_string(),
                PAGE.replace("story2.html", "other.html"),
            ),
            ("other.html".to_string(), "<title>Other</title>".to_string()),
        ];
        let g = to_graph(&pages).unwrap();
        assert_eq!(g.collection_str("Pages").unwrap().len(), 2);
        let interner = g.universe().interner();
        let r = g.reader();
        let index = g.nodes()[0];
        let other = g.nodes()[1];
        let links: Vec<_> = r
            .attr_values(index, interner.get("link").unwrap())
            .cloned()
            .collect();
        assert!(
            links.contains(&Value::Node(other)),
            "internal link resolves to node"
        );
        assert!(
            links
                .iter()
                .any(|v| matches!(v, Value::Url(u) if u.contains("elsewhere"))),
            "external stays URL"
        );
    }

    #[test]
    fn malformed_html_does_not_panic() {
        for bad in ["<", "<a href=", "<h1>unclosed", "&#xZZ;", "<title>t"] {
            let _ = extract(bad);
        }
    }
}
