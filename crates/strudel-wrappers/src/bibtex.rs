//! The BibTeX wrapper: "a simple wrapper maps BibTeX files into data
//! graphs" (§5.1). This is the wrapper behind the example home-page site of
//! §3.1 — its output is exactly the shape of Fig. 2.
//!
//! Supported BibTeX subset: `@type{key, field = value, …}` entries with
//! brace- or quote-delimited values (nested braces respected), bare numeric
//! values, `@string` macro definitions with `#` concatenation, and
//! `@comment`/`@preamble` blocks (skipped). Fields named `author` and
//! `editor` split on ` and `; `abstract` and `postscript`/`ps`/`url` fields
//! get file/URL typing by extension.

use std::collections::HashMap;
use strudel_graph::{FileKind, Graph, GraphError, Value};

/// A parsing error with a line number.
fn err(line: usize, message: impl Into<String>) -> GraphError {
    GraphError::DdlParse {
        line,
        message: message.into(),
    }
}

/// One parsed BibTeX entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Entry type, lower-cased (`article`, `inproceedings`, …).
    pub entry_type: String,
    /// Citation key.
    pub key: String,
    /// Fields in source order (names lower-cased).
    pub fields: Vec<(String, String)>,
}

struct Scanner<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
    strings: HashMap<String, String>,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.as_bytes().get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.bump();
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b':' || b == b'.' || b == b'+')
        {
            self.bump();
        }
        self.src[start..self.pos].to_string()
    }

    /// Reads a `{…}` group with balanced nesting, returning the contents.
    fn braced(&mut self) -> Result<String, GraphError> {
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(b) = self.peek() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        let text = self.src[start..self.pos].to_string();
                        self.bump();
                        return Ok(text);
                    }
                }
                _ => {}
            }
            self.bump();
        }
        Err(err(self.line, "unbalanced braces in BibTeX value"))
    }

    fn quoted(&mut self) -> Result<String, GraphError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.bump();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let text = self.src[start..self.pos].to_string();
                self.bump();
                return Ok(text);
            }
            self.bump();
        }
        Err(err(self.line, "unterminated quoted BibTeX value"))
    }

    /// Reads one value: braced, quoted, numeric, or a `@string` macro name,
    /// possibly `#`-concatenated.
    fn value(&mut self) -> Result<String, GraphError> {
        let mut parts = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => parts.push(self.braced()?),
                Some(b'"') => parts.push(self.quoted()?),
                Some(b) if b.is_ascii_digit() => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.') {
                        self.bump();
                    }
                    parts.push(self.src[start..self.pos].to_string());
                }
                Some(b) if b.is_ascii_alphabetic() => {
                    let name = self.ident().to_ascii_lowercase();
                    match self.strings.get(&name) {
                        Some(v) => parts.push(v.clone()),
                        // Unknown macro: keep its name (month abbreviations
                        // like `may` are conventionally predefined).
                        None => parts.push(name),
                    }
                }
                other => {
                    return Err(err(
                        self.line,
                        format!("expected a BibTeX value, found {other:?}"),
                    ))
                }
            }
            self.skip_ws();
            if self.peek() == Some(b'#') {
                self.bump();
            } else {
                return Ok(parts.concat());
            }
        }
    }
}

/// Normalizes whitespace and strips protective braces from a field value.
fn clean(value: &str) -> String {
    let collapsed: String = value.split_whitespace().collect::<Vec<_>>().join(" ");
    collapsed.replace(['{', '}'], "")
}

/// Parses BibTeX text into entries.
pub fn parse(src: &str) -> Result<Vec<Entry>, GraphError> {
    let mut s = Scanner {
        src,
        pos: 0,
        line: 1,
        strings: HashMap::new(),
    };
    let mut entries = Vec::new();
    loop {
        // Skip to the next `@`; everything between entries is a comment.
        while let Some(b) = s.peek() {
            if b == b'@' {
                break;
            }
            s.bump();
        }
        if s.peek().is_none() {
            return Ok(entries);
        }
        s.bump(); // `@`
        let entry_type = s.ident().to_ascii_lowercase();
        s.skip_ws();
        if s.peek() != Some(b'{') && s.peek() != Some(b'(') {
            return Err(err(s.line, format!("expected '{{' after @{entry_type}")));
        }
        match entry_type.as_str() {
            "comment" | "preamble" => {
                s.braced()?;
                continue;
            }
            "string" => {
                s.bump(); // `{`
                s.skip_ws();
                let name = s.ident().to_ascii_lowercase();
                s.skip_ws();
                if s.bump() != Some(b'=') {
                    return Err(err(s.line, "expected `=` in @string"));
                }
                let value = s.value()?;
                s.skip_ws();
                if s.bump() != Some(b'}') {
                    return Err(err(s.line, "expected `}` closing @string"));
                }
                s.strings.insert(name, value);
                continue;
            }
            _ => {}
        }
        s.bump(); // `{`
        s.skip_ws();
        let key = s.ident();
        if key.is_empty() {
            return Err(err(s.line, "missing citation key"));
        }
        s.skip_ws();
        let mut fields = Vec::new();
        loop {
            s.skip_ws();
            match s.peek() {
                Some(b',') => {
                    s.bump();
                }
                Some(b'}') => {
                    s.bump();
                    break;
                }
                None => return Err(err(s.line, "unterminated entry")),
                _ => {
                    let name = s.ident().to_ascii_lowercase();
                    if name.is_empty() {
                        return Err(err(s.line, "expected a field name"));
                    }
                    s.skip_ws();
                    if s.bump() != Some(b'=') {
                        return Err(err(s.line, format!("expected `=` after field {name}")));
                    }
                    let value = s.value()?;
                    fields.push((name, clean(&value)));
                }
            }
        }
        entries.push(Entry {
            entry_type,
            key,
            fields,
        });
    }
}

/// The value typing the wrapper applies, mirroring Fig. 2's collection
/// directives: `abstract` is a text file, `postscript`/`ps` a PostScript
/// file, `url` a URL, `year`/`volume-like` numerics become integers.
fn typed_value(field: &str, value: &str) -> Value {
    match field {
        "abstract" => {
            // Only treat it as a file reference when it looks like a path.
            match FileKind::from_path(value) {
                Some(kind) => Value::file(kind, value),
                None => Value::str(value),
            }
        }
        "postscript" | "ps" => Value::file(FileKind::PostScript, value),
        "url" | "howpublished" if value.starts_with("http") => Value::url(value),
        _ => {
            if let Ok(i) = value.parse::<i64>() {
                return Value::Int(i);
            }
            Value::str(value)
        }
    }
}

/// Converts BibTeX text into a data graph: one object per entry, in the
/// `Publications` collection, with a `pub-type` attribute from the entry
/// type and one attribute per field (authors/editors split into
/// multi-valued attributes, preserving order).
pub fn to_graph(src: &str) -> Result<Graph, GraphError> {
    let mut g = Graph::standalone();
    load_into(&mut g, src)?;
    Ok(g)
}

/// Like [`to_graph`], loading into an existing graph (so a mediator can
/// warehouse several sources into one universe).
pub fn load_into(g: &mut Graph, src: &str) -> Result<(), GraphError> {
    let entries = parse(src)?;
    let pubs = g.ensure_collection("Publications");
    for entry in entries {
        let node = g.new_node(Some(&entry.key));
        g.add_to_collection(pubs, Value::Node(node));
        g.add_edge_str(node, "pub-type", Value::str(&entry.entry_type))
            .expect("member");
        for (field, value) in &entry.fields {
            if field == "author" || field == "editor" {
                for person in value.split(" and ") {
                    let person = person.trim();
                    if !person.is_empty() {
                        g.add_edge_str(node, field, Value::str(person))
                            .expect("member");
                    }
                }
            } else {
                g.add_edge_str(node, field, typed_value(field, value))
                    .expect("member");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
% a comment line
@string{toplas = {Transactions on Programming Languages and Systems}}

@article{toplas97,
  title      = {Specifying Representations of Machine Instructions},
  author     = {Norman Ramsey and Mary Fernandez},
  year       = 1997,
  month      = may,
  journal    = toplas,
  volume     = {19 (3)},
  abstract   = {abstracts/toplas97.txt},
  postscript = {papers/toplas97.ps.gz}
}

@inproceedings{icde98,
  title     = "Optimizing Regular Path Expressions",
  author    = "Mary Fernandez and Dan Suciu",
  year      = {1998},
  booktitle = {Proc. of ICDE},
  category  = {Semistructured {Data}}
}
"#;

    #[test]
    fn parses_entries_and_fields() {
        let entries = parse(SAMPLE).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].entry_type, "article");
        assert_eq!(entries[0].key, "toplas97");
        assert_eq!(entries[1].entry_type, "inproceedings");
        let title = &entries[1]
            .fields
            .iter()
            .find(|(f, _)| f == "title")
            .unwrap()
            .1;
        assert_eq!(title, "Optimizing Regular Path Expressions");
    }

    #[test]
    fn string_macros_expand() {
        let entries = parse(SAMPLE).unwrap();
        let journal = &entries[0]
            .fields
            .iter()
            .find(|(f, _)| f == "journal")
            .unwrap()
            .1;
        assert_eq!(journal, "Transactions on Programming Languages and Systems");
    }

    #[test]
    fn unknown_month_macros_keep_their_name() {
        let entries = parse(SAMPLE).unwrap();
        let month = &entries[0]
            .fields
            .iter()
            .find(|(f, _)| f == "month")
            .unwrap()
            .1;
        assert_eq!(month, "may");
    }

    #[test]
    fn nested_braces_are_stripped() {
        let entries = parse(SAMPLE).unwrap();
        let cat = &entries[1]
            .fields
            .iter()
            .find(|(f, _)| f == "category")
            .unwrap()
            .1;
        assert_eq!(cat, "Semistructured Data");
    }

    #[test]
    fn hash_concatenation() {
        let entries = parse(r#"@string{a = {Hello }} @misc{k, note = a # "World"}"#).unwrap();
        assert_eq!(entries[0].fields[0].1, "Hello World");
    }

    #[test]
    fn graph_matches_fig2_shape() {
        let g = to_graph(SAMPLE).unwrap();
        assert_eq!(g.node_count(), 2);
        let pubs = g.collection_str("Publications").unwrap();
        assert_eq!(pubs.len(), 2);
        let n1 = g.nodes()[0];
        let interner = g.universe().interner();
        let r = g.reader();
        // Authors split and ordered.
        let author = interner.get("author").unwrap();
        let authors: Vec<_> = r.attr_values(n1, author).cloned().collect();
        assert_eq!(
            authors,
            vec![Value::str("Norman Ramsey"), Value::str("Mary Fernandez")]
        );
        // Years are integers; files typed by extension.
        assert_eq!(
            r.attr(n1, interner.get("year").unwrap()),
            Some(&Value::Int(1997))
        );
        assert_eq!(
            r.attr(n1, interner.get("postscript").unwrap()),
            Some(&Value::file(FileKind::PostScript, "papers/toplas97.ps.gz"))
        );
        assert_eq!(
            r.attr(n1, interner.get("abstract").unwrap()),
            Some(&Value::file(FileKind::Text, "abstracts/toplas97.txt"))
        );
        assert_eq!(
            r.attr(n1, interner.get("pub-type").unwrap()),
            Some(&Value::str("article"))
        );
    }

    #[test]
    fn irregularity_preserved() {
        let g = to_graph(SAMPLE).unwrap();
        let interner = g.universe().interner();
        let r = g.reader();
        let journal = interner.get("journal").unwrap();
        let booktitle = interner.get("booktitle").unwrap();
        assert!(r.attr(g.nodes()[0], journal).is_some());
        assert!(r.attr(g.nodes()[0], booktitle).is_none());
        assert!(r.attr(g.nodes()[1], journal).is_none());
        assert!(r.attr(g.nodes()[1], booktitle).is_some());
    }

    #[test]
    fn comments_and_preamble_skipped() {
        let entries = parse("@comment{ignore me}\n@preamble{\"also\"}\n@misc{k, a = 1}").unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn errors_on_malformed_input() {
        assert!(parse("@article{key, title = {unbalanced").is_err());
        assert!(parse("@article{key, title {no equals}}").is_err());
        assert!(parse("@article{, a = 1}").is_err());
    }

    #[test]
    fn empty_input_yields_no_entries() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("just prose, no entries").unwrap().is_empty());
    }
}
