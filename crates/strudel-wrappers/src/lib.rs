//! # strudel-wrappers
//!
//! Source wrappers and the mediator (§2.2–§2.3 of the paper).
//!
//! "The Web site's raw data resides either in external sources (e.g.,
//! databases, structured files) or in STRUDEL's internal data repository. A
//! set of source-specific wrappers translates the external representation
//! into the graph model."
//!
//! The wrappers mirror the ones the paper's applications used (§5.1):
//!
//! * [`bibtex`] — "a simple wrapper maps BibTeX files into data graphs"
//!   (the personal home-page sites);
//! * [`relational`] — "small relational databases that contain personnel
//!   and organizational data" (CSV-backed tables with foreign keys, standing
//!   in for the AWK-over-RDBMS wrappers);
//! * [`html`] — "we mapped their HTML pages into a data graph containing
//!   about 300 articles" (the CNN demonstration);
//! * [`xml`] — "the XML language … is another possible data exchange
//!   language between the wrappers and the mediator layer of Strudel"
//!   (§2.2): an OEM-style element→node mapping;
//! * [`ddl`][strudel_graph::ddl] — structured files in STRUDEL's own data
//!   definition language (re-exported from `strudel-graph`).
//!
//! The [`mediator`] integrates the source graphs into one *data graph* using
//! the **global-as-view, warehousing** approach the prototype chose: "for
//! each relation R in the mediated schema, a query over the source relations
//! specifies how to obtain R's tuples"; here each GAV mapping is a StruQL
//! query over one source graph, and refreshing the warehouse re-runs every
//! mapping into a fresh mediated graph.

#![warn(missing_docs)]

pub mod bibtex;
pub mod html;
pub mod mediator;
pub mod relational;
pub mod xml;

pub use mediator::{Mediator, Source};
