//! The XML wrapper.
//!
//! §2.2: "The XML language (Extended Markup Language) is another possible
//! data exchange language between the wrappers and the mediator layer of
//! Strudel." (The paper predates XML 1.0 by months — the OEM-style mapping
//! below is the one the semistructured-data community converged on.)
//!
//! Mapping: every element becomes a node; a child element `<c>…</c>` of
//! element `e` becomes an edge `e --c--> node(c)`; an attribute `a="v"`
//! becomes an edge `e --a--> "v"`; an element with only text content
//! collapses to an atomic value (typed: integers parse as `Int`, floats as
//! `Float`, `true`/`false` as `Bool`); mixed/supplementary text hangs off a
//! `text` edge. Top-level elements of each tag name are grouped into a
//! collection named after the tag, so `<publication>` elements land in a
//! `publication` collection ready for `WHERE publication(x)`.
//!
//! Supported XML subset: elements, attributes (quoted with `'` or `"`),
//! character data with the five predefined entities plus numeric character
//! references, comments, CDATA sections, processing instructions and
//! DOCTYPE (skipped), and self-closing tags. No namespaces, no DTD
//! expansion — the wrapper's job is structure extraction, not validation.

use strudel_graph::{Graph, GraphError, Oid, Value};

fn err(line: usize, message: impl Into<String>) -> GraphError {
    GraphError::DdlParse {
        line,
        message: message.into(),
    }
}

/// A parsed XML element (the wrapper's intermediate form).
#[derive(Clone, Debug, PartialEq)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<Element>,
    /// Concatenated, whitespace-trimmed character data.
    pub text: String,
}

struct Scanner<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.as_bytes().get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Skips `<?…?>`, `<!--…-->`, `<!DOCTYPE…>`, returning true if skipped.
    fn skip_misc(&mut self) -> Result<bool, GraphError> {
        if self.starts_with("<?") {
            let line = self.line;
            match self.src[self.pos..].find("?>") {
                Some(off) => self.advance(off + 2),
                None => return Err(err(line, "unterminated processing instruction")),
            }
            return Ok(true);
        }
        if self.starts_with("<!--") {
            let line = self.line;
            match self.src[self.pos..].find("-->") {
                Some(off) => self.advance(off + 3),
                None => return Err(err(line, "unterminated comment")),
            }
            return Ok(true);
        }
        if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
            // Skip to the matching `>` (no internal-subset brackets support
            // beyond one level).
            let line = self.line;
            let mut depth = 0i32;
            loop {
                match self.bump() {
                    None => return Err(err(line, "unterminated DOCTYPE")),
                    Some(b'[') => depth += 1,
                    Some(b']') => depth -= 1,
                    Some(b'>') if depth <= 0 => return Ok(true),
                    _ => {}
                }
            }
        }
        Ok(false)
    }

    fn name(&mut self) -> Result<String, GraphError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':')
        {
            self.bump();
        }
        if self.pos == start {
            return Err(err(self.line, "expected a name"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn attribute_value(&mut self) -> Result<String, GraphError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            other => {
                return Err(err(
                    self.line,
                    format!("expected a quoted attribute value, found {other:?}"),
                ))
            }
        };
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = &self.src[start..self.pos];
                self.bump();
                return Ok(decode_entities(raw));
            }
            self.bump();
        }
        Err(err(self.line, "unterminated attribute value"))
    }

    fn element(&mut self) -> Result<Element, GraphError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.bump();
        let name = self.name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(b'/') => {
                    self.bump();
                    if self.bump() != Some(b'>') {
                        return Err(err(self.line, "expected `>` after `/`"));
                    }
                    return Ok(Element {
                        name,
                        attributes,
                        children: Vec::new(),
                        text: String::new(),
                    });
                }
                Some(_) => {
                    let attr = self.name()?;
                    self.skip_ws();
                    if self.bump() != Some(b'=') {
                        return Err(err(
                            self.line,
                            format!("expected `=` after attribute {attr}"),
                        ));
                    }
                    self.skip_ws();
                    let value = self.attribute_value()?;
                    attributes.push((attr, value));
                }
                None => return Err(err(self.line, format!("unterminated start tag <{name}"))),
            }
        }

        // Content until `</name>`.
        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            if self.peek().is_none() {
                return Err(err(self.line, format!("missing closing tag </{name}>")));
            }
            if self.starts_with("</") {
                self.advance(2);
                let close = self.name()?;
                self.skip_ws();
                if self.bump() != Some(b'>') {
                    return Err(err(self.line, "expected `>` in closing tag"));
                }
                if close != name {
                    return Err(err(
                        self.line,
                        format!("mismatched closing tag: <{name}> closed by </{close}>"),
                    ));
                }
                let text = text.split_whitespace().collect::<Vec<_>>().join(" ");
                return Ok(Element {
                    name,
                    attributes,
                    children,
                    text,
                });
            }
            if self.starts_with("<![CDATA[") {
                self.advance(9);
                let line = self.line;
                match self.src[self.pos..].find("]]>") {
                    Some(off) => {
                        text.push_str(&self.src[self.pos..self.pos + off]);
                        text.push(' ');
                        self.advance(off + 3);
                    }
                    None => return Err(err(line, "unterminated CDATA section")),
                }
                continue;
            }
            if self.skip_misc()? {
                continue;
            }
            if self.peek() == Some(b'<') {
                children.push(self.element()?);
                continue;
            }
            // Character data up to the next `<`.
            let start = self.pos;
            while self.peek().is_some() && self.peek() != Some(b'<') {
                self.bump();
            }
            text.push_str(&decode_entities(&self.src[start..self.pos]));
            text.push(' ');
        }
    }
}

/// Decodes the predefined entities and numeric character references.
fn decode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        match rest.find(';') {
            Some(end) if end <= 10 => {
                let entity = &rest[1..end];
                match entity {
                    "amp" => out.push('&'),
                    "lt" => out.push('<'),
                    "gt" => out.push('>'),
                    "quot" => out.push('"'),
                    "apos" => out.push('\''),
                    _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                        if let Ok(code) = u32::from_str_radix(&entity[2..], 16) {
                            if let Some(c) = char::from_u32(code) {
                                out.push(c);
                            }
                        }
                    }
                    _ if entity.starts_with('#') => {
                        if let Ok(code) = entity[1..].parse::<u32>() {
                            if let Some(c) = char::from_u32(code) {
                                out.push(c);
                            }
                        }
                    }
                    _ => {
                        out.push('&');
                        out.push_str(entity);
                        out.push(';');
                    }
                }
                rest = &rest[end + 1..];
            }
            _ => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

/// Parses an XML document into its root elements (a fragment may have
/// several).
pub fn parse(src: &str) -> Result<Vec<Element>, GraphError> {
    let mut s = Scanner {
        src,
        pos: 0,
        line: 1,
    };
    let mut roots = Vec::new();
    loop {
        s.skip_ws();
        if s.peek().is_none() {
            return Ok(roots);
        }
        if s.skip_misc()? {
            continue;
        }
        if s.peek() == Some(b'<') {
            roots.push(s.element()?);
        } else {
            return Err(err(s.line, "unexpected character data outside any element"));
        }
    }
}

/// Types a text value the way the DDL does: integers, floats, booleans,
/// else string.
fn typed_text(s: &str) -> Value {
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::Float(f);
    }
    match s {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::str(s),
    }
}

fn build(g: &mut Graph, element: &Element) -> Oid {
    let node = g.new_node(Some(&element.name));
    for (attr, value) in &element.attributes {
        g.add_edge_str(node, attr, typed_text(value))
            .expect("member");
    }
    for child in &element.children {
        // Text-only leaf children collapse to atomic values, the OEM idiom:
        // <year>1997</year> becomes an Int edge, not a node.
        if child.children.is_empty() && child.attributes.is_empty() {
            g.add_edge_str(node, &child.name, typed_text(&child.text))
                .expect("member");
        } else {
            let child_node = build(g, child);
            g.add_edge_str(node, &child.name, Value::Node(child_node))
                .expect("member");
        }
    }
    if !element.text.is_empty() && !element.children.is_empty() {
        g.add_edge_str(node, "text", Value::str(&element.text))
            .expect("member");
    }
    node
}

/// Maps XML text into a fresh data graph.
pub fn to_graph(src: &str) -> Result<Graph, GraphError> {
    let mut g = Graph::standalone();
    load_into(&mut g, src)?;
    Ok(g)
}

/// Maps XML text into an existing graph. Children of each root element
/// join a collection named after their tag (so a `<bibliography>` of
/// `<publication>` children yields a `publication` collection); the roots
/// themselves join a collection named after the root tag.
pub fn load_into(g: &mut Graph, src: &str) -> Result<(), GraphError> {
    let roots = parse(src)?;
    for root in &roots {
        let root_node = build(g, root);
        g.add_to_collection_str(&root.name, Value::Node(root_node));
        // Group the root's element children by tag, mirroring how OEM
        // exposes entry points.
        let reader_pairs: Vec<(String, Value)> = {
            let reader = g.reader();
            reader
                .out(root_node)
                .iter()
                .map(|(l, v)| (g.resolve(*l).to_string(), v.clone()))
                .collect()
        };
        for (label, value) in reader_pairs {
            if value.is_node() {
                g.add_to_collection_str(&label, value);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<!DOCTYPE bibliography [ <!ELEMENT publication ANY> ]>
<!-- the example bibliography -->
<bibliography>
  <publication id="pub1" type="article">
    <title>Specifying &amp; Verifying</title>
    <author>Norman Ramsey</author>
    <author>Mary Fernandez</author>
    <year>1997</year>
    <score>4.5</score>
    <open>true</open>
    <venue kind="journal"><name>TOPLAS</name><volume>19</volume></venue>
  </publication>
  <publication id="pub2">
    <title><![CDATA[Optimizing <Regular> Paths]]></title>
    <year>1998</year>
  </publication>
</bibliography>"#;

    #[test]
    fn parses_structure() {
        let roots = parse(SAMPLE).unwrap();
        assert_eq!(roots.len(), 1);
        let bib = &roots[0];
        assert_eq!(bib.name, "bibliography");
        assert_eq!(bib.children.len(), 2);
        let p1 = &bib.children[0];
        assert_eq!(
            p1.attributes,
            vec![
                ("id".to_string(), "pub1".to_string()),
                ("type".to_string(), "article".to_string())
            ]
        );
        assert_eq!(p1.children.len(), 7);
    }

    #[test]
    fn entities_and_cdata() {
        let roots = parse(SAMPLE).unwrap();
        let bib = &roots[0];
        assert_eq!(bib.children[0].children[0].text, "Specifying & Verifying");
        assert_eq!(
            bib.children[1].children[0].text,
            "Optimizing <Regular> Paths"
        );
    }

    #[test]
    fn numeric_character_references() {
        let roots = parse("<a>caf&#233; &#x41;</a>").unwrap();
        assert_eq!(roots[0].text, "café A");
    }

    #[test]
    fn graph_mapping_types_leaves() {
        let g = to_graph(SAMPLE).unwrap();
        let pubs = g.collection_str("publication").unwrap();
        assert_eq!(pubs.len(), 2);
        let p1 = pubs.items()[0].as_node().unwrap();
        let interner = g.universe().interner();
        let r = g.reader();
        assert_eq!(
            r.attr(p1, interner.get("year").unwrap()),
            Some(&Value::Int(1997))
        );
        assert_eq!(
            r.attr(p1, interner.get("score").unwrap()),
            Some(&Value::Float(4.5))
        );
        assert_eq!(
            r.attr(p1, interner.get("open").unwrap()),
            Some(&Value::Bool(true))
        );
        assert_eq!(
            r.attr(p1, interner.get("id").unwrap()),
            Some(&Value::str("pub1"))
        );
        // Multi-valued children preserve order.
        let authors: Vec<_> = r
            .attr_values(p1, interner.get("author").unwrap())
            .cloned()
            .collect();
        assert_eq!(
            authors,
            vec![Value::str("Norman Ramsey"), Value::str("Mary Fernandez")]
        );
        // Structured children become nodes.
        let venue = r
            .attr(p1, interner.get("venue").unwrap())
            .unwrap()
            .as_node()
            .unwrap();
        assert_eq!(
            r.attr(venue, interner.get("name").unwrap()),
            Some(&Value::str("TOPLAS"))
        );
        assert_eq!(
            r.attr(venue, interner.get("kind").unwrap()),
            Some(&Value::str("journal"))
        );
    }

    #[test]
    fn self_closing_and_fragments() {
        let g = to_graph("<r><leaf/><leaf/></r><r><leaf/></r>").unwrap();
        assert_eq!(g.collection_str("r").unwrap().len(), 2);
    }

    #[test]
    fn queries_run_over_wrapped_xml() {
        use strudel_struql::{parse_query, EvalOptions};
        let g = to_graph(SAMPLE).unwrap();
        let q = parse_query(
            r#"WHERE publication(x), x -> "year" -> y, y >= 1998
               COLLECT Recent(x)"#,
        )
        .unwrap();
        let out = q.evaluate(&g, &EvalOptions::default()).unwrap();
        assert_eq!(out.graph.collection_str("Recent").unwrap().len(), 1);
    }

    #[test]
    fn malformed_xml_errors() {
        assert!(parse("<a><b></a>").is_err(), "mismatched tags");
        assert!(parse("<a").is_err(), "unterminated tag");
        assert!(parse("<a attr=oops></a>").is_err(), "unquoted attribute");
        assert!(parse("stray text").is_err());
        assert!(parse("<a><!-- unterminated </a>").is_err());
    }

    #[test]
    fn mixed_content_keeps_text_edge() {
        let g = to_graph("<p>hello <b>bold</b> world</p>").unwrap();
        let p = g.nodes()[0];
        let interner = g.universe().interner();
        let r = g.reader();
        let text = r.attr(p, interner.get("text").unwrap()).unwrap();
        assert_eq!(text, &Value::str("hello world"));
        assert_eq!(
            r.attr(p, interner.get("b").unwrap()),
            Some(&Value::str("bold"))
        );
    }
}
