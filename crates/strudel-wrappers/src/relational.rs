//! The relational wrapper.
//!
//! The AT&T sites' data sources were "small relational databases that
//! contain personnel and organizational data" with "simple AWK programs"
//! mapping them into data-graph objects (§5.1). Here the relational side is
//! a tiny in-memory engine: [`Table`]s parsed from CSV text, with typed
//! columns and foreign keys. [`to_graph`] performs the wrapper mapping: one
//! object per row, one collection per table, attributes per column, and
//! foreign-key columns resolved into node references so the data graph is
//! genuinely a graph.

use strudel_graph::fxhash::FxHashMap;
use strudel_graph::{Graph, GraphError, Oid, Value};

/// An in-memory relational table.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Table name (becomes the collection name).
    pub name: String,
    /// Column names, from the CSV header.
    pub columns: Vec<String>,
    /// Rows of raw string cells (empty string = SQL NULL).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Parses CSV text (first line is the header). Supports quoted cells
    /// with `""` escapes and embedded commas/newlines.
    pub fn from_csv(name: &str, csv: &str) -> Result<Table, GraphError> {
        let mut records = parse_csv(csv)?;
        if records.is_empty() {
            return Err(GraphError::DdlParse {
                line: 1,
                message: format!("CSV for table {name} has no header"),
            });
        }
        let columns = records.remove(0);
        for (i, row) in records.iter().enumerate() {
            if row.len() != columns.len() {
                return Err(GraphError::DdlParse {
                    line: i + 2,
                    message: format!("row has {} cells, header has {}", row.len(), columns.len()),
                });
            }
        }
        Ok(Table {
            name: name.to_string(),
            columns,
            rows: records,
        })
    }

    /// Index of a column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

fn parse_csv(csv: &str) -> Result<Vec<Vec<String>>, GraphError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut chars = csv.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    cell.push(c);
                }
                _ => cell.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !cell.is_empty() {
                        return Err(GraphError::DdlParse {
                            line,
                            message: "quote inside unquoted cell".into(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut cell));
                }
                '\r' => {}
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut cell));
                    records.push(std::mem::take(&mut record));
                }
                _ => cell.push(c),
            }
        }
    }
    if in_quotes {
        return Err(GraphError::DdlParse {
            line,
            message: "unterminated quoted cell".into(),
        });
    }
    if any && (!cell.is_empty() || !record.is_empty()) {
        record.push(cell);
        records.push(record);
    }
    // Drop blank trailing lines.
    records.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    Ok(records)
}

/// A foreign-key declaration: values of `table.column` name rows of
/// `target_table` whose `target_key` column matches; the wrapper replaces
/// the cell with a node reference.
#[derive(Clone, Debug, PartialEq)]
pub struct ForeignKey {
    /// Referencing table.
    pub table: String,
    /// Referencing column.
    pub column: String,
    /// Referenced table.
    pub target_table: String,
    /// Referenced key column.
    pub target_key: String,
}

/// Infers a typed value from a CSV cell: integers, floats, and booleans are
/// recognized; everything else stays a string.
fn typed_cell(cell: &str) -> Value {
    if let Ok(i) = cell.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = cell.parse::<f64>() {
        return Value::Float(f);
    }
    match cell {
        "true" | "TRUE" => Value::Bool(true),
        "false" | "FALSE" => Value::Bool(false),
        _ => Value::str(cell),
    }
}

/// Maps tables into a fresh data graph.
pub fn to_graph(tables: &[Table], fks: &[ForeignKey]) -> Result<Graph, GraphError> {
    let mut g = Graph::standalone();
    load_into(&mut g, tables, fks)?;
    Ok(g)
}

/// Maps tables into an existing graph: one collection per table, one object
/// per row (named `<table><row>`), one attribute per non-empty cell
/// (empty cells are *missing attributes*, the natural semistructured
/// rendering of SQL NULL), and foreign keys resolved to node references.
pub fn load_into(g: &mut Graph, tables: &[Table], fks: &[ForeignKey]) -> Result<(), GraphError> {
    // First pass: create all row nodes so FKs can point anywhere.
    let mut row_nodes: FxHashMap<(String, usize), Oid> = FxHashMap::default();
    // Key index: (table, key column, cell value) → node.
    let mut key_index: FxHashMap<(String, String, String), Oid> = FxHashMap::default();
    for table in tables {
        let coll = g.ensure_collection(&table.name);
        for (i, row) in table.rows.iter().enumerate() {
            let node = g.new_node(Some(&format!("{}{}", table.name, i)));
            g.add_to_collection(coll, Value::Node(node));
            row_nodes.insert((table.name.clone(), i), node);
            for (col, cell) in table.columns.iter().zip(row) {
                if !cell.is_empty() {
                    key_index.insert((table.name.clone(), col.clone(), cell.clone()), node);
                }
            }
        }
    }
    // Second pass: attributes, with FK columns resolved.
    let fk_of = |table: &str, column: &str| {
        fks.iter()
            .find(|fk| fk.table == table && fk.column == column)
    };
    for table in tables {
        for (i, row) in table.rows.iter().enumerate() {
            let node = row_nodes[&(table.name.clone(), i)];
            for (col, cell) in table.columns.iter().zip(row) {
                if cell.is_empty() {
                    continue; // NULL → missing attribute
                }
                let value = match fk_of(&table.name, col) {
                    Some(fk) => {
                        match key_index.get(&(
                            fk.target_table.clone(),
                            fk.target_key.clone(),
                            cell.clone(),
                        )) {
                            Some(&target) => Value::Node(target),
                            None => {
                                return Err(GraphError::DdlParse {
                                    line: i + 2,
                                    message: format!(
                                        "dangling foreign key {}.{} = {cell:?} (no {}.{} match)",
                                        table.name, col, fk.target_table, fk.target_key
                                    ),
                                })
                            }
                        }
                    }
                    None => typed_cell(cell),
                };
                g.add_edge_str(node, col, value).expect("member");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEOPLE: &str = "\
id,name,title,dept,phone
1,Mary Fernandez,Researcher,db,555-0101
2,Dan Suciu,Researcher,db,
3,Ed Director,Director,mgmt,555-0103
";

    const DEPTS: &str = "\
code,name,head
db,Database Research,3
mgmt,Management,3
";

    fn tables() -> Vec<Table> {
        vec![
            Table::from_csv("People", PEOPLE).unwrap(),
            Table::from_csv("Departments", DEPTS).unwrap(),
        ]
    }

    fn fks() -> Vec<ForeignKey> {
        vec![
            ForeignKey {
                table: "People".into(),
                column: "dept".into(),
                target_table: "Departments".into(),
                target_key: "code".into(),
            },
            ForeignKey {
                table: "Departments".into(),
                column: "head".into(),
                target_table: "People".into(),
                target_key: "id".into(),
            },
        ]
    }

    #[test]
    fn csv_parsing_basics() {
        let t = Table::from_csv("People", PEOPLE).unwrap();
        assert_eq!(t.columns, vec!["id", "name", "title", "dept", "phone"]);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][1], "Mary Fernandez");
        assert_eq!(t.column("title"), Some(2));
        assert_eq!(t.column("nope"), None);
    }

    #[test]
    fn quoted_cells_with_commas_and_quotes() {
        let t = Table::from_csv("T", "a,b\n\"x, y\",\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.rows[0], vec!["x, y", "say \"hi\""]);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(Table::from_csv("T", "a,b\n1\n").is_err());
        assert!(Table::from_csv("T", "").is_err());
    }

    #[test]
    fn rows_become_objects_in_collections() {
        let g = to_graph(&tables(), &fks()).unwrap();
        assert_eq!(g.collection_str("People").unwrap().len(), 3);
        assert_eq!(g.collection_str("Departments").unwrap().len(), 2);
        let interner = g.universe().interner();
        let r = g.reader();
        let mary = g.nodes()[0];
        assert_eq!(
            r.attr(mary, interner.get("name").unwrap()),
            Some(&Value::str("Mary Fernandez"))
        );
        assert_eq!(
            r.attr(mary, interner.get("id").unwrap()),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn nulls_become_missing_attributes() {
        let g = to_graph(&tables(), &fks()).unwrap();
        let interner = g.universe().interner();
        let r = g.reader();
        let dan = g.nodes()[1];
        assert!(r.attr(dan, interner.get("phone").unwrap()).is_none());
        assert!(r
            .attr(g.nodes()[0], interner.get("phone").unwrap())
            .is_some());
    }

    #[test]
    fn foreign_keys_become_node_references() {
        let g = to_graph(&tables(), &fks()).unwrap();
        let interner = g.universe().interner();
        let r = g.reader();
        let mary = g.nodes()[0];
        let dept = r
            .attr(mary, interner.get("dept").unwrap())
            .unwrap()
            .as_node()
            .expect("node ref");
        assert_eq!(
            r.attr(dept, interner.get("name").unwrap()),
            Some(&Value::str("Database Research"))
        );
        // Cyclic FK: Departments.head → People.
        let head = r
            .attr(dept, interner.get("head").unwrap())
            .unwrap()
            .as_node()
            .expect("node ref");
        assert_eq!(
            r.attr(head, interner.get("title").unwrap()),
            Some(&Value::str("Director"))
        );
    }

    #[test]
    fn dangling_foreign_keys_error() {
        let bad = vec![Table::from_csv("People", "id,dept\n1,nowhere\n").unwrap()];
        let fk = vec![ForeignKey {
            table: "People".into(),
            column: "dept".into(),
            target_table: "Departments".into(),
            target_key: "code".into(),
        }];
        assert!(to_graph(&bad, &fk).is_err());
    }

    #[test]
    fn typed_cells() {
        assert_eq!(typed_cell("42"), Value::Int(42));
        assert_eq!(typed_cell("4.5"), Value::Float(4.5));
        assert_eq!(typed_cell("true"), Value::Bool(true));
        assert_eq!(typed_cell("hello"), Value::str("hello"));
    }
}
