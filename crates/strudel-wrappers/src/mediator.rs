//! The mediator: GAV data integration with warehousing (§2.3).
//!
//! "STRUDEL's mediator supports data integration by providing a uniform view
//! of all underlying data, irrespective of where it is stored." The
//! prototype chose **warehousing** ("data from multiple sources is loaded
//! into a warehouse, and all queries are applied to the warehoused data";
//! this "simplified our implementation and sufficed for our applications,
//! which have small databases") and **global-as-view** mappings ("for each
//! relation R in the mediated schema, a query over the source relations
//! specifies how to obtain R's tuples"; GAV "was immediately extensible to
//! StruQL" and suited the small, stable set of sources).
//!
//! Here each source is a [`Source`] producing a graph in the mediator's
//! universe; each GAV mapping is a StruQL query over one source graph whose
//! construction clauses populate the mediated data graph. All mappings
//! share one Skolem table, so objects derived from different sources unify
//! when their Skolem terms agree — that is how overlapping sources merge.

use std::sync::Arc;
use strudel_graph::graph::Universe;
use strudel_graph::{Graph, Oid};
use strudel_struql::{parse_query, EvalOptions, Query, Result, SkolemTable, StruqlError};

/// A data source: anything that can materialize its contents as a graph in
/// the mediator's universe.
pub trait Source {
    /// Loads the source into a fresh graph belonging to `universe`.
    fn load(&self, universe: &Arc<Universe>) -> Result<Graph>;
}

/// A source backed by a closure (wrappers adapt through this).
pub struct FnSource<F>(pub F);

impl<F> Source for FnSource<F>
where
    F: Fn(&Arc<Universe>) -> Result<Graph>,
{
    fn load(&self, universe: &Arc<Universe>) -> Result<Graph> {
        (self.0)(universe)
    }
}

struct Registered {
    name: String,
    source: Box<dyn Source>,
    /// GAV mappings over this source. `None` entries mean "identity":
    /// adopt the source graph's nodes and collections verbatim.
    mappings: Vec<Query>,
    identity: bool,
}

/// The warehousing mediator.
pub struct Mediator {
    universe: Arc<Universe>,
    sources: Vec<Registered>,
    opts: EvalOptions,
    warehouse: Option<Graph>,
    refresh_count: u64,
}

impl Mediator {
    /// Creates an empty mediator with its own universe.
    pub fn new() -> Self {
        Mediator {
            universe: Universe::new(),
            sources: Vec::new(),
            opts: EvalOptions::default(),
            warehouse: None,
            refresh_count: 0,
        }
    }

    /// Replaces the evaluation options used for mapping queries.
    pub fn with_options(mut self, opts: EvalOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The mediator's universe (site graphs should be built in it too).
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Registers a source with *identity* integration: its objects and
    /// collections enter the data graph unchanged.
    pub fn add_source(&mut self, name: &str, source: Box<dyn Source>) {
        self.sources.push(Registered {
            name: name.to_string(),
            source,
            mappings: Vec::new(),
            identity: true,
        });
        self.warehouse = None;
    }

    /// Adds a GAV mapping: a StruQL query evaluated over the named source's
    /// graph, whose `CREATE`/`LINK`/`COLLECT` clauses populate the mediated
    /// data graph. Registering a mapping turns identity integration off for
    /// that source.
    pub fn add_mapping(&mut self, source_name: &str, query_src: &str) -> Result<()> {
        let query = parse_query(query_src)?;
        let reg = self
            .sources
            .iter_mut()
            .find(|s| s.name == source_name)
            .ok_or_else(|| StruqlError::Eval(format!("no source named {source_name}")))?;
        reg.mappings.push(query);
        reg.identity = false;
        self.warehouse = None;
        Ok(())
    }

    /// Whether the warehouse must be rebuilt before queries can run.
    pub fn is_stale(&self) -> bool {
        self.warehouse.is_none()
    }

    /// Marks the warehouse stale (e.g. after a source changed) — "this
    /// requires that the warehouse be updated when data changes".
    pub fn mark_stale(&mut self) {
        self.warehouse = None;
    }

    /// Number of refreshes performed.
    pub fn refresh_count(&self) -> u64 {
        self.refresh_count
    }

    /// (Re)builds the warehouse: loads every source and runs its mappings
    /// (or identity integration) into a fresh mediated data graph.
    pub fn refresh(&mut self) -> Result<&Graph> {
        let mut data = Graph::new(Arc::clone(&self.universe));
        let mut table = SkolemTable::new();
        for reg in &self.sources {
            let source_graph = reg.source.load(&self.universe)?;
            if reg.identity {
                adopt_all(&mut data, &source_graph)?;
            } else {
                for mapping in &reg.mappings {
                    mapping.evaluate_into(&source_graph, &mut data, &mut table, &self.opts)?;
                }
            }
        }
        self.warehouse = Some(data);
        self.refresh_count += 1;
        Ok(self.warehouse.as_ref().expect("just built"))
    }

    /// The warehoused data graph; `None` until [`Mediator::refresh`] runs.
    pub fn data_graph(&self) -> Option<&Graph> {
        self.warehouse.as_ref()
    }
}

impl Default for Mediator {
    fn default() -> Self {
        Self::new()
    }
}

/// Identity integration: every node and collection of `src` joins `data`.
fn adopt_all(data: &mut Graph, src: &Graph) -> Result<()> {
    for &n in src.nodes() {
        data.adopt_node(n).map_err(StruqlError::Graph)?;
    }
    for &coll in src.collection_names() {
        let name = src.resolve(coll);
        let sym = data.ensure_collection(&name);
        for item in src.collection(coll).expect("listed").items() {
            data.add_to_collection(sym, item.clone());
        }
    }
    Ok(())
}

/// Returns an [`Oid`]-named helper: the first node of `g` whose provenance
/// name equals `name`. Exposed for tests and examples.
pub fn node_named(g: &Graph, name: &str) -> Option<Oid> {
    g.nodes()
        .iter()
        .copied()
        .find(|&n| g.node_name(n).as_deref() == Some(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bibtex, relational};

    fn bib_source() -> Box<dyn Source> {
        Box::new(FnSource(|u: &Arc<Universe>| {
            let mut g = Graph::new(Arc::clone(u));
            bibtex::load_into(
                &mut g,
                r#"@article{a1, title = {Paper One}, author = {Mary Fernandez}, year = 1997}"#,
            )
            .map_err(StruqlError::Graph)?;
            Ok(g)
        }))
    }

    fn people_source() -> Box<dyn Source> {
        Box::new(FnSource(|u: &Arc<Universe>| {
            let mut g = Graph::new(Arc::clone(u));
            let t =
                relational::Table::from_csv("People", "id,name\n1,Mary Fernandez\n2,Dan Suciu\n")
                    .map_err(StruqlError::Graph)?;
            relational::load_into(&mut g, &[t], &[]).map_err(StruqlError::Graph)?;
            Ok(g)
        }))
    }

    #[test]
    fn identity_integration_unions_sources() {
        let mut m = Mediator::new();
        m.add_source("bib", bib_source());
        m.add_source("people", people_source());
        let data = m.refresh().unwrap();
        assert_eq!(data.collection_str("Publications").unwrap().len(), 1);
        assert_eq!(data.collection_str("People").unwrap().len(), 2);
    }

    #[test]
    fn gav_mappings_restructure_sources() {
        let mut m = Mediator::new();
        m.add_source("bib", bib_source());
        m.add_source("people", people_source());
        // Mediated schema: Person(name) objects, fed by BOTH sources, unified
        // by Skolem identity on the name.
        m.add_mapping(
            "bib",
            r#"WHERE Publications(p), p -> "author" -> a
               CREATE Person(a)
               LINK Person(a) -> "name" -> a, Person(a) -> "wrote" -> p
               COLLECT Persons(Person(a))"#,
        )
        .unwrap();
        m.add_mapping(
            "people",
            r#"WHERE People(x), x -> "name" -> a
               CREATE Person(a)
               LINK Person(a) -> "name" -> a, Person(a) -> "staffRecord" -> x
               COLLECT Persons(Person(a))"#,
        )
        .unwrap();
        let data = m.refresh().unwrap();
        let persons = data.collection_str("Persons").unwrap();
        // Mary appears in both sources → one unified object; Dan only in
        // the staff table → 2 persons total.
        assert_eq!(persons.len(), 2, "overlapping sources must unify");
        let mary = node_named(data, "Person(Mary Fernandez)").expect("unified node");
        let interner = data.universe().interner();
        let r = data.reader();
        assert!(r.attr(mary, interner.get("wrote").unwrap()).is_some());
        assert!(r.attr(mary, interner.get("staffRecord").unwrap()).is_some());
    }

    #[test]
    fn staleness_and_refresh_cycle() {
        let mut m = Mediator::new();
        m.add_source("bib", bib_source());
        assert!(m.is_stale());
        assert!(m.data_graph().is_none());
        m.refresh().unwrap();
        assert!(!m.is_stale());
        assert_eq!(m.refresh_count(), 1);
        m.mark_stale();
        assert!(m.is_stale());
        m.refresh().unwrap();
        assert_eq!(m.refresh_count(), 2);
    }

    #[test]
    fn adding_sources_or_mappings_invalidates() {
        let mut m = Mediator::new();
        m.add_source("bib", bib_source());
        m.refresh().unwrap();
        m.add_source("people", people_source());
        assert!(m.is_stale());
        m.refresh().unwrap();
        m.add_mapping("bib", "WHERE Publications(p) CREATE P(p) COLLECT Ps(P(p))")
            .unwrap();
        assert!(m.is_stale());
    }

    #[test]
    fn mapping_unknown_source_errors() {
        let mut m = Mediator::new();
        assert!(m.add_mapping("nope", "CREATE X()").is_err());
    }

    #[test]
    fn mixed_identity_and_mapped_sources() {
        let mut m = Mediator::new();
        m.add_source("bib", bib_source()); // identity
        m.add_source("people", people_source());
        m.add_mapping("people", r#"WHERE People(x), x -> "name" -> a CREATE Staff(x) LINK Staff(x) -> "name" -> a COLLECT AllStaff(Staff(x))"#)
            .unwrap();
        let data = m.refresh().unwrap();
        assert!(data.collection_str("Publications").is_some());
        assert_eq!(data.collection_str("AllStaff").unwrap().len(), 2);
        assert!(
            data.collection_str("People").is_none(),
            "mapped source collections do not leak"
        );
    }
}
