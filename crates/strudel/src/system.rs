//! The end-to-end pipeline of Fig. 1.

use crate::error::{Result, StrudelError};
use std::path::Path;
use std::sync::Arc;
use strudel_graph::graph::Universe;
use strudel_graph::{ddl, Graph, Oid, Value};
use strudel_obs::{Phases, Timer};
use strudel_site::{
    verify_graph, verify_schema, CacheConfig, Constraint, DynamicSite, SiteSchema, Verdict,
};
use strudel_struql::{parse_query, EvalOptions, EvalStats, Query, SkolemTable};
use strudel_template::gen::FileResolver;
use strudel_template::{GeneratedSite, Generator, TemplateSet};
use strudel_wrappers::mediator::FnSource;
use strudel_wrappers::{bibtex, html, relational, xml, Mediator, Source};

/// A file resolver shared across generations (see
/// [`Strudel::set_file_resolver`]).
type SharedResolver = Arc<dyn Fn(&str) -> Option<String> + Send + Sync>;

/// The result of evaluating the site-definition queries: the site graph,
/// the Skolem table, and evaluation statistics.
pub struct SiteBuild {
    /// The site graph (in the mediator's universe). Every Skolem function's
    /// extension is also registered as a collection named after the
    /// function, so templates attach per page *type*.
    pub graph: Graph,
    /// Skolem applications → nodes.
    pub table: SkolemTable,
    /// Accumulated evaluation statistics (one entry per site query).
    pub stats: Vec<EvalStats>,
}

impl SiteBuild {
    /// The pages of one Skolem function, in creation order.
    pub fn pages_of(&self, skolem: &str) -> Vec<Oid> {
        self.graph
            .collection_str(skolem)
            .map(|c| c.items().iter().filter_map(Value::as_node).collect())
            .unwrap_or_default()
    }
}

/// Storage tuning applied to a paged-store data source each time the
/// warehouse refresh (re)opens it. `None` fields keep the store defaults.
#[derive(Clone, Copy, Default)]
pub struct StoreTuning {
    /// Page-cache capacity in pages (`--page-cache`).
    pub page_cache: Option<usize>,
    /// Group-commit batching window (`--group-commit-window`, milliseconds
    /// at the CLI).
    pub group_commit_window: Option<std::time::Duration>,
}

/// The STRUDEL system: sources + mediator + site queries + templates.
///
/// Typical use: register sources (and optionally GAV mappings), add one or
/// more site-definition queries, attach templates per Skolem function, then
/// [`Strudel::generate_site`].
pub struct Strudel {
    mediator: Mediator,
    site_queries: Vec<Query>,
    templates: TemplateSet,
    opts: EvalOptions,
    file_resolver: Option<SharedResolver>,
}

impl Strudel {
    /// An empty system.
    pub fn new() -> Self {
        Strudel {
            mediator: Mediator::new(),
            site_queries: Vec::new(),
            templates: TemplateSet::new(),
            opts: EvalOptions::default(),
            file_resolver: None,
        }
    }

    /// The shared object universe.
    pub fn universe(&self) -> &Arc<Universe> {
        self.mediator.universe()
    }

    /// Mutable access to the evaluation options (optimizer choice,
    /// predicate registry, …).
    pub fn options_mut(&mut self) -> &mut EvalOptions {
        &mut self.opts
    }

    /// Sets the worker count used by query evaluation, block construction
    /// and page rendering (clamped to at least 1; 1 = fully sequential).
    /// Defaults to the `STRUDEL_JOBS` environment variable, else 1.
    pub fn set_jobs(&mut self, jobs: usize) -> &mut Self {
        self.opts.jobs = jobs.max(1);
        self
    }

    /// The configured worker count (see [`Strudel::set_jobs`]).
    pub fn jobs(&self) -> usize {
        self.opts.jobs
    }

    /// The mediator, for advanced source management.
    pub fn mediator_mut(&mut self) -> &mut Mediator {
        &mut self.mediator
    }

    /// The template set.
    pub fn templates_mut(&mut self) -> &mut TemplateSet {
        &mut self.templates
    }

    /// Installs a resolver used to embed text/HTML file contents in pages
    /// (shared across every subsequent generation).
    pub fn set_file_resolver(&mut self, resolver: FileResolver) {
        self.file_resolver = Some(Arc::from(resolver));
    }

    // ---- sources ----

    /// Registers a generic source.
    pub fn add_source(&mut self, name: &str, source: Box<dyn Source>) {
        self.mediator.add_source(name, source);
    }

    /// Registers a source holding STRUDEL DDL text (a "structured file").
    pub fn add_ddl_source(&mut self, name: &str, ddl_text: &str) {
        let text = ddl_text.to_string();
        self.mediator.add_source(
            name,
            Box::new(FnSource(move |u: &Arc<Universe>| {
                let mut g = Graph::new(Arc::clone(u));
                ddl::parse_into(&mut g, &text).map_err(strudel_struql::StruqlError::Graph)?;
                Ok(g)
            })),
        );
    }

    /// Registers a BibTeX source.
    pub fn add_bibtex_source(&mut self, name: &str, bibtex_text: &str) {
        let text = bibtex_text.to_string();
        self.mediator.add_source(
            name,
            Box::new(FnSource(move |u: &Arc<Universe>| {
                let mut g = Graph::new(Arc::clone(u));
                bibtex::load_into(&mut g, &text).map_err(strudel_struql::StruqlError::Graph)?;
                Ok(g)
            })),
        );
    }

    /// Registers a relational source from CSV tables and foreign keys.
    pub fn add_csv_source(
        &mut self,
        name: &str,
        tables: Vec<relational::Table>,
        fks: Vec<relational::ForeignKey>,
    ) {
        self.mediator.add_source(
            name,
            Box::new(FnSource(move |u: &Arc<Universe>| {
                let mut g = Graph::new(Arc::clone(u));
                relational::load_into(&mut g, &tables, &fks)
                    .map_err(strudel_struql::StruqlError::Graph)?;
                Ok(g)
            })),
        );
    }

    /// Registers an XML source (§2.2's alternative exchange language).
    pub fn add_xml_source(&mut self, name: &str, xml_text: &str) {
        let text = xml_text.to_string();
        self.mediator.add_source(
            name,
            Box::new(FnSource(move |u: &Arc<Universe>| {
                let mut g = Graph::new(Arc::clone(u));
                xml::load_into(&mut g, &text).map_err(strudel_struql::StruqlError::Graph)?;
                Ok(g)
            })),
        );
    }

    /// Registers a paged graph store (see `strudel_graph::store::PagedStore`)
    /// as a data source. Each warehouse refresh reopens the store — running
    /// crash recovery if needed — and materializes its current revision into
    /// the mediated universe, so a rebuilt or restarted server picks up
    /// whatever the last committed revision was without re-wrapping sources.
    pub fn add_store_source(&mut self, name: &str, path: &std::path::Path) {
        self.add_store_source_with(name, path, StoreTuning::default());
    }

    /// [`add_store_source`](Self::add_store_source) with explicit storage
    /// tuning — the CLI's `--page-cache` / `--group-commit-window` flags
    /// land here and are applied to every (re)open of the store.
    pub fn add_store_source_with(&mut self, name: &str, path: &std::path::Path, tune: StoreTuning) {
        let path = path.to_path_buf();
        self.mediator.add_source(
            name,
            Box::new(FnSource(move |u: &Arc<Universe>| {
                let mut store = strudel_graph::store::PagedStore::open(&path)
                    .map_err(strudel_struql::StruqlError::Graph)?;
                if let Some(pages) = tune.page_cache {
                    store.set_page_cache_capacity(pages);
                }
                if let Some(window) = tune.group_commit_window {
                    store.set_group_commit_window(window);
                }
                let bytes = store
                    .serialize()
                    .map_err(strudel_struql::StruqlError::Graph)?;
                let mut g = Graph::new(Arc::clone(u));
                strudel_graph::store::load_slice_into(&mut g, &bytes)
                    .map_err(strudel_struql::StruqlError::Graph)?;
                Ok(g)
            })),
        );
    }

    /// Registers a source of wrapped HTML pages (`(url, html)` pairs).
    pub fn add_html_source(&mut self, name: &str, pages: Vec<(String, String)>) {
        self.mediator.add_source(
            name,
            Box::new(FnSource(move |u: &Arc<Universe>| {
                let mut g = Graph::new(Arc::clone(u));
                html::load_into(&mut g, &pages).map_err(strudel_struql::StruqlError::Graph)?;
                Ok(g)
            })),
        );
    }

    /// Adds a GAV mediation mapping over a named source.
    pub fn add_mapping(&mut self, source: &str, query: &str) -> Result<()> {
        self.mediator
            .add_mapping(source, query)
            .map_err(StrudelError::Struql)
    }

    /// The integrated data graph, refreshing the warehouse if stale.
    pub fn data_graph(&mut self) -> Result<&Graph> {
        if self.mediator.is_stale() {
            self.mediator.refresh()?;
        }
        Ok(self.mediator.data_graph().expect("refreshed"))
    }

    // ---- site definition ----

    /// Adds a site-definition query. Multiple queries compose: they share
    /// one Skolem table, so "different queries create different parts of the
    /// same site" (§5.2).
    pub fn add_site_query(&mut self, src: &str) -> Result<Query> {
        let q = parse_query(src)?;
        self.site_queries.push(q.clone());
        Ok(q)
    }

    /// Removes all site queries (to define a different version of the site
    /// over the same data).
    pub fn clear_site_queries(&mut self) {
        self.site_queries.clear();
    }

    /// The merged query over all site-definition queries (what the site
    /// schema describes).
    pub fn merged_query(&self) -> Query {
        Query::merge(self.site_queries.iter())
    }

    /// The site schema of the composed site-definition queries.
    pub fn site_schema(&self) -> SiteSchema {
        SiteSchema::from_query(&self.merged_query())
    }

    /// Evaluates every site query over the data graph, producing the site
    /// graph. Each Skolem function's extension is additionally registered
    /// as a site-graph collection named after the function.
    pub fn build_site(&mut self) -> Result<SiteBuild> {
        if self.site_queries.is_empty() {
            return Err(StrudelError::Pipeline(
                "no site-definition query registered".into(),
            ));
        }
        if self.mediator.is_stale() {
            self.mediator.refresh()?;
        }
        let opts = self.opts.clone();
        let queries = self.site_queries.clone();
        let data = self.mediator.data_graph().expect("refreshed");
        let mut site = Graph::new(Arc::clone(self.mediator.universe()));
        let mut table = SkolemTable::new();
        let mut stats = Vec::with_capacity(queries.len());
        for q in &queries {
            stats.push(q.evaluate_into(data, &mut site, &mut table, &opts)?);
        }
        // Register per-function collections for template selection.
        let entries: Vec<(String, Oid)> = table
            .iter()
            .map(|(name, _, oid)| (name.to_string(), oid))
            .collect();
        for (name, oid) in entries {
            site.add_to_collection_str(&name, Value::Node(oid));
        }
        Ok(SiteBuild {
            graph: site,
            table,
            stats,
        })
    }

    /// Builds the site graph and renders it to HTML, starting from the
    /// pages of the named root Skolem functions. Uses the configured worker
    /// count ([`Strudel::set_jobs`]): at 1 the serial generator runs; above
    /// 1 independent pages render concurrently.
    pub fn generate_site(&mut self, root_skolems: &[&str]) -> Result<GeneratedSite> {
        let jobs = self.opts.jobs;
        let build = self.build_site()?;
        self.render_site(&build, root_skolems, (jobs > 1).then_some(jobs), false)
    }

    /// Like [`Strudel::generate_site`], but records a wall-clock breakdown
    /// of the pipeline phases (`refresh` → `evaluate` → `render`) and
    /// per-page render times ([`GeneratedSite::render_us`]) — the data
    /// behind `strudel-cli build --timings`.
    pub fn generate_site_timed(
        &mut self,
        root_skolems: &[&str],
    ) -> Result<(GeneratedSite, Phases)> {
        let mut phases = Phases::new();
        if self.mediator.is_stale() {
            let t = Timer::start();
            self.mediator.refresh()?;
            phases.add("refresh", t.elapsed_us());
        }
        let jobs = self.opts.jobs;
        let t = Timer::start();
        let build = self.build_site()?;
        phases.add("evaluate", t.elapsed_us());
        let t = Timer::start();
        let site = self.render_site(&build, root_skolems, (jobs > 1).then_some(jobs), true)?;
        phases.add("render", t.elapsed_us());
        Ok((site, phases))
    }

    /// Like [`Strudel::generate_site`], rendering pages on `threads` worker
    /// threads regardless of the configured job count (page rendering is
    /// read-only; see [`Generator::generate_parallel`]).
    pub fn generate_site_parallel(
        &mut self,
        root_skolems: &[&str],
        threads: usize,
    ) -> Result<GeneratedSite> {
        let build = self.build_site()?;
        self.render_site(&build, root_skolems, Some(threads), false)
    }

    /// Renders a built site from the named roots; `threads` is `None` for
    /// the serial generator, `Some(n)` for the wave-parallel one. With
    /// `timings`, per-page render durations are collected.
    fn render_site(
        &self,
        build: &SiteBuild,
        root_skolems: &[&str],
        threads: Option<usize>,
        timings: bool,
    ) -> Result<GeneratedSite> {
        let mut roots: Vec<Oid> = Vec::new();
        for name in root_skolems {
            roots.extend(build.pages_of(name));
        }
        if roots.is_empty() {
            return Err(StrudelError::Pipeline(format!(
                "no root pages: none of {root_skolems:?} has instances"
            )));
        }
        let mut generator = Generator::new(&build.graph, &self.templates).with_timings(timings);
        if let Some(resolver) = &self.file_resolver {
            let resolver = Arc::clone(resolver);
            generator = generator.with_file_resolver(Box::new(move |p| resolver(p)));
        }
        let site = match threads {
            Some(n) => generator.generate_parallel(&roots, n)?,
            None => generator.generate(&roots)?,
        };
        Ok(site)
    }

    /// Builds the site and writes the browsable HTML into `dir`.
    pub fn publish(&mut self, root_skolems: &[&str], dir: &Path) -> Result<GeneratedSite> {
        let site = self.generate_site(root_skolems)?;
        site.write_to_dir(dir)?;
        Ok(site)
    }

    /// Like [`Strudel::publish`], but returns the phase breakdown
    /// (`refresh` → `evaluate` → `render` → `write`) alongside the site.
    pub fn publish_timed(
        &mut self,
        root_skolems: &[&str],
        dir: &Path,
    ) -> Result<(GeneratedSite, Phases)> {
        let (site, mut phases) = self.generate_site_timed(root_skolems)?;
        let t = Timer::start();
        site.write_to_dir(dir)?;
        phases.add("write", t.elapsed_us());
        Ok((site, phases))
    }

    // ---- verification & dynamic evaluation ----

    /// Checks a structural constraint statically (against the site schema)
    /// and, if the static answer is [`Verdict::Unknown`], exactly (against a
    /// freshly built site graph). Returns `(static verdict, exact verdict)`;
    /// the exact verdict is `None` when the static check already decided.
    pub fn verify(&mut self, constraint: &Constraint) -> Result<(Verdict, Option<Verdict>)> {
        let schema_verdict = verify_schema(&self.site_schema(), constraint);
        if matches!(schema_verdict, Verdict::Unknown(_)) {
            let build = self.build_site()?;
            let exact = verify_graph(&build.graph, &build.table, constraint);
            Ok((schema_verdict, Some(exact)))
        } else {
            Ok((schema_verdict, None))
        }
    }

    /// A click-time evaluator over the current data graph and site queries
    /// (nothing is materialized; pages expand on demand). Uses the default
    /// page-cache bounds; see [`Strudel::dynamic_site_with`] to size the
    /// cache explicitly.
    pub fn dynamic_site(&mut self) -> Result<DynamicSite<'_>> {
        self.dynamic_site_with(CacheConfig::default())
    }

    /// Like [`Strudel::dynamic_site`], but with an explicit bound on the
    /// click-time page cache (entry count and approximate bytes).
    pub fn dynamic_site_with(&mut self, cache: CacheConfig) -> Result<DynamicSite<'_>> {
        let merged = self.merged_query();
        let opts = self.opts.clone();
        if self.mediator.is_stale() {
            self.mediator.refresh()?;
        }
        let data = self.mediator.data_graph().expect("refreshed");
        DynamicSite::with_cache(data, &merged, opts, cache).map_err(StrudelError::Struql)
    }
}

impl Default for Strudel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pubs_system() -> Strudel {
        let mut s = Strudel::new();
        s.add_ddl_source(
            "pubs",
            r#"
object p1 in Publications { title "UnQL" year 1996 }
object p2 in Publications { title "Lorel" year 1996 }
object p3 in Publications { title "StruQL" year 1997 }
"#,
        );
        s.add_site_query(
            r#"CREATE RootPage()
               {
                 WHERE Publications(x), x -> "title" -> t
                 CREATE Page(x)
                 LINK Page(x) -> "Title" -> t, RootPage() -> "Paper" -> Page(x)
               }"#,
        )
        .unwrap();
        s
    }

    #[test]
    fn pipeline_builds_site_graph() {
        let mut s = pubs_system();
        let build = s.build_site().unwrap();
        assert_eq!(build.pages_of("RootPage").len(), 1);
        assert_eq!(build.pages_of("Page").len(), 3);
        assert_eq!(build.graph.collection_str("Page").unwrap().len(), 3);
    }

    #[test]
    fn pipeline_generates_html() {
        let mut s = pubs_system();
        s.templates_mut()
            .set_collection_template("RootPage", r#"<h1>Pubs</h1><SFMT @Paper ALL DELIM=" | ">"#)
            .unwrap();
        s.templates_mut()
            .set_collection_template("Page", "<SFMT @Title>")
            .unwrap();
        let site = s.generate_site(&["RootPage"]).unwrap();
        assert_eq!(site.pages.len(), 4);
        let root_file = site
            .pages
            .keys()
            .find(|k| k.starts_with("rootpage"))
            .unwrap();
        assert!(site.pages[root_file].contains("<h1>Pubs</h1>"));
    }

    #[test]
    fn multiple_versions_from_same_data() {
        // §1: "a site builder produces multiple sites by applying different
        // site-definition queries to the same underlying data".
        let mut s = pubs_system();
        let v1 = s.build_site().unwrap();
        s.clear_site_queries();
        s.add_site_query(
            r#"{ WHERE Publications(x), x -> "year" -> 1997, x -> "title" -> t
                 CREATE Recent(x) LINK Recent(x) -> "Title" -> t COLLECT R(Recent(x)) }"#,
        )
        .unwrap();
        let v2 = s.build_site().unwrap();
        assert_eq!(v1.pages_of("Page").len(), 3);
        assert_eq!(v2.pages_of("Recent").len(), 1);
    }

    #[test]
    fn composed_queries_share_skolem_table() {
        let mut s = Strudel::new();
        s.add_ddl_source("pubs", r#"object p1 in Publications { title "A" }"#);
        s.add_site_query(r#"{ WHERE Publications(x) CREATE Page(x) }"#)
            .unwrap();
        s.add_site_query(
            r#"{ WHERE Publications(x), x -> "title" -> t CREATE Page(x) LINK Page(x) -> "T" -> t }"#,
        )
        .unwrap();
        let build = s.build_site().unwrap();
        assert_eq!(
            build.pages_of("Page").len(),
            1,
            "Skolem unification across queries"
        );
    }

    #[test]
    fn verify_combines_schema_and_graph() {
        let mut s = pubs_system();
        let (schema_v, exact) = s
            .verify(&Constraint::AllReachableFrom {
                root: "RootPage".into(),
            })
            .unwrap();
        assert_eq!(schema_v, Verdict::Satisfied);
        assert!(exact.is_none());
    }

    #[test]
    fn dynamic_site_expands_root() {
        let mut s = pubs_system();
        let dyn_site = s.dynamic_site().unwrap();
        let roots = dyn_site.roots();
        assert_eq!(roots.len(), 1);
        let links = dyn_site.expand(&roots[0]).unwrap();
        assert_eq!(links.len(), 3);
    }

    #[test]
    fn timed_build_reports_phases_and_page_times() {
        let mut s = pubs_system();
        s.templates_mut()
            .set_collection_template("RootPage", r#"<SFMT @Paper ALL DELIM=" ">"#)
            .unwrap();
        s.templates_mut()
            .set_collection_template("Page", "<SFMT @Title>")
            .unwrap();
        let (site, phases) = s.generate_site_timed(&["RootPage"]).unwrap();
        assert_eq!(site.pages.len(), 4);
        let names: Vec<&str> = phases.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["refresh", "evaluate", "render"]);
        assert_eq!(site.render_us.len(), site.pages.len());
        assert!(phases.to_json().starts_with(r#"{"refresh":"#));
        // A second timed build reuses the fresh warehouse: no refresh phase.
        let (_, phases) = s.generate_site_timed(&["RootPage"]).unwrap();
        let names: Vec<&str> = phases.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["evaluate", "render"]);
        // The untimed path stays free of per-page timing.
        assert!(s.generate_site(&["RootPage"]).unwrap().render_us.is_empty());
    }

    #[test]
    fn missing_query_is_a_pipeline_error() {
        let mut s = Strudel::new();
        s.add_ddl_source("x", "object a { k 1 }");
        assert!(matches!(s.build_site(), Err(StrudelError::Pipeline(_))));
    }

    #[test]
    fn missing_roots_is_a_pipeline_error() {
        let mut s = pubs_system();
        assert!(matches!(
            s.generate_site(&["Nope"]),
            Err(StrudelError::Pipeline(_))
        ));
    }
}
