//! # strudel
//!
//! A Rust reproduction of **STRUDEL — A Web-Site Management System**
//! (Fernandez, Florescu, Kang, Levy, Suciu; demonstrated at SIGMOD 1997).
//!
//! STRUDEL applies database concepts to building web sites by *separating*
//! three tasks: the management of the site's **data**, the declarative
//! definition of the site's **structure**, and the **visual presentation**
//! of its pages. The pipeline (Fig. 1 of the paper):
//!
//! ```text
//! external sources → wrappers → mediator → data graph
//!       data graph → StruQL site-definition query → site graph
//!       site graph → HTML templates → browsable web site
//! ```
//!
//! This crate is the facade over the subsystem crates:
//!
//! | crate | role |
//! |---|---|
//! | [`strudel_graph`] | semistructured labeled-graph data model + indexed repository |
//! | [`strudel_wrappers`] | BibTeX / CSV / HTML / DDL wrappers + GAV warehousing mediator |
//! | [`strudel_struql`] | the StruQL query & transformation language (parser, optimizer, evaluator) |
//! | [`strudel_site`] | site schemas, integrity-constraint verification, click-time evaluation |
//! | [`strudel_template`] | the HTML-template language (SFMT / SIF / SFOR) and the HTML generator |
//!
//! The [`Strudel`] type wires the whole pipeline; [`synth`] provides the
//! paper's workloads (the AT&T organization site, the CNN-style news site,
//! and the BibTeX personal home pages) as reproducible generators.
//!
//! ```
//! use strudel::Strudel;
//!
//! let mut s = Strudel::new();
//! s.add_ddl_source("pubs", r#"
//!     object p1 in Publications { title "UnQL" year 1996 }
//!     object p2 in Publications { title "Lorel" year 1996 }
//! "#);
//! s.add_site_query(r#"
//!     CREATE RootPage()
//!     {
//!       WHERE Publications(x), x -> "title" -> t
//!       CREATE Page(x)
//!       LINK Page(x) -> "Title" -> t, RootPage() -> "Paper" -> Page(x)
//!     }
//! "#).unwrap();
//! // Skolem-function names double as collections in the site graph, so a
//! // template per page *type* is one registration.
//! s.templates_mut().set_collection_template("RootPage",
//!     r#"<h1>Papers</h1><SFMT @Paper ALL DELIM=", ">"#).unwrap();
//! s.templates_mut().set_collection_template("Page",
//!     r#"<SFMT @Title>"#).unwrap();
//! let site = s.generate_site(&["RootPage"]).unwrap();
//! assert_eq!(site.pages.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod serve;
pub mod synth;
mod system;

pub use error::{Result, StrudelError};
pub use system::{SiteBuild, StoreTuning, Strudel};

// Re-export the subsystem crates under short names.
pub use strudel_graph as graph;
pub use strudel_obs as obs;
pub use strudel_site as site;
pub use strudel_struql as struql;
pub use strudel_template as template;
pub use strudel_wrappers as wrappers;
