//! The unified error type of the pipeline facade.

use std::fmt;

/// Any error the STRUDEL pipeline can raise.
#[derive(Debug)]
pub enum StrudelError {
    /// Data-repository error.
    Graph(strudel_graph::GraphError),
    /// StruQL parse/semantic/evaluation error.
    Struql(strudel_struql::StruqlError),
    /// Template parse/render error.
    Template(strudel_template::TemplateError),
    /// Filesystem error while emitting the browsable site.
    Io(std::io::Error),
    /// Pipeline-level misuse (missing source, no site query, …).
    Pipeline(String),
}

impl fmt::Display for StrudelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrudelError::Graph(e) => write!(f, "{e}"),
            StrudelError::Struql(e) => write!(f, "{e}"),
            StrudelError::Template(e) => write!(f, "{e}"),
            StrudelError::Io(e) => write!(f, "io error: {e}"),
            StrudelError::Pipeline(m) => write!(f, "pipeline error: {m}"),
        }
    }
}

impl std::error::Error for StrudelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StrudelError::Graph(e) => Some(e),
            StrudelError::Struql(e) => Some(e),
            StrudelError::Template(e) => Some(e),
            StrudelError::Io(e) => Some(e),
            StrudelError::Pipeline(_) => None,
        }
    }
}

impl From<strudel_graph::GraphError> for StrudelError {
    fn from(e: strudel_graph::GraphError) -> Self {
        StrudelError::Graph(e)
    }
}

impl From<strudel_struql::StruqlError> for StrudelError {
    fn from(e: strudel_struql::StruqlError) -> Self {
        StrudelError::Struql(e)
    }
}

impl From<strudel_template::TemplateError> for StrudelError {
    fn from(e: strudel_template::TemplateError) -> Self {
        StrudelError::Template(e)
    }
}

impl From<std::io::Error> for StrudelError {
    fn from(e: std::io::Error) -> Self {
        StrudelError::Io(e)
    }
}

/// Result alias for facade operations.
pub type Result<T> = std::result::Result<T, StrudelError>;
