//! Serving a dynamically evaluated site over HTTP (§6).
//!
//! "In practice, dynamic generation is supported by often large groups of
//! loosely related CGI programs. Supporting dynamic evaluation would
//! eliminate writing such programs by hand." This module is that support: a
//! dependency-free HTTP/1.1 server whose pages are computed at click time
//! by [`DynamicSite::expand`] — only the roots are precomputed, and the
//! evaluator's shared cache answers repeat clicks from any worker thread.
//!
//! The server runs a scoped pool of worker threads over one shared
//! [`DynamicSite`]: the acceptor hands connections to workers through a
//! channel, each request is read with real HTTP framing (headers up to
//! `\r\n\r\n`, bounded by [`ServerConfig::max_request_bytes`]) under a
//! per-request socket timeout, and `/quit` shuts the pool down gracefully.
//!
//! URL scheme: `/` lists the precomputed roots; `/page/<Skolem>/<arg>…`
//! shows one logical page, with the Skolem name percent-encoded and the
//! arguments encoded by [`encode_value`] (`n<oid>` for nodes, `i<int>`,
//! `s<urlencoded-string>`, …). `/stats` reports request, latency, and
//! cache counters as JSON.

use crate::error::Result;
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use strudel_graph::{FileKind, Oid, Value};
use strudel_obs::{Histogram, PromText};
use strudel_site::{Delta, DynamicSite, OutLink, PageRef, Target};

/// Encodes a page reference as a URL path.
pub fn page_url(p: &PageRef) -> String {
    let mut url = format!("/page/{}", urlencode(&p.skolem));
    for a in &p.args {
        url.push('/');
        url.push_str(&encode_value(a));
    }
    url
}

/// Parses a `/page/…` URL path back to a page reference (the inverse of
/// [`page_url`]). Returns `None` for anything malformed.
pub fn parse_page_url(path: &str) -> Option<PageRef> {
    let rest = path.strip_prefix("/page/")?;
    let mut parts = rest.split('/');
    let skolem = urldecode(parts.next()?)?;
    if skolem.is_empty() {
        return None;
    }
    let args: Option<Vec<Value>> = parts.map(decode_value).collect();
    Some(PageRef {
        skolem,
        args: args?,
    })
}

/// Encodes one value as a URL path segment.
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Node(n) => format!("n{}", n.0),
        Value::Int(i) => format!("i{i}"),
        Value::Bool(b) => format!("b{b}"),
        Value::Float(f) => format!("f{f}"),
        Value::Str(s) => format!("s{}", urlencode(s)),
        Value::Url(s) => format!("u{}", urlencode(s)),
        Value::File(k, s) => format!("F{}~{}", k.keyword(), urlencode(s)),
    }
}

/// Decodes a path segment back to a value.
pub fn decode_value(s: &str) -> Option<Value> {
    if s.is_empty() {
        return None;
    }
    let (tag, rest) = s.split_at(1);
    Some(match tag {
        "n" => Value::Node(Oid(rest.parse().ok()?)),
        "i" => Value::Int(rest.parse().ok()?),
        "b" => Value::Bool(rest.parse().ok()?),
        "f" => Value::Float(rest.parse().ok()?),
        "s" => Value::str(urldecode(rest)?),
        "u" => Value::url(urldecode(rest)?),
        "F" => {
            let (kind, path) = rest.split_once('~')?;
            Value::file(FileKind::from_keyword(kind)?, &urldecode(path)?)
        }
        _ => return None,
    })
}

fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn urldecode(s: &str) -> Option<String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// HTML-escapes text, including the quote characters so escaped text is
/// safe inside attribute values too.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

fn render_links(title: &str, links: &[OutLink]) -> String {
    let mut html = format!("<html><body><h1>{}</h1><table>", escape(title));
    for l in links {
        let target = match &l.target {
            Target::Page(p) => {
                format!("<a href=\"{}\">{}</a>", page_url(p), escape(&p.to_string()))
            }
            Target::Value(v) => escape(&v.to_string()),
        };
        html.push_str(&format!(
            "<tr><td><b>{}</b></td><td>{target}</td></tr>",
            escape(&l.label)
        ));
    }
    html.push_str("</table><p><a href=\"/\">roots</a></p></body></html>");
    html
}

// ---- request framing -------------------------------------------------------

/// Outcome of reading one request head off a socket.
enum RequestRead {
    /// The full head (up to and including `\r\n\r\n`) arrived.
    Head(String),
    /// The peer closed or sent garbage before completing the head.
    Malformed,
    /// The head exceeded the configured size cap.
    TooLarge,
    /// The socket timed out before the head completed.
    TimedOut,
}

/// Reads from `stream` until the `\r\n\r\n` head terminator, a size cap,
/// EOF, or a timeout. A request is never acted upon from a partial read:
/// short reads keep the loop going until the terminator arrives.
fn read_request_head(stream: &mut TcpStream, max_bytes: usize) -> RequestRead {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        // Only the head matters (GET carries no body), so scanning the tail
        // of what we have is enough.
        if let Some(end) = find_head_end(&buf) {
            return RequestRead::Head(String::from_utf8_lossy(&buf[..end]).into_owned());
        }
        if buf.len() >= max_bytes {
            return RequestRead::TooLarge;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return RequestRead::Malformed,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return RequestRead::TimedOut;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return RequestRead::Malformed,
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses the request line of a head. Returns `(method, path)`.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut it = line.split(' ');
    let method = it.next()?;
    let path = it.next()?;
    let version = it.next()?;
    if method.is_empty() || !path.starts_with('/') || !version.starts_with("HTTP/") {
        return None;
    }
    Some((method, path))
}

/// Finishes an errored connection without a TCP reset: half-closes the
/// write side, then drains whatever the peer already sent so the kernel
/// does not turn our close into RST while response bytes are in flight.
fn linger_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Content types the server emits.
const CT_HTML: &str = "text/html; charset=utf-8";
const CT_JSON: &str = "application/json";
/// The Prometheus text exposition format, version 0.0.4.
const CT_PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}

// ---- metrics ---------------------------------------------------------------

/// Request counters and the latency histogram.
///
/// Latencies land in a lock-free fixed-bucket [`Histogram`] rather than the
/// earlier mutex-guarded reservoir, whose fill phase raced the slot counter
/// against pushes (a slot index taken before the lock could overwrite a
/// fresher sample, and wrap-around forgot everything older than the
/// window). Recording is now a few relaxed atomic adds, covers the server's
/// whole lifetime, and feeds `/metrics` directly.
#[derive(Default)]
struct Metrics {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

impl Metrics {
    fn record(&self, latency: Duration, is_error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency
            .record(u64::try_from(latency.as_micros()).unwrap_or(u64::MAX));
    }

    fn snapshot(&self) -> ServeStats {
        let lat = self.latency.snapshot();
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            latency_p50_us: lat.quantile(0.50),
            latency_p90_us: lat.quantile(0.90),
            latency_p99_us: lat.quantile(0.99),
            latency_max_us: lat.max_us,
        }
    }
}

/// A snapshot of the server's request counters. Latency percentiles are
/// histogram estimates (the matching bucket's upper bound, clamped to the
/// exact observed maximum) over every request since the server bound.
#[derive(Default, Clone, Copy, Debug)]
pub struct ServeStats {
    /// Requests answered (any status).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: u64,
    /// Median request latency, microseconds (bucket estimate).
    pub latency_p50_us: u64,
    /// 90th-percentile request latency, microseconds (bucket estimate).
    pub latency_p90_us: u64,
    /// 99th-percentile request latency, microseconds (bucket estimate).
    pub latency_p99_us: u64,
    /// Worst request latency observed, microseconds (exact).
    pub latency_max_us: u64,
}

// ---- server ----------------------------------------------------------------

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads answering requests (minimum 1).
    pub threads: usize,
    /// Socket read/write timeout per request.
    pub request_timeout: Duration,
    /// Maximum accepted request-head size in bytes.
    pub max_request_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            request_timeout: Duration::from_secs(5),
            max_request_bytes: 16 * 1024,
        }
    }
}

/// A running click-time server: a scoped worker pool over one shared
/// [`DynamicSite`].
pub struct Server<'g> {
    site: DynamicSite<'g>,
    listener: TcpListener,
    roots: Vec<PageRef>,
    config: ServerConfig,
    metrics: Metrics,
    started: Instant,
}

impl<'g> Server<'g> {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with the
    /// default configuration.
    pub fn bind(site: DynamicSite<'g>, addr: &str) -> std::io::Result<Self> {
        Self::bind_with(site, addr, ServerConfig::default())
    }

    /// Binds `addr` with an explicit configuration.
    pub fn bind_with(
        site: DynamicSite<'g>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let roots = site.roots();
        Ok(Server {
            site,
            listener,
            roots,
            config,
            metrics: Metrics::default(),
            started: Instant::now(),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared evaluator (for cache configuration checks and stats).
    pub fn site(&self) -> &DynamicSite<'g> {
        &self.site
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Request counters so far.
    pub fn stats(&self) -> ServeStats {
        self.metrics.snapshot()
    }

    /// Notifies the server of a data-graph change: forwards `delta` to the
    /// shared evaluator's cache invalidation and returns the number of
    /// cached expansions dropped. Insertions and removals are handled
    /// symmetrically; a removal delta may be delivered before or after the
    /// underlying graph mutation (seed matching needs only the interner,
    /// not the edge's presence). The next request for an affected page
    /// recomputes it; untouched entries keep answering from the warm cache
    /// (the `invalidated` counter is visible under `/stats`).
    pub fn notify(&self, delta: &Delta) -> u64 {
        self.site.invalidate(delta)
    }

    /// Serves requests on a pool of [`ServerConfig::threads`] workers until
    /// `max_requests` connections have been dispatched (`None` = forever)
    /// or a request for `/quit` arrives (always honored, so tests and
    /// scripts can stop the server remotely). In-flight requests finish
    /// before this returns.
    pub fn serve(&self, max_requests: Option<usize>) -> Result<()> {
        // Poll accept so the acceptor can notice `/quit` promptly.
        self.listener
            .set_nonblocking(true)
            .map_err(crate::error::StrudelError::Io)?;
        let shutdown = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);
        let workers = self.config.threads.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Take the receiver lock only to pull one connection.
                    let next = rx.lock().recv();
                    match next {
                        Ok(stream) => self.handle_connection(stream, &shutdown),
                        Err(_) => break, // acceptor gone, queue drained
                    }
                });
            }
            let mut dispatched = 0usize;
            while !shutdown.load(Ordering::Acquire) && max_requests.is_none_or(|m| dispatched < m) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        dispatched += 1;
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {}
                }
            }
            drop(tx); // lets idle workers exit once the queue drains
        });
        self.listener
            .set_nonblocking(false)
            .map_err(crate::error::StrudelError::Io)?;
        Ok(())
    }

    fn handle_connection(&self, mut stream: TcpStream, shutdown: &AtomicBool) {
        let start = Instant::now();
        // The stream may inherit the listener's non-blocking mode on some
        // platforms; request handling is blocking with socket timeouts.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(self.config.request_timeout));
        let _ = stream.set_write_timeout(Some(self.config.request_timeout));

        let head = match read_request_head(&mut stream, self.config.max_request_bytes) {
            RequestRead::Head(h) => h,
            RequestRead::Malformed => {
                respond(
                    &mut stream,
                    "400 Bad Request",
                    CT_HTML,
                    "<html><body>malformed request</body></html>",
                );
                self.metrics.record(start.elapsed(), true);
                return;
            }
            RequestRead::TooLarge => {
                respond(
                    &mut stream,
                    "431 Request Header Fields Too Large",
                    CT_HTML,
                    "<html><body>request too large</body></html>",
                );
                linger_close(&mut stream);
                self.metrics.record(start.elapsed(), true);
                return;
            }
            RequestRead::TimedOut => {
                respond(
                    &mut stream,
                    "408 Request Timeout",
                    CT_HTML,
                    "<html><body>request timeout</body></html>",
                );
                self.metrics.record(start.elapsed(), true);
                return;
            }
        };

        let (status, content_type, body) = match parse_request_line(&head) {
            None => (
                "400 Bad Request".into(),
                CT_HTML,
                "<html><body>malformed request line</body></html>".into(),
            ),
            Some((method, _)) if method != "GET" => (
                "405 Method Not Allowed".into(),
                CT_HTML,
                "<html><body>only GET is supported</body></html>".into(),
            ),
            Some((_, "/quit")) => {
                shutdown.store(true, Ordering::Release);
                ("200 OK".into(), CT_HTML, "bye".into())
            }
            Some((_, path)) => self.route(path),
        };
        let is_error = !status.starts_with('2');
        respond(&mut stream, &status, content_type, &body);
        self.metrics.record(start.elapsed(), is_error);
    }

    /// Computes the `(status, content-type, body)` answer for one GET path.
    fn route(&self, path: &str) -> (String, &'static str, String) {
        if path == "/" {
            let links: Vec<OutLink> = self
                .roots
                .iter()
                .map(|r| OutLink {
                    label: "root".into(),
                    target: Target::Page(r.clone()),
                })
                .collect();
            return (
                "200 OK".into(),
                CT_HTML,
                render_links("Site roots (precomputed)", &links),
            );
        }
        if path == "/stats" {
            return ("200 OK".into(), CT_JSON, self.stats_json());
        }
        if path == "/metrics" {
            return ("200 OK".into(), CT_PROM, self.metrics_text());
        }
        if path.starts_with("/page/") {
            let Some(page) = parse_page_url(path) else {
                return (
                    "400 Bad Request".into(),
                    CT_HTML,
                    "<html><body>bad page ref</body></html>".into(),
                );
            };
            return match self.site.expand(&page) {
                Ok(links) => {
                    let title = format!("{page} — {} links (click time)", links.len());
                    ("200 OK".into(), CT_HTML, render_links(&title, &links))
                }
                Err(e) => (
                    "500 Internal Server Error".into(),
                    CT_HTML,
                    format!(
                        "<html><body>query error: {}</body></html>",
                        escape(&e.to_string())
                    ),
                ),
            };
        }
        (
            "404 Not Found".into(),
            CT_HTML,
            "<html><body>no such page</body></html>".into(),
        )
    }

    /// The `/stats` payload: request counters, latency percentiles,
    /// server vitals (uptime, worker threads, evaluator jobs), and the
    /// shared evaluator's cache counters, as JSON.
    fn stats_json(&self) -> String {
        let s = self.metrics.snapshot();
        let d = self.site.stats();
        let p = self.site.path_cache_stats();
        format!(
            concat!(
                "{{\"requests\":{},\"errors\":{},",
                "\"uptime_seconds\":{},\"threads\":{},\"jobs\":{},",
                "\"latency_us\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"invalidated\":{},",
                "\"entries\":{},\"bytes\":{},\"expansions\":{},\"clause_queries\":{}}},",
                "\"path_cache\":{{\"hits\":{},\"misses\":{},\"invalidations\":{}}}}}"
            ),
            s.requests,
            s.errors,
            self.started.elapsed().as_secs(),
            self.config.threads.max(1),
            self.site.jobs(),
            s.latency_p50_us,
            s.latency_p90_us,
            s.latency_p99_us,
            s.latency_max_us,
            d.cache_hits,
            d.cache_misses,
            d.evictions,
            d.invalidated,
            self.site.cache_len(),
            self.site.cache_bytes(),
            d.expansions,
            d.clause_queries,
            p.hits,
            p.misses,
            p.invalidations,
        )
    }

    /// The `/metrics` payload: the same counters as `/stats`, in the
    /// Prometheus text exposition format (version 0.0.4) — counters,
    /// gauges, and the request-latency histogram in seconds.
    fn metrics_text(&self) -> String {
        let d = self.site.stats();
        let p = self.site.path_cache_stats();
        let mut m = PromText::new();
        m.counter(
            "strudel_requests_total",
            "Requests answered (any status).",
            self.metrics.requests.load(Ordering::Relaxed),
        );
        m.counter(
            "strudel_request_errors_total",
            "Requests answered with a 4xx/5xx status.",
            self.metrics.errors.load(Ordering::Relaxed),
        );
        m.histogram_seconds(
            "strudel_request_duration_seconds",
            "Request latency from accept to response written.",
            &self.metrics.latency.snapshot(),
        );
        m.gauge(
            "strudel_uptime_seconds",
            "Seconds since the server bound its listener.",
            self.started.elapsed().as_secs_f64(),
        );
        m.gauge(
            "strudel_worker_threads",
            "Worker threads answering requests.",
            self.config.threads.max(1) as f64,
        );
        m.gauge(
            "strudel_eval_jobs",
            "Effective evaluator worker count for click-time expansion.",
            self.site.jobs() as f64,
        );
        m.counter(
            "strudel_page_cache_hits_total",
            "Click-time expansions answered from the page cache.",
            d.cache_hits,
        );
        m.counter(
            "strudel_page_cache_misses_total",
            "Click-time expansions computed by query evaluation.",
            d.cache_misses,
        );
        m.counter(
            "strudel_page_cache_evictions_total",
            "Page-cache entries evicted by the size bound.",
            d.evictions,
        );
        m.counter(
            "strudel_page_cache_invalidated_total",
            "Page-cache entries dropped by data-change deltas.",
            d.invalidated,
        );
        m.gauge(
            "strudel_page_cache_entries",
            "Pages currently cached.",
            self.site.cache_len() as f64,
        );
        m.gauge(
            "strudel_page_cache_bytes",
            "Approximate bytes held by the page cache.",
            self.site.cache_bytes() as f64,
        );
        m.counter(
            "strudel_expansions_total",
            "Logical page expansions requested.",
            d.expansions,
        );
        m.counter(
            "strudel_clause_queries_total",
            "Seeded clause evaluations run at click time.",
            d.clause_queries,
        );
        m.counter(
            "strudel_path_cache_hits_total",
            "Regular-path-expression memo-cache hits.",
            p.hits,
        );
        m.counter(
            "strudel_path_cache_misses_total",
            "Regular-path-expression memo-cache misses.",
            p.misses,
        );
        m.counter(
            "strudel_path_cache_invalidations_total",
            "Regular-path-expression memo-cache invalidations.",
            p.invalidations,
        );
        m.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_site::CacheConfig;
    use strudel_struql::EvalOptions;

    #[test]
    fn value_encoding_roundtrips() {
        for v in [
            Value::Node(Oid(42)),
            Value::Int(-7),
            Value::Bool(true),
            Value::Float(2.5),
            Value::str("hello world & more"),
            Value::url("http://x/y?z=1"),
            Value::file(FileKind::PostScript, "papers/a b.ps"),
        ] {
            let encoded = encode_value(&v);
            assert_eq!(decode_value(&encoded), Some(v.clone()), "{encoded}");
        }
        assert_eq!(decode_value(""), None);
        assert_eq!(decode_value("zzz"), None);
        assert_eq!(decode_value("n-not-a-number"), None);
    }

    #[test]
    fn page_urls_are_parseable_paths() {
        let p = PageRef {
            skolem: "YearPage".into(),
            args: vec![Value::Int(1997)],
        };
        assert_eq!(page_url(&p), "/page/YearPage/i1997");
        assert_eq!(parse_page_url("/page/YearPage/i1997"), Some(p));
    }

    #[test]
    fn page_urls_percent_encode_the_skolem_segment() {
        // Skolem names normally look like identifiers, but nothing in the
        // query language forbids exotic ones; the URL must not break.
        for skolem in ["Year Page", "A/B", "naïve", "q?a=1&b=2", "x\"y'"] {
            let p = PageRef {
                skolem: skolem.to_string(),
                args: vec![Value::Int(3), Value::str("a b/c%d")],
            };
            let url = page_url(&p);
            let tail = &url["/page/".len()..];
            let encoded_skolem = tail.split('/').next().unwrap();
            assert!(
                encoded_skolem
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'%')),
                "unencoded byte in {url}"
            );
            assert_eq!(parse_page_url(&url), Some(p), "{url}");
        }
        assert_eq!(parse_page_url("/page/"), None);
        assert_eq!(parse_page_url("/page/%zz"), None);
        assert_eq!(parse_page_url("/elsewhere"), None);
    }

    #[test]
    fn escape_covers_quotes() {
        assert_eq!(
            escape(r#"<a href="x">&'quoted'</a>"#),
            "&lt;a href=&quot;x&quot;&gt;&amp;&#39;quoted&#39;&lt;/a&gt;"
        );
    }

    #[test]
    fn request_head_framing() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(
            parse_request_line("GET /x HTTP/1.1\r\nHost: h"),
            Some(("GET", "/x"))
        );
        assert_eq!(parse_request_line("POST /x HTTP/1.0"), Some(("POST", "/x")));
        assert_eq!(parse_request_line("GET /x"), None);
        assert_eq!(parse_request_line("GET x HTTP/1.1"), None);
        assert_eq!(parse_request_line(""), None);
    }

    fn demo_site() -> (strudel_graph::Graph, strudel_struql::Query) {
        let data = strudel_graph::ddl::parse(
            r#"
object a1 in Articles { headline "one" section "world" }
object a2 in Articles { headline "two" section "world" }
"#,
        )
        .unwrap();
        let query = strudel_struql::parse_query(
            r#"CREATE FrontPage()
               { WHERE Articles(a), a -> l -> v
                 CREATE Page(a)
                 LINK Page(a) -> l -> v, FrontPage() -> "Story" -> Page(a) }"#,
        )
        .unwrap();
        (data, query)
    }

    fn fetch(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(
            format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        buf
    }

    #[test]
    fn serves_roots_pages_and_errors_over_tcp() {
        let (data, query) = demo_site();
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        let server = Server::bind(site, "127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();

        let client = std::thread::spawn(move || {
            let root = fetch(addr, "/");
            assert!(root.contains("FrontPage"), "{root}");
            let front = fetch(addr, "/page/FrontPage");
            assert!(front.contains("Story"), "{front}");
            assert!(front.contains("/page/Page/n"), "{front}");
            // Follow a story link.
            let href = front
                .split("href=\"/page/Page/")
                .nth(1)
                .map(|s| format!("/page/Page/{}", &s[..s.find('"').unwrap()]))
                .expect("a story href");
            let story = fetch(addr, &href);
            assert!(story.contains("headline"), "{story}");
            assert!(fetch(addr, "/page/Bad/%%%").contains("400"));
            assert!(fetch(addr, "/nope").contains("404"));
            let stats = fetch(addr, "/stats");
            assert!(stats.contains("\"requests\""), "{stats}");
            assert!(stats.contains("\"p50\""), "{stats}");
            assert!(stats.contains("\"hits\""), "{stats}");
            let _ = fetch(addr, "/quit");
        });

        server.serve(None).unwrap();
        client.join().unwrap();
        let stats = server.stats();
        assert!(stats.requests >= 7, "{stats:?}");
        assert!(stats.errors >= 2, "{stats:?}"); // the 400 and the 404
    }

    /// `/metrics` over a live server: well-formed Prometheus text
    /// exposition whose counters agree with the traffic just sent.
    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (data, query) = demo_site();
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        let server = Server::bind(site, "127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();

        let client = std::thread::spawn(move || {
            assert!(fetch(addr, "/page/FrontPage").contains("Story"));
            assert!(fetch(addr, "/page/FrontPage").contains("Story")); // cache hit
            assert!(fetch(addr, "/nope").contains("404"));

            let resp = fetch(addr, "/metrics");
            let (head, body) = resp.split_once("\r\n\r\n").expect("framed response");
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
            assert!(
                head.contains("Content-Type: text/plain; version=0.0.4"),
                "{head}"
            );

            // Every family the endpoint promises is declared with HELP+TYPE.
            for (name, kind) in [
                ("strudel_requests_total", "counter"),
                ("strudel_request_errors_total", "counter"),
                ("strudel_request_duration_seconds", "histogram"),
                ("strudel_uptime_seconds", "gauge"),
                ("strudel_worker_threads", "gauge"),
                ("strudel_eval_jobs", "gauge"),
                ("strudel_page_cache_hits_total", "counter"),
                ("strudel_page_cache_misses_total", "counter"),
                ("strudel_page_cache_entries", "gauge"),
                ("strudel_path_cache_hits_total", "counter"),
            ] {
                assert!(body.contains(&format!("# HELP {name} ")), "{name}");
                assert!(body.contains(&format!("# TYPE {name} {kind}\n")), "{name}");
            }

            // Exposition is line-structured: every non-comment line is
            // `name[{labels}] value` with a legal metric name and a value
            // that parses.
            for line in body.lines().filter(|l| !l.starts_with('#')) {
                let (lhs, value) = line.rsplit_once(' ').expect(line);
                let name = lhs.split('{').next().unwrap();
                assert!(strudel_obs::valid_metric_name(name), "{line}");
                value.parse::<f64>().expect(line);
            }

            // Histogram shape: cumulative buckets ending at +Inf, matching
            // the _count; at least the four requests above are in it.
            let inf: u64 = body
                .lines()
                .find(|l| l.contains("_bucket{le=\"+Inf\"}"))
                .and_then(|l| l.rsplit(' ').next())
                .unwrap()
                .parse()
                .unwrap();
            let count: u64 = body
                .lines()
                .find(|l| l.starts_with("strudel_request_duration_seconds_count"))
                .and_then(|l| l.rsplit(' ').next())
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(inf, count);
            assert!(count >= 3, "{count}");

            // Counters agree with the traffic: 2 expansions of the same
            // page → ≥1 page-cache hit; the 404 shows as an error.
            let value_of = |name: &str| -> f64 {
                body.lines()
                    .find(|l| l.starts_with(name) && !l.starts_with('#'))
                    .and_then(|l| l.rsplit(' ').next())
                    .unwrap()
                    .parse()
                    .unwrap()
            };
            assert!(value_of("strudel_page_cache_hits_total") >= 1.0);
            assert!(value_of("strudel_request_errors_total") >= 1.0);

            // /stats carries the new vitals and is served as JSON.
            let stats = fetch(addr, "/stats");
            assert!(stats.contains("Content-Type: application/json"), "{stats}");
            for key in ["\"uptime_seconds\":", "\"threads\":", "\"jobs\":"] {
                assert!(stats.contains(key), "{stats}");
            }
            let _ = fetch(addr, "/quit");
        });
        server.serve(None).unwrap();
        client.join().unwrap();
    }

    /// End-to-end live update with a *deletion*: serve and warm the cache,
    /// deliver a removal delta through [`Server::notify`], carry the
    /// surviving cache entries across a rebind with snapshot/restore, and
    /// check the served HTML reflects the deletion while untouched pages
    /// still answer from the warm cache.
    #[test]
    fn deletion_notify_invalidates_served_pages_across_rebind() {
        let (mut data, query) = demo_site();
        let find = |g: &strudel_graph::Graph, name: &str| {
            g.nodes()
                .iter()
                .copied()
                .find(|n| g.node_name(*n).as_deref() == Some(name))
                .unwrap()
        };
        let a1 = find(&data, "a1");
        let a2 = find(&data, "a2");
        let headline = data.sym("headline");
        let url1 = page_url(&PageRef {
            skolem: "Page".into(),
            args: vec![Value::Node(a1)],
        });
        let url2 = page_url(&PageRef {
            skolem: "Page".into(),
            args: vec![Value::Node(a2)],
        });

        // Phase 1: warm both story pages, then notify the removal.
        let snap = {
            let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
            let server = Server::bind(site, "127.0.0.1:0").unwrap();
            let addr = server.addr().unwrap();
            let (u1, u2) = (url1.clone(), url2.clone());
            let client = std::thread::spawn(move || {
                assert!(fetch(addr, &u1).contains("one"));
                assert!(fetch(addr, &u2).contains("two"));
                let _ = fetch(addr, "/quit");
            });
            server.serve(None).unwrap();
            client.join().unwrap();

            let dropped = server.notify(&Delta::EdgeRemoved {
                from: a1,
                label: headline,
                to: Value::str("one"),
            });
            assert!(dropped >= 1, "removal delta dropped {dropped} entries");
            server.site().cache_snapshot()
        };

        // The server is gone; apply the mutation the delta described.
        assert!(data.remove_edge(a1, headline, &Value::str("one")).unwrap());

        // Phase 2: rebind over the mutated graph with the surviving cache.
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        site.cache_restore(snap);
        let server = Server::bind(site, "127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        let (u1, u2) = (url1.clone(), url2.clone());
        let client = std::thread::spawn(move || {
            let story1 = fetch(addr, &u1);
            assert!(!story1.contains("one"), "{story1}");
            assert!(story1.contains("world"), "{story1}"); // section edge intact
            assert!(fetch(addr, &u2).contains("two"));
            let _ = fetch(addr, "/quit");
        });
        server.serve(None).unwrap();
        client.join().unwrap();
        let d = server.site().stats();
        assert!(d.cache_hits >= 1, "untouched page should stay warm: {d:?}");
        assert!(
            d.cache_misses >= 1,
            "invalidated page must recompute: {d:?}"
        );
    }

    /// Regression test: a request head arriving in several TCP segments
    /// must be reassembled, not served from the first partial read (which
    /// used to fall back to the `/` roots page).
    #[test]
    fn split_request_is_reassembled_before_routing() {
        let (data, query) = demo_site();
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        let server = Server::bind(site, "127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();

        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            // First flush stops mid-request-line: no terminator, and even
            // the path is incomplete.
            s.write_all(b"GET /page/Fro").unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(80));
            s.write_all(b"ntPage HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).unwrap();
            assert!(buf.starts_with("HTTP/1.1 200"), "{buf}");
            // The FrontPage expansion, not the roots listing.
            assert!(buf.contains("Story"), "{buf}");
            assert!(!buf.contains("Site roots"), "{buf}");
            let _ = fetch(addr, "/quit");
        });
        server.serve(None).unwrap();
        client.join().unwrap();
    }

    #[test]
    fn oversized_and_silent_requests_are_rejected() {
        let (data, query) = demo_site();
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        let config = ServerConfig {
            threads: 2,
            request_timeout: Duration::from_millis(150),
            max_request_bytes: 512,
        };
        let server = Server::bind_with(site, "127.0.0.1:0", config).unwrap();
        let addr = server.addr().unwrap();

        let client = std::thread::spawn(move || {
            // Head larger than the cap.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(1024));
            s.write_all(huge.as_bytes()).unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).unwrap();
            assert!(buf.contains("431"), "{buf}");

            // A client that connects and never speaks: per-request timeout.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).unwrap();
            assert!(buf.contains("408"), "{buf}");

            // Non-GET methods are refused after full framing.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s.write_all(b"DELETE / HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).unwrap();
            assert!(buf.contains("405"), "{buf}");

            let _ = fetch(addr, "/quit");
        });
        server.serve(None).unwrap();
        client.join().unwrap();
        assert!(server.stats().errors >= 3);
    }

    /// The concurrency smoke test: many threads hammer the pool and every
    /// response must be well-formed and byte-identical to the serial
    /// answer for the same path.
    #[test]
    fn concurrent_requests_match_serial_answers() {
        let (data, query) = demo_site();
        // A small cache so eviction churn happens under load too.
        let site = DynamicSite::with_cache(
            &data,
            &query,
            EvalOptions::default(),
            CacheConfig {
                max_entries: 2,
                max_bytes: usize::MAX,
            },
        )
        .unwrap();
        let config = ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        };
        let server = Server::bind_with(site, "127.0.0.1:0", config).unwrap();
        let addr = server.addr().unwrap();

        let client = std::thread::spawn(move || {
            let front = fetch(addr, "/page/FrontPage");
            let mut paths = vec!["/".to_string(), "/page/FrontPage".to_string()];
            for part in front.split("href=\"/page/Page/").skip(1) {
                paths.push(format!("/page/Page/{}", &part[..part.find('"').unwrap()]));
            }
            assert!(paths.len() >= 4, "{paths:?}");
            // Serial reference answers.
            let expected: Vec<String> = paths.iter().map(|p| fetch(addr, p)).collect();

            const THREADS: usize = 8;
            const ROUNDS: usize = 12;
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let paths = paths.clone();
                let expected = expected.clone();
                handles.push(std::thread::spawn(move || {
                    for r in 0..ROUNDS {
                        let i = (t + r) % paths.len();
                        let got = fetch(addr, &paths[i]);
                        assert_eq!(got, expected[i], "thread {t} round {r} path {}", paths[i]);
                        // Well-formed: status line + framed body length.
                        let (head, body) = got.split_once("\r\n\r\n").expect("framed response");
                        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
                        let len: usize = head
                            .lines()
                            .find_map(|l| l.strip_prefix("Content-Length: "))
                            .unwrap()
                            .parse()
                            .unwrap();
                        assert_eq!(body.len(), len);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let stats = fetch(addr, "/stats");
            assert!(stats.contains("\"hits\""), "{stats}");
            let _ = fetch(addr, "/quit");
        });
        server.serve(None).unwrap();
        client.join().unwrap();

        let stats = server.stats();
        assert!(stats.requests >= 8 * 12, "{stats:?}");
        assert_eq!(stats.errors, 0, "{stats:?}");
        // The shared cache was exercised and stayed within its bound.
        let dyn_stats = server.site().stats();
        assert!(dyn_stats.cache_hits > 0, "{dyn_stats:?}");
        assert!(dyn_stats.evictions > 0, "{dyn_stats:?}");
        assert!(server.site().cache_len() <= 2);
    }
}
