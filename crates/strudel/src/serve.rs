//! Serving a dynamically evaluated site over HTTP (§6).
//!
//! "In practice, dynamic generation is supported by often large groups of
//! loosely related CGI programs. Supporting dynamic evaluation would
//! eliminate writing such programs by hand." This module is that support: a
//! dependency-free HTTP/1.1 server whose pages are computed at click time
//! by [`DynamicSite::expand`] — only the roots are precomputed, and the
//! evaluator's cache answers repeat clicks.
//!
//! URL scheme: `/` lists the precomputed roots; `/page/<Skolem>/<arg>…`
//! shows one logical page, with arguments encoded by [`encode_value`]
//! (`n<oid>` for nodes, `i<int>`, `s<urlencoded-string>`, …).

use crate::error::Result;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use strudel_graph::{FileKind, Oid, Value};
use strudel_site::{DynamicSite, OutLink, PageRef, Target};

/// Encodes a page reference as a URL path.
pub fn page_url(p: &PageRef) -> String {
    let mut url = format!("/page/{}", p.skolem);
    for a in &p.args {
        url.push('/');
        url.push_str(&encode_value(a));
    }
    url
}

/// Encodes one value as a URL path segment.
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Node(n) => format!("n{}", n.0),
        Value::Int(i) => format!("i{i}"),
        Value::Bool(b) => format!("b{b}"),
        Value::Float(f) => format!("f{f}"),
        Value::Str(s) => format!("s{}", urlencode(s)),
        Value::Url(s) => format!("u{}", urlencode(s)),
        Value::File(k, s) => format!("F{}~{}", k.keyword(), urlencode(s)),
    }
}

/// Decodes a path segment back to a value.
pub fn decode_value(s: &str) -> Option<Value> {
    if s.is_empty() {
        return None;
    }
    let (tag, rest) = s.split_at(1);
    Some(match tag {
        "n" => Value::Node(Oid(rest.parse().ok()?)),
        "i" => Value::Int(rest.parse().ok()?),
        "b" => Value::Bool(rest.parse().ok()?),
        "f" => Value::Float(rest.parse().ok()?),
        "s" => Value::str(urldecode(rest)?),
        "u" => Value::url(urldecode(rest)?),
        "F" => {
            let (kind, path) = rest.split_once('~')?;
            Value::file(FileKind::from_keyword(kind)?, &urldecode(path)?)
        }
        _ => return None,
    })
}

fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn urldecode(s: &str) -> Option<String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn render_links(title: &str, links: &[OutLink]) -> String {
    let mut html = format!("<html><body><h1>{}</h1><table>", escape(title));
    for l in links {
        let target = match &l.target {
            Target::Page(p) => format!("<a href=\"{}\">{}</a>", page_url(p), escape(&p.to_string())),
            Target::Value(v) => escape(&v.to_string()),
        };
        html.push_str(&format!("<tr><td><b>{}</b></td><td>{target}</td></tr>", escape(&l.label)));
    }
    html.push_str("</table><p><a href=\"/\">roots</a></p></body></html>");
    html
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/html; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}

/// A running click-time server (single-threaded; the evaluator is `&mut`).
pub struct Server<'g> {
    site: DynamicSite<'g>,
    listener: TcpListener,
    roots: Vec<PageRef>,
}

impl<'g> Server<'g> {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(site: DynamicSite<'g>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let roots = site.roots();
        Ok(Server { site, listener, roots })
    }

    /// The bound address.
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves requests until `max_requests` have been answered (`None` =
    /// forever) or a request for `/quit` arrives (always honored, so tests
    /// and scripts can stop the server remotely).
    pub fn serve(&mut self, max_requests: Option<usize>) -> Result<()> {
        let mut served = 0usize;
        loop {
            let mut stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(_) => continue,
            };
            let mut buf = [0u8; 4096];
            let n = stream.read(&mut buf).unwrap_or(0);
            let request = String::from_utf8_lossy(&buf[..n]);
            let path = request.split_whitespace().nth(1).unwrap_or("/").to_string();
            if path == "/quit" {
                respond(&mut stream, "200 OK", "bye");
                break;
            }
            self.handle(&mut stream, &path)?;
            served += 1;
            if max_requests.is_some_and(|m| served >= m) {
                break;
            }
        }
        Ok(())
    }

    fn handle(&mut self, stream: &mut TcpStream, path: &str) -> Result<()> {
        if path == "/" {
            let links: Vec<OutLink> = self
                .roots
                .iter()
                .map(|r| OutLink { label: "root".into(), target: Target::Page(r.clone()) })
                .collect();
            respond(stream, "200 OK", &render_links("Site roots (precomputed)", &links));
            return Ok(());
        }
        if let Some(rest) = path.strip_prefix("/page/") {
            let mut parts = rest.split('/');
            let skolem = parts.next().unwrap_or_default().to_string();
            let args: Option<Vec<Value>> = parts.map(decode_value).collect();
            match args {
                Some(args) => {
                    let page = PageRef { skolem, args };
                    let t = std::time::Instant::now();
                    match self.site.expand(&page) {
                        Ok(links) => {
                            let title =
                                format!("{page} — {} links in {:?} (click time)", links.len(), t.elapsed());
                            respond(stream, "200 OK", &render_links(&title, &links));
                        }
                        Err(e) => respond(
                            stream,
                            "500 Internal Server Error",
                            &format!("<html><body>query error: {}</body></html>", escape(&e.to_string())),
                        ),
                    }
                }
                None => respond(stream, "400 Bad Request", "<html><body>bad page ref</body></html>"),
            }
            return Ok(());
        }
        respond(stream, "404 Not Found", "<html><body>no such page</body></html>");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_struql::EvalOptions;

    #[test]
    fn value_encoding_roundtrips() {
        for v in [
            Value::Node(Oid(42)),
            Value::Int(-7),
            Value::Bool(true),
            Value::Float(2.5),
            Value::str("hello world & more"),
            Value::url("http://x/y?z=1"),
            Value::file(FileKind::PostScript, "papers/a b.ps"),
        ] {
            let encoded = encode_value(&v);
            assert_eq!(decode_value(&encoded), Some(v.clone()), "{encoded}");
        }
        assert_eq!(decode_value(""), None);
        assert_eq!(decode_value("zzz"), None);
        assert_eq!(decode_value("n-not-a-number"), None);
    }

    #[test]
    fn page_urls_are_parseable_paths() {
        let p = PageRef { skolem: "YearPage".into(), args: vec![Value::Int(1997)] };
        assert_eq!(page_url(&p), "/page/YearPage/i1997");
    }

    #[test]
    fn serves_roots_pages_and_errors_over_tcp() {
        let data = strudel_graph::ddl::parse(
            r#"
object a1 in Articles { headline "one" section "world" }
object a2 in Articles { headline "two" section "world" }
"#,
        )
        .unwrap();
        let query = strudel_struql::parse_query(
            r#"CREATE FrontPage()
               { WHERE Articles(a), a -> l -> v
                 CREATE Page(a)
                 LINK Page(a) -> l -> v, FrontPage() -> "Story" -> Page(a) }"#,
        )
        .unwrap();
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        let mut server = Server::bind(site, "127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();

        let client = std::thread::spawn(move || {
            let fetch = |path: &str| -> String {
                let mut s = TcpStream::connect(addr).expect("connect");
                s.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
                s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes())
                    .unwrap();
                let mut buf = String::new();
                s.read_to_string(&mut buf).unwrap();
                buf
            };
            let root = fetch("/");
            assert!(root.contains("FrontPage"), "{root}");
            let front = fetch("/page/FrontPage");
            assert!(front.contains("Story"), "{front}");
            assert!(front.contains("/page/Page/n"), "{front}");
            // Follow a story link.
            let href = front
                .split("href=\"/page/Page/")
                .nth(1)
                .map(|s| format!("/page/Page/{}", &s[..s.find('"').unwrap()]))
                .expect("a story href");
            let story = fetch(&href);
            assert!(story.contains("headline"), "{story}");
            assert!(fetch("/page/Bad/%%%").contains("400"));
            assert!(fetch("/nope").contains("404"));
            let _ = fetch("/quit");
        });

        server.serve(None).unwrap();
        client.join().unwrap();
    }
}
