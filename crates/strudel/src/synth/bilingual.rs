//! The INRIA-Rodin bilingual site (§5.1).
//!
//! "Its main feature is that the site has two views: one English and one
//! French. The two sites are cross-linked so that each English page is
//! linked to the equivalent page in the French site and vice versa. One
//! StruQL query defines both views and creates the links between them."

use crate::synth::{person_name, pick, rng, TOPICS};
use crate::{Result, Strudel};
use std::fmt::Write as _;
use strudel_template::TemplateSet;

/// Generates a bilingual project catalogue (DDL): each project carries an
/// English and a French description.
pub fn generate_ddl(n_projects: usize, seed: u64) -> String {
    let mut r = rng(seed);
    let mut out = String::new();
    for p in 0..n_projects {
        let topic = pick(&mut r, TOPICS);
        let _ = writeln!(out, "object proj{p} in Projects {{");
        let _ = writeln!(out, "  name \"Projet {p}\"");
        let _ = writeln!(out, "  leader \"{}\"", person_name(&mut r));
        let _ = writeln!(out, "  desc_en \"Research on {topic}.\"");
        let _ = writeln!(out, "  desc_fr \"Recherche sur {topic}.\"");
        let _ = writeln!(out, "}}");
    }
    out
}

/// The single query defining both views and their cross links.
pub const SITE_QUERY: &str = r#"
CREATE EnglishRoot(), FrenchRoot()
LINK EnglishRoot() -> "Version" -> FrenchRoot(),
     FrenchRoot()  -> "Version" -> EnglishRoot()
COLLECT Roots(EnglishRoot()), Roots(FrenchRoot())
{
  WHERE Projects(p), p -> "name" -> n, p -> "leader" -> who
  CREATE EnPage(p), FrPage(p)
  LINK EnglishRoot() -> "Project" -> EnPage(p),
       FrenchRoot()  -> "Projet"  -> FrPage(p),
       EnPage(p) -> "Name" -> n,       FrPage(p) -> "Nom" -> n,
       EnPage(p) -> "Leader" -> who,   FrPage(p) -> "Responsable" -> who,
       EnPage(p) -> "Version" -> FrPage(p),
       FrPage(p) -> "Version" -> EnPage(p)
  {
    WHERE p -> "desc_en" -> d
    LINK EnPage(p) -> "Description" -> d
  }
  {
    WHERE p -> "desc_fr" -> d
    LINK FrPage(p) -> "Description" -> d
  }
}
"#;

/// Templates for both language views.
pub fn templates() -> Result<TemplateSet> {
    let mut t = TemplateSet::new();
    t.set_collection_template(
        "EnglishRoot",
        r#"<html><body><h1>Rodin Project</h1>
<p><SFMT @Version LINK="Version française"></p>
<SFOR p IN @Project ORDER=ascend KEY=@Name LIST=ul><SFMT @p LINK=@p.Name></SFOR>
</body></html>"#,
    )?;
    t.set_collection_template(
        "FrenchRoot",
        r#"<html><body><h1>Projet Rodin</h1>
<p><SFMT @Version LINK="English version"></p>
<SFOR p IN @Projet ORDER=ascend KEY=@Nom LIST=ul><SFMT @p LINK=@p.Nom></SFOR>
</body></html>"#,
    )?;
    t.set_collection_template(
        "EnPage",
        r#"<html><body><h1><SFMT @Name></h1>
<p>Led by <SFMT @Leader></p>
<p><SFMT @Description></p>
<p><SFMT @Version LINK="en français"></p>
</body></html>"#,
    )?;
    t.set_collection_template(
        "FrPage",
        r#"<html><body><h1><SFMT @Nom></h1>
<p>Responsable : <SFMT @Responsable></p>
<p><SFMT @Description></p>
<p><SFMT @Version LINK="in English"></p>
</body></html>"#,
    )?;
    Ok(t)
}

/// Wires the bilingual system.
pub fn system(n_projects: usize, seed: u64) -> Result<Strudel> {
    let mut s = Strudel::new();
    s.add_ddl_source("catalogue", &generate_ddl(n_projects, seed));
    s.add_site_query(SITE_QUERY)?;
    *s.templates_mut() = templates()?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::Value;

    #[test]
    fn one_query_two_cross_linked_views() {
        let mut s = system(8, 21).unwrap();
        let build = s.build_site().unwrap();
        assert_eq!(build.pages_of("EnPage").len(), 8);
        assert_eq!(build.pages_of("FrPage").len(), 8);
        // Every English page cross-links its French twin and vice versa.
        let version = build.graph.universe().interner().get("Version").unwrap();
        let reader = build.graph.reader();
        for &en in &build.pages_of("EnPage") {
            let fr = reader
                .attr(en, version)
                .and_then(Value::as_node)
                .expect("cross link");
            assert_eq!(
                reader.attr(fr, version),
                Some(&Value::Node(en)),
                "symmetric cross link"
            );
        }
    }

    #[test]
    fn both_roots_render() {
        let mut s = system(5, 22).unwrap();
        let html = s.generate_site(&["EnglishRoot", "FrenchRoot"]).unwrap();
        let en = html
            .pages
            .iter()
            .find(|(k, _)| k.starts_with("englishroot"))
            .unwrap()
            .1;
        let fr = html
            .pages
            .iter()
            .find(|(k, _)| k.starts_with("frenchroot"))
            .unwrap()
            .1;
        assert!(en.contains("Rodin Project"));
        assert!(fr.contains("Projet Rodin"));
        // 2 roots + 5 en + 5 fr pages.
        assert_eq!(html.pages.len(), 12);
    }
}
