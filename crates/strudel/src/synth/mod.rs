//! Reproducible generators for the paper's workloads (§5.1).
//!
//! The paper's evaluation is experiential: it reports the sites the authors
//! built, their data sources, and the sizes of the StruQL queries and
//! template sets that defined them. We do not have AT&T's personnel
//! databases or CNN's article archive, so each workload here is a *seeded
//! synthetic generator* that produces source material **in the original
//! source formats** (CSV tables, BibTeX files, STRUDEL DDL files), so the
//! real wrapper and mediator code paths run, followed by the site-definition
//! queries and template sets at the scale the paper reports:
//!
//! * [`org`] — the AT&T Labs–Research site: "home pages of approximately
//!   400 users and pages for organizations and projects … defined by a
//!   115-line query and 17 HTML templates (380 lines)"; the external version
//!   shares the site graph and differs in five templates.
//! * [`news`] — the CNN demonstration: "a data graph containing about 300
//!   articles … defined by a 44-line query and nine templates", plus the
//!   sports-only variant whose query "only differs in two extra predicates
//!   in one where clause".
//! * [`bib`] — the personal home pages: BibTeX + a personal-data DDL file,
//!   "defined by a 48-line query and thirteen HTML templates (202 lines)".
//! * [`bilingual`] — the INRIA-Rodin site: "two views: one English and one
//!   French … cross-linked … One StruQL query defines both views and
//!   creates the links between them."

pub mod bib;
pub mod bilingual;
pub mod news;
pub mod org;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for workload generation.
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Picks one element of a slice.
pub(crate) fn pick<'a, T>(r: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[r.gen_range(0..items.len())]
}

pub(crate) const FIRST_NAMES: &[&str] = &[
    "Mary", "Dan", "Alon", "Daniela", "Jaewoo", "Norman", "Serge", "Peter", "Susan", "Hector",
    "Jennifer", "Jeff", "Laura", "Victor", "Anthony", "Sophie", "Claude", "Rick", "Divesh", "Nick",
];

pub(crate) const LAST_NAMES: &[&str] = &[
    "Fernandez",
    "Suciu",
    "Levy",
    "Florescu",
    "Kang",
    "Ramsey",
    "Abiteboul",
    "Buneman",
    "Davidson",
    "Garcia-Molina",
    "Widom",
    "Ullman",
    "Haas",
    "Vianu",
    "Bonner",
    "Cluet",
    "Delobel",
    "Hull",
    "Srivastava",
    "Koudas",
];

pub(crate) const TOPICS: &[&str] = &[
    "Semistructured Data",
    "Query Optimization",
    "Web Sites",
    "Data Integration",
    "Query Languages",
    "Programming Languages",
    "Architecture Specifications",
    "Information Retrieval",
    "Transactions",
    "Active Databases",
];

pub(crate) fn person_name(r: &mut StdRng) -> String {
    format!("{} {}", pick(r, FIRST_NAMES), pick(r, LAST_NAMES))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = org::generate(40, 7);
        let b = org::generate(40, 7);
        assert_eq!(a.people_csv, b.people_csv);
        assert_eq!(a.publications_bib, b.publications_bib);
        let c = news::generate_ddl(25, 3);
        let d = news::generate_ddl(25, 3);
        assert_eq!(c, d);
        assert_ne!(c, news::generate_ddl(25, 4));
    }
}
