//! The CNN-style news site (§5.1).
//!
//! "Our first example was a demonstration version of the CNN Web site. On
//! any day, one article may appear in various formats on multiple pages in
//! the CNN site. Because we did not have access to CNN's databases of
//! articles, we mapped their HTML pages into a data graph containing about
//! 300 articles. Our version of the CNN site is defined by a 44-line query
//! and nine templates." The sports-only variant's query "only differs in
//! two extra predicates in one where clause", and "the same HTML templates
//! are used in both sites."

use crate::synth::{person_name, pick, rng};
use crate::{Result, Strudel};
use rand::Rng;
use std::fmt::Write as _;
use strudel_template::TemplateSet;

/// The site's sections.
pub const SECTIONS: &[&str] = &[
    "world", "us", "politics", "sports", "business", "tech", "weather",
];

const SUBJECTS: &[&str] = &[
    "Elections",
    "Markets",
    "Championship",
    "Storm",
    "Summit",
    "Merger",
    "Launch",
    "Verdict",
    "Playoffs",
    "Budget",
    "Strike",
    "Discovery",
];

/// Generates `n_articles` articles as a STRUDEL DDL structured file —
/// the warehoused result of wrapping the day's HTML pages. Articles carry a
/// headline, byline, date, body text, 0–1 images, 1–2 sections, an
/// `editorial_rank` (the paper notes CNN's "order of articles … editorial
/// elements" are a primary value of the site), and 0–3 `related` article
/// references.
pub fn generate_ddl(n_articles: usize, seed: u64) -> String {
    let mut r = rng(seed);
    let mut out = String::from("collection Articles {\n  image image\n  body text\n}\n");
    for a in 0..n_articles {
        let subject = pick(&mut r, SUBJECTS);
        let section = *pick(&mut r, SECTIONS);
        let _ = writeln!(out, "object art{a} in Articles {{");
        let _ = writeln!(out, "  headline \"{subject} update no. {a}\"");
        let _ = writeln!(out, "  byline \"{}\"", person_name(&mut r));
        let _ = writeln!(out, "  date {}", 19980100 + r.gen_range(1..28i64));
        let _ = writeln!(out, "  section \"{section}\"");
        if r.gen_bool(0.25) {
            // Some articles run in a second section (irregular cardinality).
            let other = *pick(&mut r, SECTIONS);
            if other != section {
                let _ = writeln!(out, "  section \"{other}\"");
            }
        }
        let _ = writeln!(out, "  editorial_rank {}", r.gen_range(1..100i64));
        let _ = writeln!(
            out,
            "  summary \"In {section} today: {} developments.\"",
            subject.to_lowercase()
        );
        let _ = writeln!(out, "  body \"articles/art{a}.txt\"");
        if r.gen_bool(0.5) {
            let _ = writeln!(out, "  image \"images/art{a}.jpg\"");
        }
        for _ in 0..r.gen_range(0..3usize) {
            let _ = writeln!(out, "  related &art{}", r.gen_range(0..n_articles));
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// The general site-definition query (the "44-line query"): a front page,
/// one page per section, one page per article, and a summary presentation
/// of each article on its section pages.
pub const SITE_QUERY: &str = r#"
CREATE FrontPage()
COLLECT Roots(FrontPage())
{
  WHERE Articles(a), a -> l -> v
  CREATE ArticlePage(a), Summary(a)
  LINK ArticlePage(a) -> l -> v,
       Summary(a) -> l -> v,
       Summary(a) -> "Full" -> ArticlePage(a)
  {
    WHERE l = "section"
    CREATE SectionPage(v)
    LINK SectionPage(v) -> "Name" -> v,
         SectionPage(v) -> "Story" -> Summary(a),
         SectionPage(v) -> "StoryCount" -> COUNT(a),
         FrontPage() -> "Section" -> SectionPage(v)
  }
  {
    WHERE l = "related"
    LINK ArticlePage(a) -> "Related" -> ArticlePage(v)
  }
  {
    WHERE l = "editorial_rank", v <= 10
    LINK FrontPage() -> "TopStory" -> Summary(a)
  }
}
"#;

/// The sports-only variant: derived from [`SITE_QUERY`], differing in
/// exactly two extra predicates in one where clause (the paper's claim for
/// its sports-only CNN site).
pub const SPORTS_QUERY: &str = r#"
CREATE FrontPage()
COLLECT Roots(FrontPage())
{
  WHERE Articles(a), a -> l -> v, a -> "section" -> s, s = "sports"
  CREATE ArticlePage(a), Summary(a)
  LINK ArticlePage(a) -> l -> v,
       Summary(a) -> l -> v,
       Summary(a) -> "Full" -> ArticlePage(a)
  {
    WHERE l = "section"
    CREATE SectionPage(v)
    LINK SectionPage(v) -> "Name" -> v,
         SectionPage(v) -> "Story" -> Summary(a),
         SectionPage(v) -> "StoryCount" -> COUNT(a),
         FrontPage() -> "Section" -> SectionPage(v)
  }
  {
    WHERE l = "related"
    LINK ArticlePage(a) -> "Related" -> ArticlePage(v)
  }
  {
    WHERE l = "editorial_rank", v <= 10
    LINK FrontPage() -> "TopStory" -> Summary(a)
  }
}
"#;

/// Non-blank line count of [`SITE_QUERY`].
pub fn site_query_lines() -> usize {
    SITE_QUERY
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

/// The news templates (the paper's site used nine; shared by the general
/// and sports-only versions).
pub fn templates() -> Result<TemplateSet> {
    let mut t = TemplateSet::new();
    t.set_collection_template(
        "FrontPage",
        r#"<html><head><title>Newsday</title></head><body>
<h1>Newsday</h1>
<SIF @TopStory><h2>Top stories</h2>
<SFOR s IN @TopStory ORDER=ascend KEY=@editorial_rank><div class="top"><SFMT @s EMBED></div></SFOR></SIF>
<h2>Sections</h2>
<SFOR s IN @Section ORDER=ascend KEY=@Name LIST=ul><SFMT @s LINK=@s.Name></SFOR>
</body></html>"#,
    )?;
    t.set_collection_template(
        "SectionPage",
        r#"<html><body><h1><SFMT @Name></h1>
<p><SFMT @StoryCount> stories today.</p>
<SFOR s IN @Story ORDER=ascend KEY=@editorial_rank><div class="story"><SFMT @s EMBED></div></SFOR>
</body></html>"#,
    )?;
    t.set_collection_template(
        "Summary",
        r#"<h3><SFMT @Full LINK=@headline></h3>
<SIF @image><SFMT @image></SIF>
<p><SFMT @summary></p>"#,
    )?;
    t.set_collection_template(
        "ArticlePage",
        r#"<html><body><h1><SFMT @headline></h1>
<p>By <SFMT @byline> - <SFMT @date></p>
<SIF @image><SFMT @image></SIF>
<div class="body"><SFMT @body></div>
<SIF @Related><h2>Related</h2>
<SFOR x IN @Related LIST=ul><SFMT @x LINK=@x.headline></SFOR></SIF>
</body></html>"#,
    )?;
    Ok(t)
}

/// Wires a full news system over `n_articles` generated articles.
pub fn system(n_articles: usize, seed: u64, sports_only: bool) -> Result<Strudel> {
    let mut s = Strudel::new();
    s.add_ddl_source("articles", &generate_ddl(n_articles, seed));
    s.add_site_query(if sports_only {
        SPORTS_QUERY
    } else {
        SITE_QUERY
    })?;
    *s.templates_mut() = templates()?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_differ_by_two_predicates_in_one_clause() {
        // The textual diff between the general and sports queries is one
        // WHERE line gaining `a -> "section" -> s` and `s = "sports"`.
        let diff: Vec<(&str, &str)> = SITE_QUERY
            .lines()
            .zip(SPORTS_QUERY.lines())
            .filter(|(a, b)| a != b)
            .collect();
        assert_eq!(diff.len(), 1, "exactly one line differs: {diff:?}");
        assert!(diff[0].1.contains(r#"a -> "section" -> s"#));
        assert!(diff[0].1.contains(r#"s = "sports""#));
    }

    #[test]
    fn general_site_builds_all_sections() {
        let mut s = system(60, 11, false).unwrap();
        let build = s.build_site().unwrap();
        assert_eq!(build.pages_of("ArticlePage").len(), 60);
        assert!(!build.pages_of("SectionPage").is_empty());
        let html = s.generate_site(&["FrontPage"]).unwrap();
        assert!(html.pages.len() > 60);
    }

    #[test]
    fn sports_site_is_a_subset_with_same_structure() {
        let mut general = system(120, 12, false).unwrap();
        let mut sports = system(120, 12, true).unwrap();
        let g = general.build_site().unwrap();
        let s = sports.build_site().unwrap();
        assert!(s.pages_of("ArticlePage").len() < g.pages_of("ArticlePage").len());
        assert!(!s.pages_of("ArticlePage").is_empty());
        // Every sports page type also exists in the general site.
        for f in ["FrontPage", "SectionPage", "Summary", "ArticlePage"] {
            assert!(!s.pages_of(f).is_empty() || g.pages_of(f).is_empty(), "{f}");
        }
    }

    #[test]
    fn summaries_are_embedded_not_linked() {
        let mut s = system(30, 13, false).unwrap();
        let html = s.generate_site(&["FrontPage"]).unwrap();
        // Summary objects are embedded into section pages, so they are never
        // realized as stand-alone pages.
        assert!(
            !html.pages.keys().any(|k| k.starts_with("summary")),
            "{:?}",
            html.pages.keys()
        );
        let section = html
            .pages
            .iter()
            .find(|(k, _)| k.starts_with("sectionpage"))
            .unwrap();
        assert!(section.1.contains("class=\"story\""));
    }

    #[test]
    fn articles_can_appear_in_multiple_sections() {
        // An article with two sections gets embedded in two section pages —
        // "one article may appear in various formats on multiple pages".
        let ddl = generate_ddl(200, 14);
        let two_sections = ddl
            .split("object ")
            .skip(1)
            .any(|block| block.matches("section \"").count() == 2);
        assert!(two_sections, "generator should emit multi-section articles");
    }
}
