//! The AT&T Labs–Research organization site (§5.1, "our largest examples").
//!
//! "This site is typical of an organization's site: it includes home pages
//! of individual members, pages on projects, demos, research areas, and
//! technical publications. The data sources for this site are small
//! relational databases that contain personnel and organizational data,
//! structured files that contain project data, and existing HTML files."
//!
//! The generator emits the same *kinds* of sources — CSV tables for people
//! and departments, a STRUDEL DDL file for projects, BibTeX for technical
//! reports — with the same irregularities the paper calls out: "some
//! projects omitted the synopsis attribute", "not all projects … are
//! sponsored, and therefore have no value for the sponsor attribute", and
//! proprietary items that must not appear on the external site.

use crate::synth::{person_name, pick, rng, TOPICS};
use crate::{Result, Strudel};
use rand::Rng;
use std::fmt::Write as _;
use strudel_template::TemplateSet;
use strudel_wrappers::relational::{ForeignKey, Table};

/// The generated source material for one organization.
#[derive(Clone, Debug, PartialEq)]
pub struct OrgSource {
    /// `People` table: id,name,title,email,phone,room,dept.
    pub people_csv: String,
    /// `Departments` table: code,name,director.
    pub departments_csv: String,
    /// Projects as a STRUDEL DDL structured file.
    pub projects_ddl: String,
    /// Technical publications as BibTeX.
    pub publications_bib: String,
    /// Existing hand-written demo pages as `(url, html)` pairs — the
    /// paper's fifth source kind ("existing HTML files", wrapped by
    /// hand-written wrappers).
    pub demo_pages: Vec<(String, String)>,
    /// Number of members generated.
    pub n_members: usize,
}

const TITLES: &[&str] = &[
    "Researcher",
    "Senior Researcher",
    "Member of Technical Staff",
    "Postdoc",
];

/// Generates an organization with `n_members` people, `n/40 + 1`
/// departments, `~n/8` projects, and `~1.5 n` publications.
pub fn generate(n_members: usize, seed: u64) -> OrgSource {
    let mut r = rng(seed);
    let n_depts = n_members / 40 + 1;
    let n_projects = (n_members / 8).max(1);
    let n_pubs = n_members + n_members / 2;

    // People: ~1 in 40 is a director; phone present 90%, room 80%.
    let mut people_csv = String::from("id,name,title,email,phone,room,dept\n");
    let mut names = Vec::with_capacity(n_members);
    for i in 0..n_members {
        let name = person_name(&mut r);
        let title = if i < n_depts {
            "Director"
        } else {
            pick(&mut r, TITLES)
        };
        let email = format!("u{i}@research.example.com");
        let phone = if r.gen_bool(0.9) {
            format!("555-{:04}", r.gen_range(0..10000))
        } else {
            String::new()
        };
        let room = if r.gen_bool(0.8) {
            format!(
                "{}{:03}",
                pick(&mut r, &["A", "B", "C"]),
                r.gen_range(1..400)
            )
        } else {
            String::new()
        };
        let dept = format!("d{}", i % n_depts);
        let _ = writeln!(
            people_csv,
            "{i},\"{name}\",{title},{email},{phone},{room},{dept}"
        );
        names.push(name);
    }

    let mut departments_csv = String::from("code,name,director\n");
    for d in 0..n_depts {
        let _ = writeln!(
            departments_csv,
            "d{d},\"{} Research Department\",{d}",
            pick(&mut r, TOPICS)
        );
    }

    // Projects: synopsis 80%, sponsor 50%, proprietary 20%.
    let mut projects_ddl = String::from("collection Projects {\n  homepage url\n}\n");
    for p in 0..n_projects {
        let _ = writeln!(projects_ddl, "object proj{p} in Projects {{");
        let _ = writeln!(projects_ddl, "  name \"Project {}\"", pick(&mut r, TOPICS));
        if r.gen_bool(0.8) {
            let _ = writeln!(
                projects_ddl,
                "  synopsis \"Investigating {}.\"",
                pick(&mut r, TOPICS).to_lowercase()
            );
        }
        if r.gen_bool(0.5) {
            let _ = writeln!(
                projects_ddl,
                "  sponsor \"{} Foundation\"",
                pick(&mut r, &["NSF", "DARPA", "ATT", "EU"])
            );
        }
        if r.gen_bool(0.2) {
            let _ = writeln!(projects_ddl, "  proprietary true");
        }
        let _ = writeln!(
            projects_ddl,
            "  homepage \"http://research.example.com/proj{p}\""
        );
        for _ in 0..r.gen_range(1..4usize) {
            let _ = writeln!(projects_ddl, "  member_id {}", r.gen_range(0..n_members));
        }
        let _ = writeln!(projects_ddl, "}}");
    }

    // Publications: authors drawn from the staff so the site query can join
    // publications to member pages by name.
    let mut publications_bib = String::new();
    for b in 0..n_pubs {
        let year = 1990 + r.gen_range(0..9i64);
        let n_authors = r.gen_range(1..4usize);
        let authors: Vec<&str> = (0..n_authors)
            .map(|_| names[r.gen_range(0..names.len())].as_str())
            .collect();
        let kind = if r.gen_bool(0.5) {
            "article"
        } else {
            "techreport"
        };
        let _ = writeln!(publications_bib, "@{kind}{{pub{b},");
        let _ = writeln!(
            publications_bib,
            "  title = {{{} in Practice, Part {b}}},",
            pick(&mut r, TOPICS)
        );
        let _ = writeln!(
            publications_bib,
            "  author = {{{}}},",
            authors.join(" and ")
        );
        let _ = writeln!(publications_bib, "  year = {year},");
        let _ = writeln!(
            publications_bib,
            "  category = {{{}}},",
            pick(&mut r, TOPICS)
        );
        if r.gen_bool(0.15) {
            let _ = writeln!(publications_bib, "  proprietary = {{yes}},");
        }
        let _ = writeln!(publications_bib, "  postscript = {{papers/pub{b}.ps.gz}}");
        let _ = writeln!(publications_bib, "}}");
    }

    // Legacy demo pages: one hand-written HTML page per fourth project,
    // cross-linking each other — the "existing HTML files" source.
    let mut demo_pages = Vec::new();
    let n_demos = (n_projects / 4).max(1);
    for d in 0..n_demos {
        let next = (d + 1) % n_demos;
        demo_pages.push((
            format!("demo{d}.html"),
            format!(
                "<html><head><title>Demo {d}</title></head><body>\
                 <h1>Interactive demo {d}</h1>\
                 <p>Legacy demo page for project proj{d}.</p>\
                 <a href=\"demo{next}.html\">next demo</a>\
                 <img src=\"shots/demo{d}.gif\"></body></html>"
            ),
        ));
    }

    OrgSource {
        people_csv,
        departments_csv,
        projects_ddl,
        publications_bib,
        demo_pages,
        n_members,
    }
}

/// The internal site-definition query — the reproduction of the "115-line
/// query" defining AT&T's internal research site. Member, department,
/// project, and publication pages, plus index pages and by-year publication
/// pages, all cross-linked.
pub const SITE_QUERY: &str = r#"
// ---- roots and index pages ------------------------------------------
CREATE RootPage(), PeopleIndex(), DeptIndex(), ProjectIndex(), PubIndex()
LINK RootPage() -> "People"   -> PeopleIndex(),
     RootPage() -> "Depts"    -> DeptIndex(),
     RootPage() -> "Projects" -> ProjectIndex(),
     RootPage() -> "Pubs"     -> PubIndex()
COLLECT Roots(RootPage())

// ---- one home page per member, copying all attributes ----------------
{
  WHERE People(m), m -> l -> v
  CREATE MemberPage(m)
  LINK MemberPage(m) -> l -> v,
       PeopleIndex() -> "Member" -> MemberPage(m)
  {
    // the dept column is a foreign key: v is the department node
    WHERE l = "dept"
    CREATE DeptPage(v)
    LINK MemberPage(m) -> "Department" -> DeptPage(v),
         DeptPage(v) -> "Member" -> MemberPage(m)
  }
}

// ---- one page per department, copying all attributes -----------------
{
  WHERE Departments(d), d -> l -> v
  CREATE DeptPage(d)
  LINK DeptPage(d) -> l -> v,
       DeptIndex() -> "Dept" -> DeptPage(d)
  {
    WHERE l = "director"
    CREATE MemberPage(v)
    LINK DeptPage(d) -> "Director" -> MemberPage(v)
  }
}

// ---- one page per project, copying all attributes --------------------
{
  WHERE Projects(p), p -> l -> v
  CREATE ProjectPage(p)
  LINK ProjectPage(p) -> l -> v,
       ProjectIndex() -> "Project" -> ProjectPage(p)
}

// ---- project membership joins People.id with Projects.member_id ------
{
  WHERE Projects(p), p -> "member_id" -> i, People(m), m -> "id" -> i
  CREATE ProjectPage(p), MemberPage(m)
  LINK ProjectPage(p) -> "Member"  -> MemberPage(m),
       MemberPage(m)  -> "Project" -> ProjectPage(p)
}

// ---- one page per publication, plus by-year indexes ------------------
{
  WHERE Publications(x), x -> l -> v
  CREATE PubPage(x)
  LINK PubPage(x) -> l -> v,
       PubIndex() -> "Pub" -> PubPage(x)
  {
    WHERE l = "year"
    CREATE PubYearPage(v)
    LINK PubYearPage(v) -> "Year" -> v,
         PubYearPage(v) -> "Pub"  -> PubPage(x),
         PubIndex() -> "ByYear" -> PubYearPage(v)
  }
  {
    WHERE l = "category"
    CREATE CategoryPage(v)
    LINK CategoryPage(v) -> "Name" -> v,
         CategoryPage(v) -> "Pub"  -> PubPage(x),
         PubIndex() -> "ByCategory" -> CategoryPage(v)
  }
}

// ---- one page per legacy demo (wrapped HTML), linked from its project --
{
  WHERE Pages(d), d -> "title" -> t
  CREATE DemoPage(d)
  LINK DemoPage(d) -> "Title" -> t,
       ProjectIndex() -> "Demo" -> DemoPage(d)
  {
    WHERE d -> "heading" -> h
    LINK DemoPage(d) -> "Heading" -> h
  }
}

// ---- author joins: publications link to member home pages ------------
{
  WHERE Publications(x), x -> "author" -> a, People(m), m -> "name" -> a
  CREATE PubPage(x), MemberPage(m)
  LINK MemberPage(m) -> "Publication" -> PubPage(x),
       PubPage(x) -> "AuthorPage" -> MemberPage(m)
}
"#;

/// Non-blank, non-comment line count of [`SITE_QUERY`] (the figure
/// EXPERIMENTS.md compares against the paper's "115-line query").
pub fn site_query_lines() -> usize {
    SITE_QUERY
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

/// The internal template set (one template per page type plus shared
/// indexes). Returns the set and the number of template definitions.
pub fn templates_internal() -> Result<TemplateSet> {
    let mut t = TemplateSet::new();
    t.set_collection_template(
        "RootPage",
        r#"<html><head><title>Research - Internal</title></head><body>
<h1>Research Labs (internal)</h1>
<ul>
<li><SFMT @People LINK="People">
<li><SFMT @Depts LINK="Departments">
<li><SFMT @Projects LINK="Projects">
<li><SFMT @Pubs LINK="Publications">
</ul>
</body></html>"#,
    )?;
    t.set_collection_template(
        "PeopleIndex",
        r#"<html><body><h1>People</h1>
<SFOR m IN @Member ORDER=ascend KEY=@name LIST=ul><SFMT @m LINK=@m.name></SFOR>
</body></html>"#,
    )?;
    t.set_collection_template(
        "DeptIndex",
        r#"<html><body><h1>Departments</h1>
<SFOR d IN @Dept LIST=ul><SFMT @d LINK=@d.name></SFOR>
</body></html>"#,
    )?;
    t.set_collection_template(
        "ProjectIndex",
        r#"<html><body><h1>Projects</h1>
<SFOR p IN @Project ORDER=ascend KEY=@name LIST=ul><SFMT @p LINK=@p.name></SFOR>
<SIF @Demo><h2>Demos</h2>
<SFOR d IN @Demo ORDER=ascend KEY=@Title LIST=ul><SFMT @d LINK=@d.Title></SFOR></SIF>
</body></html>"#,
    )?;
    t.set_collection_template(
        "PubIndex",
        r#"<html><body><h1>Technical Publications</h1>
<h2>By year</h2>
<SFOR y IN @ByYear ORDER=descend KEY=@Year LIST=ul><SFMT @y LINK=@y.Year></SFOR>
<h2>By category</h2>
<SFOR c IN @ByCategory ORDER=ascend KEY=@Name LIST=ul><SFMT @c LINK=@c.Name></SFOR>
</body></html>"#,
    )?;
    t.set_collection_template(
        "MemberPage",
        r#"<html><body><h1><SFMT @name></h1>
<p><SFMT @title></p>
<p>Email: <SFMT @email>
<SIF @phone> / Phone: <SFMT @phone></SIF>
<SIF @room> / Room: <SFMT @room></SIF></p>
<p>Department: <SFMT @Department LINK=@Department.name></p>
<SIF @Project><h2>Projects</h2><SFOR p IN @Project LIST=ul><SFMT @p LINK=@p.name></SFOR></SIF>
<SIF @Publication><h2>Publications</h2>
<SFOR x IN @Publication ORDER=descend KEY=@year LIST=ul><SFMT @x LINK=@x.title></SFOR></SIF>
</body></html>"#,
    )?;
    t.set_collection_template(
        "DeptPage",
        r#"<html><body><h1><SFMT @name></h1>
<p>Director: <SFMT @Director LINK=@Director.name></p>
<h2>Members</h2>
<SFOR m IN @Member ORDER=ascend KEY=@name LIST=ul><SFMT @m LINK=@m.name></SFOR>
</body></html>"#,
    )?;
    t.set_collection_template(
        "ProjectPage",
        r#"<html><body><h1><SFMT @name></h1>
<SIF @proprietary><p><b>PROPRIETARY - internal use only</b></p></SIF>
<SIF @synopsis><p><SFMT @synopsis></p><SELSE><p>(no synopsis)</p></SIF>
<SIF @sponsor><p>Sponsored by <SFMT @sponsor></p></SIF>
<p><SFMT @homepage></p>
<h2>Members</h2>
<SFOR m IN @Member LIST=ul><SFMT @m LINK=@m.name></SFOR>
</body></html>"#,
    )?;
    t.set_collection_template(
        "PubPage",
        r#"<html><body>
<h1><SFMT @title></h1>
<SIF @proprietary><p><b>AT&amp;T proprietary</b></p></SIF>
<p>By <SFMT @author ALL DELIM=", "> (<SFMT @year>)</p>
<p><SFMT @postscript LINK="PostScript"></p>
<SIF @AuthorPage><p>Local authors: <SFOR a IN @AuthorPage DELIM=", "><SFMT @a LINK=@a.name></SFOR></p></SIF>
</body></html>"#,
    )?;
    t.set_collection_template(
        "DemoPage",
        r#"<html><body><h1><SFMT @Title></h1>
<SIF @Heading><p><SFMT @Heading></p></SIF>
<p>(wrapped legacy demo page)</p>
</body></html>"#,
    )?;
    t.set_collection_template(
        "PubYearPage",
        r#"<html><body><h1>Publications from <SFMT @Year></h1>
<SFOR x IN @Pub ORDER=ascend KEY=@title LIST=ul><SFMT @x LINK=@x.title></SFOR>
</body></html>"#,
    )?;
    t.set_collection_template(
        "CategoryPage",
        r#"<html><body><h1>Publications on <SFMT @Name></h1>
<SFOR x IN @Pub ORDER=ascend KEY=@title LIST=ul><SFMT @x LINK=@x.title></SFOR>
</body></html>"#,
    )?;
    Ok(t)
}

/// The external template set: the same site graph, with five templates
/// replaced to exclude proprietary and personal information — "only five
/// HTML template files differ for the external site and these either
/// exclude or reformat information that cannot be viewed externally."
pub fn templates_external() -> Result<TemplateSet> {
    let mut t = templates_internal()?;
    // 1. Root drops the internal banner.
    t.set_collection_template(
        "RootPage",
        r#"<html><head><title>Research</title></head><body>
<h1>Research Labs</h1>
<ul>
<li><SFMT @People LINK="People">
<li><SFMT @Projects LINK="Projects">
<li><SFMT @Pubs LINK="Publications">
</ul>
</body></html>"#,
    )?;
    // 2. Member pages hide phone and room.
    t.set_collection_template(
        "MemberPage",
        r#"<html><body><h1><SFMT @name></h1>
<p><SFMT @title></p>
<p>Email: <SFMT @email></p>
<SIF @Project><h2>Projects</h2><SFOR p IN @Project LIST=ul><SFMT @p LINK=@p.name></SFOR></SIF>
<SIF @Publication><h2>Publications</h2>
<SFOR x IN @Publication ORDER=descend KEY=@year LIST=ul><SFMT @x LINK=@x.title></SFOR></SIF>
</body></html>"#,
    )?;
    // 3. Project pages suppress proprietary projects' details and sponsors.
    t.set_collection_template(
        "ProjectPage",
        r#"<html><body><h1><SFMT @name></h1>
<SIF @proprietary><p>Details of this project are not public.</p>
<SELSE><SIF @synopsis><p><SFMT @synopsis></p></SIF>
<p><SFMT @homepage></p>
<h2>Members</h2>
<SFOR m IN @Member LIST=ul><SFMT @m LINK=@m.name></SFOR></SIF>
</body></html>"#,
    )?;
    // 4. Publication pages suppress proprietary papers.
    t.set_collection_template(
        "PubPage",
        r#"<html><body>
<SIF @proprietary><h1>Restricted publication</h1><p>Contact the authors.</p>
<SELSE><h1><SFMT @title></h1>
<p>By <SFMT @author ALL DELIM=", "> (<SFMT @year>)</p>
<p><SFMT @postscript LINK="PostScript"></p></SIF>
</body></html>"#,
    )?;
    // 5. Department pages are not published externally at all.
    t.set_collection_template(
        "DeptPage",
        r#"<html><body><h1><SFMT @name></h1><p>Organizational details are internal.</p></body></html>"#,
    )?;
    Ok(t)
}

/// Number of templates in the internal set.
pub fn template_count() -> usize {
    12
}

/// Wires a full [`Strudel`] system for the organization: four sources, the
/// site query, and the internal templates.
pub fn system(src: &OrgSource) -> Result<Strudel> {
    let mut s = Strudel::new();
    let people = Table::from_csv("People", &src.people_csv)?;
    let depts = Table::from_csv("Departments", &src.departments_csv)?;
    let fks = vec![
        ForeignKey {
            table: "People".into(),
            column: "dept".into(),
            target_table: "Departments".into(),
            target_key: "code".into(),
        },
        ForeignKey {
            table: "Departments".into(),
            column: "director".into(),
            target_table: "People".into(),
            target_key: "id".into(),
        },
    ];
    s.add_csv_source("personnel", vec![people, depts], fks);
    s.add_ddl_source("projects", &src.projects_ddl);
    s.add_bibtex_source("publications", &src.publications_bib);
    s.add_html_source("demos", src.demo_pages.clone());
    s.add_site_query(SITE_QUERY)?;
    *s.templates_mut() = templates_internal()?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_hits_requested_scale() {
        let src = generate(80, 1);
        assert_eq!(src.people_csv.lines().count(), 81); // header + 80
        assert_eq!(src.n_members, 80);
        assert!(src.publications_bib.matches("@").count() >= 80);
    }

    #[test]
    fn site_query_is_paper_scale() {
        let lines = site_query_lines();
        assert!(
            lines >= 60,
            "site query should be paper-scale, got {lines} lines"
        );
    }

    #[test]
    fn irregularities_present() {
        let src = generate(200, 2);
        // Some people lack phones; some projects lack synopses/sponsors.
        assert!(
            src.people_csv.lines().any(|l| l.contains(",,")),
            "missing attributes expected"
        );
        assert!(src.projects_ddl.contains("synopsis"));
        let blocks: Vec<&str> = src.projects_ddl.split("object ").skip(1).collect();
        assert!(
            blocks.iter().any(|b| !b.contains("sponsor")),
            "unsponsored projects expected"
        );
    }

    #[test]
    fn end_to_end_internal_site() {
        let src = generate(40, 3);
        let mut s = system(&src).unwrap();
        let build = s.build_site().unwrap();
        assert_eq!(build.pages_of("MemberPage").len(), 40);
        assert_eq!(build.pages_of("RootPage").len(), 1);
        assert!(!build.pages_of("ProjectPage").is_empty());
        assert!(!build.pages_of("PubYearPage").is_empty());
        let html = s.generate_site(&["RootPage"]).unwrap();
        assert!(html.pages.len() > 40, "site has {} pages", html.pages.len());
    }

    #[test]
    fn external_site_reuses_site_graph() {
        let src = generate(30, 4);
        let mut s = system(&src).unwrap();
        let internal = s.generate_site(&["RootPage"]).unwrap();
        *s.templates_mut() = templates_external().unwrap();
        let external = s.generate_site(&["RootPage"]).unwrap();
        // Same site graph; the reachable page set may shrink slightly
        // because external templates drop some links (e.g. members listed
        // on department pages).
        assert!(external.pages.len() <= internal.pages.len());
        assert!(
            external.pages.len() + 8 >= internal.pages.len(),
            "{} vs {}",
            external.pages.len(),
            internal.pages.len()
        );
        // Internal member pages show phone numbers (when the member has
        // one — 90% do, so some page in a 30-member org will).
        assert!(
            internal
                .pages
                .iter()
                .any(|(k, v)| k.starts_with("memberpage") && v.contains("Phone:")),
            "internal site should expose phones"
        );
        // External member pages never show phone numbers.
        for (k, v) in &external.pages {
            if k.starts_with("memberpage") {
                assert!(!v.contains("Phone:"), "{k} leaks phone");
            }
        }
    }
}
