//! URL scheme for click-time pages, and the HTML the server renders.
//!
//! `/` lists the precomputed roots; `/page/<Skolem>/<arg>…` shows one
//! logical page, with the Skolem name percent-encoded and the arguments
//! encoded by [`encode_value`] (`n<oid>` for nodes, `i<int>`,
//! `s<urlencoded-string>`, …).

use strudel_graph::{FileKind, Oid, Value};
use strudel_site::{OutLink, PageRef, Target};

/// Encodes a page reference as a URL path.
pub fn page_url(p: &PageRef) -> String {
    let mut url = format!("/page/{}", urlencode(&p.skolem));
    for a in &p.args {
        url.push('/');
        url.push_str(&encode_value(a));
    }
    url
}

/// Parses a `/page/…` URL path back to a page reference (the inverse of
/// [`page_url`]). Returns `None` for anything malformed.
pub fn parse_page_url(path: &str) -> Option<PageRef> {
    let rest = path.strip_prefix("/page/")?;
    let mut parts = rest.split('/');
    let skolem = urldecode(parts.next()?)?;
    if skolem.is_empty() {
        return None;
    }
    let args: Option<Vec<Value>> = parts.map(decode_value).collect();
    Some(PageRef {
        skolem,
        args: args?,
    })
}

/// Encodes one value as a URL path segment.
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Node(n) => format!("n{}", n.0),
        Value::Int(i) => format!("i{i}"),
        Value::Bool(b) => format!("b{b}"),
        Value::Float(f) => format!("f{f}"),
        Value::Str(s) => format!("s{}", urlencode(s)),
        Value::Url(s) => format!("u{}", urlencode(s)),
        Value::File(k, s) => format!("F{}~{}", k.keyword(), urlencode(s)),
    }
}

/// Decodes a path segment back to a value.
pub fn decode_value(s: &str) -> Option<Value> {
    if s.is_empty() {
        return None;
    }
    let (tag, rest) = s.split_at(1);
    Some(match tag {
        "n" => Value::Node(Oid(rest.parse().ok()?)),
        "i" => Value::Int(rest.parse().ok()?),
        "b" => Value::Bool(rest.parse().ok()?),
        "f" => Value::Float(rest.parse().ok()?),
        "s" => Value::str(urldecode(rest)?),
        "u" => Value::url(urldecode(rest)?),
        "F" => {
            let (kind, path) = rest.split_once('~')?;
            Value::file(FileKind::from_keyword(kind)?, &urldecode(path)?)
        }
        _ => return None,
    })
}

pub(crate) fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

pub(crate) fn urldecode(s: &str) -> Option<String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// HTML-escapes text, including the quote characters so escaped text is
/// safe inside attribute values too.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn render_links(title: &str, links: &[OutLink]) -> String {
    let mut html = format!("<html><body><h1>{}</h1><table>", escape(title));
    for l in links {
        let target = match &l.target {
            Target::Page(p) => {
                format!("<a href=\"{}\">{}</a>", page_url(p), escape(&p.to_string()))
            }
            Target::Value(v) => escape(&v.to_string()),
        };
        html.push_str(&format!(
            "<tr><td><b>{}</b></td><td>{target}</td></tr>",
            escape(&l.label)
        ));
    }
    html.push_str("</table><p><a href=\"/\">roots</a></p></body></html>");
    html
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_encoding_roundtrips() {
        for v in [
            Value::Node(Oid(42)),
            Value::Int(-7),
            Value::Bool(true),
            Value::Float(2.5),
            Value::str("hello world & more"),
            Value::url("http://x/y?z=1"),
            Value::file(FileKind::PostScript, "papers/a b.ps"),
        ] {
            let encoded = encode_value(&v);
            assert_eq!(decode_value(&encoded), Some(v.clone()), "{encoded}");
        }
        assert_eq!(decode_value(""), None);
        assert_eq!(decode_value("zzz"), None);
        assert_eq!(decode_value("n-not-a-number"), None);
    }

    #[test]
    fn page_urls_are_parseable_paths() {
        let p = PageRef {
            skolem: "YearPage".into(),
            args: vec![Value::Int(1997)],
        };
        assert_eq!(page_url(&p), "/page/YearPage/i1997");
        assert_eq!(parse_page_url("/page/YearPage/i1997"), Some(p));
    }

    #[test]
    fn page_urls_percent_encode_the_skolem_segment() {
        // Skolem names normally look like identifiers, but nothing in the
        // query language forbids exotic ones; the URL must not break.
        for skolem in ["Year Page", "A/B", "naïve", "q?a=1&b=2", "x\"y'"] {
            let p = PageRef {
                skolem: skolem.to_string(),
                args: vec![Value::Int(3), Value::str("a b/c%d")],
            };
            let url = page_url(&p);
            let tail = &url["/page/".len()..];
            let encoded_skolem = tail.split('/').next().unwrap();
            assert!(
                encoded_skolem
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'%')),
                "unencoded byte in {url}"
            );
            assert_eq!(parse_page_url(&url), Some(p), "{url}");
        }
        assert_eq!(parse_page_url("/page/"), None);
        assert_eq!(parse_page_url("/page/%zz"), None);
        assert_eq!(parse_page_url("/elsewhere"), None);
    }

    #[test]
    fn escape_covers_quotes() {
        assert_eq!(
            escape(r#"<a href="x">&'quoted'</a>"#),
            "&lt;a href=&quot;x&quot;&gt;&amp;&#39;quoted&#39;&lt;/a&gt;"
        );
    }
}
