//! The threaded serving mode: the original blocking worker pool, kept as a
//! fallback (`--threaded`, [`ServeMode::Threaded`]) and as the simplest
//! possible reference for the event-driven mode's behavior.
//!
//! One connection is one request: the handler reads a head under a
//! *whole-request* deadline, answers, and closes. The deadline is computed
//! once per connection and each socket read gets only the remaining slice
//! of it — the old per-read timeout reset let a client dribbling one byte
//! per almost-timeout hold a worker for hours (slow loris); now the total
//! wait from first byte to head completion is bounded by
//! [`ServerConfig::request_timeout`] no matter how the bytes arrive.
//!
//! [`ServeMode::Threaded`]: super::ServeMode::Threaded
//! [`ServerConfig::request_timeout`]: super::ServerConfig::request_timeout

use super::http::{self, AcceptBackoff, Method, Parsed};
use super::Server;
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use strudel_obs::trace;

/// Runs the threaded serving mode. See [`Server::serve`] for the
/// `max_conns` contract.
pub(super) fn run(server: &Server<'_>, max_conns: Option<usize>) -> crate::error::Result<()> {
    let io_err = crate::error::StrudelError::Io;
    // Poll accept so the acceptor can notice `/quit` promptly.
    server.listener.set_nonblocking(true).map_err(io_err)?;
    let shutdown = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Mutex::new(rx);
    let workers = server.config.threads.max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Take the receiver lock only to pull one connection.
                let next = rx.lock().recv();
                match next {
                    Ok(stream) => handle_connection(server, stream, &shutdown),
                    Err(_) => break, // acceptor gone, queue drained
                }
            });
        }
        let mut dispatched = 0usize;
        let mut backoff = AcceptBackoff::new();
        while !shutdown.load(Ordering::Acquire) && max_conns.is_none_or(|m| dispatched < m) {
            match server.listener.accept() {
                Ok((stream, _)) => {
                    backoff.on_success();
                    dispatched += 1;
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    // The old `Err(_) => {}` re-entered accept immediately:
                    // under persistent errors (EMFILE) that busy-spins at
                    // 100% CPU. Count it and back off exponentially.
                    server.metrics.accept_errors.inc();
                    std::thread::sleep(backoff.on_error());
                }
            }
        }
        drop(tx); // lets idle workers exit once the queue drains
    });
    server.listener.set_nonblocking(false).map_err(io_err)?;
    Ok(())
}

/// Outcome of reading one request head off a blocking socket.
enum HeadRead {
    Request(http::Request),
    /// The peer sent garbage, or closed mid-head.
    Malformed,
    /// The head exceeded the configured size cap.
    TooLarge,
    /// The whole-request deadline passed before the head completed.
    TimedOut,
    /// The peer opened and closed without sending a byte, or the socket
    /// broke before any byte arrived: nothing to answer.
    Silent,
    /// The socket broke mid-request; no point responding.
    Broken,
}

/// Reads until a complete head parses, a size cap, EOF, or the
/// whole-request deadline. A request is never acted upon from a partial
/// read; short reads keep going, but only within the one deadline.
fn read_request_head(stream: &mut TcpStream, deadline: Instant, max_bytes: usize) -> HeadRead {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        match http::parse_request(&buf) {
            Parsed::Request(_, consumed) if consumed > max_bytes => return HeadRead::TooLarge,
            Parsed::Request(req, _) => return HeadRead::Request(req),
            Parsed::Malformed => return HeadRead::Malformed,
            Parsed::Incomplete => {}
        }
        if buf.len() > max_bytes {
            return HeadRead::TooLarge;
        }
        // Only the remaining slice of the deadline, never a fresh timeout.
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() || stream.set_read_timeout(Some(remaining)).is_err() {
            return HeadRead::TimedOut;
        }
        match stream.read(&mut chunk) {
            Ok(0) if buf.is_empty() => return HeadRead::Silent,
            Ok(0) => return HeadRead::Malformed,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return HeadRead::TimedOut;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) if buf.is_empty() => return HeadRead::Silent,
            Err(_) => return HeadRead::Broken,
        }
    }
}

/// Finishes an errored connection without a TCP reset: half-closes the
/// write side, then drains whatever the peer already sent so the kernel
/// does not turn our close into RST while response bytes are in flight.
fn linger_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str, head_only: bool) {
    let bytes = http::encode_response(status, content_type, body, false, head_only);
    let _ = stream.write_all(&bytes);
}

fn handle_connection(server: &Server<'_>, mut stream: TcpStream, shutdown: &AtomicBool) {
    let start = Instant::now();
    let deadline = start + server.config.request_timeout;
    // The stream may inherit the listener's non-blocking mode on some
    // platforms; request handling is blocking with socket timeouts.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(server.config.request_timeout));

    let mut root = trace::begin_request("request");
    let req = match read_request_head(&mut stream, deadline, server.config.max_request_bytes) {
        HeadRead::Request(req) => req,
        HeadRead::Malformed => {
            respond(
                &mut stream,
                "400 Bad Request",
                http::CT_HTML,
                "<html><body>malformed request</body></html>",
                false,
            );
            server.metrics.record(start.elapsed(), true);
            if let Some(mut r) = root.take() {
                r.attr_u64("status", 400);
                r.finish();
            }
            return;
        }
        HeadRead::TooLarge => {
            respond(
                &mut stream,
                "431 Request Header Fields Too Large",
                http::CT_HTML,
                "<html><body>request too large</body></html>",
                false,
            );
            linger_close(&mut stream);
            server.metrics.record(start.elapsed(), true);
            if let Some(mut r) = root.take() {
                r.attr_u64("status", 431);
                r.finish();
            }
            return;
        }
        HeadRead::TimedOut => {
            respond(
                &mut stream,
                "408 Request Timeout",
                http::CT_HTML,
                "<html><body>request timeout</body></html>",
                false,
            );
            server.metrics.record(start.elapsed(), true);
            if let Some(mut r) = root.take() {
                r.attr_u64("status", 408);
                r.finish();
            }
            return;
        }
        HeadRead::Silent => {
            // Port scans and health probes open and close without a byte;
            // answering 400 and counting an error skewed the error rate.
            server.metrics.aborted.inc();
            return;
        }
        HeadRead::Broken => return,
    };

    if req.has_body {
        respond(
            &mut stream,
            "400 Bad Request",
            http::CT_HTML,
            "<html><body>request bodies are not supported</body></html>",
            false,
        );
        server.metrics.record(start.elapsed(), true);
        if let Some(mut r) = root.take() {
            r.attr_text("path", &req.path);
            r.attr_u64("status", 400);
            r.finish();
        }
        return;
    }
    let trace_ctx = root.as_mut().map(|r| {
        r.attr_text("path", &req.path);
        let ctx = r.ctx();
        trace::record_span(
            &ctx,
            "serve.parse",
            trace::Layer::Serve,
            r.start_ns(),
            trace::now_ns(),
            &[],
        );
        ctx
    });
    let _enter = trace_ctx.as_ref().map(trace::enter);
    let mut hspan = trace::span("serve.handle", trace::Layer::Serve);
    let (status, content_type, body) = server.route_request(&req, shutdown);
    let is_error = !status.starts_with('2');
    if hspan.is_live() {
        let code = status
            .split(' ')
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        hspan.attr_u64("status", code);
        hspan.attr_u64("bytes", body.len() as u64);
        if let Some(r) = root.as_mut() {
            r.attr_u64("status", code);
        }
    }
    drop(hspan);
    let write_start = if root.is_some() { trace::now_ns() } else { 0 };
    respond(
        &mut stream,
        &status,
        content_type,
        &body,
        req.method == Method::Head,
    );
    server.metrics.record(start.elapsed(), is_error);
    drop(_enter);
    if let Some(r) = root.take() {
        let ctx = r.ctx();
        trace::record_span(
            &ctx,
            "serve.write",
            trace::Layer::Serve,
            write_start,
            trace::now_ns(),
            &[("bytes", trace::AttrValue::U64(body.len() as u64))],
        );
        r.finish();
    }
}
