//! Serving a dynamically evaluated site over HTTP (§6).
//!
//! "In practice, dynamic generation is supported by often large groups of
//! loosely related CGI programs. Supporting dynamic evaluation would
//! eliminate writing such programs by hand." This module is that support: a
//! dependency-free HTTP/1.1 server whose pages are computed at click time
//! by [`DynamicSite::expand`] — only the roots are precomputed, and the
//! evaluator's shared cache answers repeat clicks from any worker thread.
//!
//! The serving tier has two modes (see [`ServeMode`]):
//!
//! * **Event** (default): one readiness loop (`event`) owns every socket
//!   through a vendored epoll stand-in, driving non-blocking connections
//!   with HTTP/1.1 keep-alive, request pipelining, whole-request deadlines,
//!   and admission control; page expansion runs on a scoped worker pool
//!   over the shared [`DynamicSite`].
//! * **Threaded**: the original blocking pool (`threaded`) — one worker
//!   owns one connection for one request, then closes it.
//!
//! Both modes share the HTTP framing (`http`), the router (`router`), the
//! URL scheme (`url`), and the metrics (`metrics`), so `/`, `/stats`,
//! `/metrics`, `/page/…`, and `/quit` behave identically; the modes differ
//! only in connection lifecycle.

mod conn;
mod event;
mod http;
mod metrics;
mod router;
mod threaded;
mod url;

pub use self::metrics::ServeStats;
pub use self::url::{decode_value, encode_value, page_url, parse_page_url};

use crate::error::Result;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use strudel_site::{Delta, DynamicSite, PageRef};

/// How the server drives its connections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeMode {
    /// Event-driven: one readiness loop multiplexes every socket with
    /// keep-alive, pipelining, and admission control; workers only expand
    /// pages.
    #[default]
    Event,
    /// Thread-per-connection: a blocking worker reads one request, answers
    /// it, and closes the connection (no keep-alive).
    Threaded,
}

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads answering requests (minimum 1).
    pub threads: usize,
    /// Whole-request deadline: the time allowed from a request's first
    /// byte until its head completes (and, in threaded mode, the socket
    /// write timeout).
    pub request_timeout: Duration,
    /// How long an idle keep-alive connection may rest between requests
    /// before the server closes it (event mode only).
    pub keepalive_timeout: Duration,
    /// Maximum accepted request-head size in bytes.
    pub max_request_bytes: usize,
    /// Admission control: connections beyond this many already open are
    /// answered with a static 503 and closed (event mode only).
    pub max_connections: usize,
    /// Connection-handling mode.
    pub mode: ServeMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            request_timeout: Duration::from_secs(5),
            keepalive_timeout: Duration::from_secs(5),
            max_request_bytes: 16 * 1024,
            max_connections: 1024,
            mode: ServeMode::Event,
        }
    }
}

/// A running click-time server over one shared [`DynamicSite`].
pub struct Server<'g> {
    site: DynamicSite<'g>,
    listener: TcpListener,
    roots: Vec<PageRef>,
    config: ServerConfig,
    metrics: metrics::Metrics,
    started: Instant,
    /// Readiness for `/healthz`: flips true once [`Server::serve`] enters
    /// its accept loop (site built, store open, listener bound). Liveness
    /// is implied by answering at all.
    ready: AtomicBool,
}

impl<'g> Server<'g> {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with the
    /// default configuration.
    pub fn bind(site: DynamicSite<'g>, addr: &str) -> std::io::Result<Self> {
        Self::bind_with(site, addr, ServerConfig::default())
    }

    /// Binds `addr` with an explicit configuration.
    pub fn bind_with(
        site: DynamicSite<'g>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let roots = site.roots();
        Ok(Server {
            site,
            listener,
            roots,
            config,
            metrics: metrics::Metrics::default(),
            started: Instant::now(),
            ready: AtomicBool::new(false),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared evaluator (for cache configuration checks and stats).
    pub fn site(&self) -> &DynamicSite<'g> {
        &self.site
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Request counters so far.
    pub fn stats(&self) -> ServeStats {
        self.metrics.snapshot()
    }

    /// Notifies the server of a data-graph change: forwards `delta` to the
    /// shared evaluator's cache invalidation and returns the number of
    /// cached expansions dropped. Insertions and removals are handled
    /// symmetrically; a removal delta may be delivered before or after the
    /// underlying graph mutation (seed matching needs only the interner,
    /// not the edge's presence). The next request for an affected page
    /// recomputes it; untouched entries keep answering from the warm cache
    /// (the `invalidated` counter is visible under `/stats`).
    pub fn notify(&self, delta: &Delta) -> u64 {
        self.site.invalidate(delta)
    }

    /// Serves until `max_conns` connections have been accepted (`None` =
    /// forever) or a request for `/quit` arrives (always honored, so tests
    /// and scripts can stop the server remotely). In-flight requests
    /// finish before this returns. In event mode one accepted keep-alive
    /// connection may carry many requests; in threaded mode a connection
    /// is exactly one request.
    pub fn serve(&self, max_conns: Option<usize>) -> Result<()> {
        self.ready.store(true, Ordering::Release);
        let result = match self.config.mode {
            ServeMode::Event => event::run(self, max_conns),
            ServeMode::Threaded => threaded::run(self, max_conns),
        };
        self.ready.store(false, Ordering::Release);
        result
    }

    /// Whether the server is ready to answer page requests (the accept
    /// loop is running). `/healthz` reports this.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use strudel_graph::Value;
    use strudel_site::CacheConfig;
    use strudel_struql::EvalOptions;

    fn demo_site() -> (strudel_graph::Graph, strudel_struql::Query) {
        let data = strudel_graph::ddl::parse(
            r#"
object a1 in Articles { headline "one" section "world" }
object a2 in Articles { headline "two" section "world" }
"#,
        )
        .unwrap();
        let query = strudel_struql::parse_query(
            r#"CREATE FrontPage()
               { WHERE Articles(a), a -> l -> v
                 CREATE Page(a)
                 LINK Page(a) -> l -> v, FrontPage() -> "Story" -> Page(a) }"#,
        )
        .unwrap();
        (data, query)
    }

    fn fetch(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(
            format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        buf
    }

    /// Runs one test body against a server in each mode: the routing and
    /// framing behavior must not depend on the connection layer.
    fn in_both_modes(test: impl Fn(ServeMode)) {
        test(ServeMode::Event);
        test(ServeMode::Threaded);
    }

    #[test]
    fn serves_roots_pages_and_errors_over_tcp() {
        in_both_modes(|mode| {
            let (data, query) = demo_site();
            let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
            let config = ServerConfig {
                mode,
                ..ServerConfig::default()
            };
            let server = Server::bind_with(site, "127.0.0.1:0", config).unwrap();
            let addr = server.addr().unwrap();

            let client = std::thread::spawn(move || {
                let root = fetch(addr, "/");
                assert!(root.contains("FrontPage"), "{root}");
                let front = fetch(addr, "/page/FrontPage");
                assert!(front.contains("Story"), "{front}");
                assert!(front.contains("/page/Page/n"), "{front}");
                // Follow a story link.
                let href = front
                    .split("href=\"/page/Page/")
                    .nth(1)
                    .map(|s| format!("/page/Page/{}", &s[..s.find('"').unwrap()]))
                    .expect("a story href");
                let story = fetch(addr, &href);
                assert!(story.contains("headline"), "{story}");
                assert!(fetch(addr, "/page/Bad/%%%").contains("400"));
                assert!(fetch(addr, "/nope").contains("404"));
                let stats = fetch(addr, "/stats");
                assert!(stats.contains("\"requests\""), "{stats}");
                assert!(stats.contains("\"p50\""), "{stats}");
                assert!(stats.contains("\"hits\""), "{stats}");
                let _ = fetch(addr, "/quit");
            });

            server.serve(None).unwrap();
            client.join().unwrap();
            let stats = server.stats();
            assert!(stats.requests >= 7, "{mode:?}: {stats:?}");
            assert!(stats.errors >= 2, "{mode:?}: {stats:?}"); // the 400 and the 404
        });
    }

    /// `/metrics` over a live server: well-formed Prometheus text
    /// exposition whose counters agree with the traffic just sent.
    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (data, query) = demo_site();
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        let server = Server::bind(site, "127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();

        let client = std::thread::spawn(move || {
            assert!(fetch(addr, "/page/FrontPage").contains("Story"));
            assert!(fetch(addr, "/page/FrontPage").contains("Story")); // cache hit
            assert!(fetch(addr, "/nope").contains("404"));

            let resp = fetch(addr, "/metrics");
            let (head, body) = resp.split_once("\r\n\r\n").expect("framed response");
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
            assert!(
                head.contains("Content-Type: text/plain; version=0.0.4"),
                "{head}"
            );

            // Every family the endpoint promises is declared with HELP+TYPE.
            for (name, kind) in [
                ("strudel_requests_total", "counter"),
                ("strudel_request_errors_total", "counter"),
                ("strudel_request_duration_seconds", "histogram"),
                ("strudel_uptime_seconds", "gauge"),
                ("strudel_worker_threads", "gauge"),
                ("strudel_eval_jobs", "gauge"),
                ("strudel_accept_errors_total", "counter"),
                ("strudel_connections_aborted_total", "counter"),
                ("strudel_admission_rejected_total", "counter"),
                ("strudel_keepalive_reuses_total", "counter"),
                ("strudel_connections_open", "gauge"),
                ("strudel_connections_idle", "gauge"),
                ("strudel_connections_reading", "gauge"),
                ("strudel_connections_writing", "gauge"),
                ("strudel_page_cache_hits_total", "counter"),
                ("strudel_page_cache_misses_total", "counter"),
                ("strudel_page_cache_entries", "gauge"),
                ("strudel_path_cache_hits_total", "counter"),
                ("strudel_store_page_reads_total", "counter"),
                ("strudel_store_page_writes_total", "counter"),
                ("strudel_store_page_cache_hits_total", "counter"),
                ("strudel_store_page_cache_misses_total", "counter"),
                ("strudel_store_pages_leaked_total", "counter"),
                ("strudel_store_compactions_total", "counter"),
                ("strudel_wal_frames_total", "counter"),
                ("strudel_wal_commits_total", "counter"),
                ("strudel_wal_bytes_total", "counter"),
                ("strudel_wal_checkpoints_total", "counter"),
                ("strudel_wal_recoveries_total", "counter"),
                ("strudel_wal_recovered_frames_total", "counter"),
                ("strudel_wal_torn_tails_total", "counter"),
                ("strudel_wal_fsyncs_total", "counter"),
                ("strudel_wal_group_commits_total", "counter"),
                ("strudel_wal_group_commit_txns_total", "counter"),
                ("strudel_store_page_cache_evictions_total", "counter"),
                ("strudel_checkpoint_pages_written_total", "counter"),
                ("strudel_checkpoint_pages_reused_total", "counter"),
                ("strudel_store_dirty_pages", "gauge"),
                ("strudel_store_freelist_pages", "gauge"),
                ("strudel_build_info", "gauge"),
                ("strudel_trace_enabled", "gauge"),
                ("strudel_trace_spans_recorded_total", "counter"),
                ("strudel_trace_spans_dropped_total", "counter"),
                ("strudel_trace_traces_started_total", "counter"),
                ("strudel_trace_traces_sampled_total", "counter"),
                ("strudel_trace_traces_slow_promoted_total", "counter"),
                ("strudel_trace_ring_occupancy", "gauge"),
                ("strudel_trace_ring_capacity", "gauge"),
            ] {
                assert!(body.contains(&format!("# HELP {name} ")), "{name}");
                assert!(body.contains(&format!("# TYPE {name} {kind}\n")), "{name}");
            }

            // Exposition is line-structured: every non-comment line is
            // `name[{labels}] value` with a legal metric name and a value
            // that parses.
            for line in body.lines().filter(|l| !l.starts_with('#')) {
                let (lhs, value) = line.rsplit_once(' ').expect(line);
                let name = lhs.split('{').next().unwrap();
                assert!(strudel_obs::valid_metric_name(name), "{line}");
                value.parse::<f64>().expect(line);
            }

            // Histogram shape: cumulative buckets ending at +Inf, matching
            // the _count; at least the four requests above are in it.
            let inf: u64 = body
                .lines()
                .find(|l| l.contains("_bucket{le=\"+Inf\"}"))
                .and_then(|l| l.rsplit(' ').next())
                .unwrap()
                .parse()
                .unwrap();
            let count: u64 = body
                .lines()
                .find(|l| l.starts_with("strudel_request_duration_seconds_count"))
                .and_then(|l| l.rsplit(' ').next())
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(inf, count);
            assert!(count >= 3, "{count}");

            // Counters agree with the traffic: 2 expansions of the same
            // page → ≥1 page-cache hit; the 404 shows as an error.
            let value_of = |name: &str| -> f64 {
                body.lines()
                    .find(|l| l.starts_with(name) && !l.starts_with('#'))
                    .and_then(|l| l.rsplit(' ').next())
                    .unwrap()
                    .parse()
                    .unwrap()
            };
            assert!(value_of("strudel_page_cache_hits_total") >= 1.0);
            assert!(value_of("strudel_request_errors_total") >= 1.0);

            // /stats carries the vitals and connection block as JSON.
            let stats = fetch(addr, "/stats");
            assert!(stats.contains("Content-Type: application/json"), "{stats}");
            for key in [
                "\"uptime_seconds\":",
                "\"threads\":",
                "\"jobs\":",
                "\"connections\":",
                "\"keepalive_reuses\":",
                "\"admission_rejected\":",
                "\"accept_errors\":",
                "\"traces\":",
            ] {
                assert!(stats.contains(key), "{stats}");
            }
            let _ = fetch(addr, "/quit");
        });
        server.serve(None).unwrap();
        client.join().unwrap();
    }

    /// End-to-end live update with a *deletion*: serve and warm the cache,
    /// deliver a removal delta through [`Server::notify`], carry the
    /// surviving cache entries across a rebind with snapshot/restore, and
    /// check the served HTML reflects the deletion while untouched pages
    /// still answer from the warm cache.
    #[test]
    fn deletion_notify_invalidates_served_pages_across_rebind() {
        let (mut data, query) = demo_site();
        let find = |g: &strudel_graph::Graph, name: &str| {
            g.nodes()
                .iter()
                .copied()
                .find(|n| g.node_name(*n).as_deref() == Some(name))
                .unwrap()
        };
        let a1 = find(&data, "a1");
        let a2 = find(&data, "a2");
        let headline = data.sym("headline");
        let url1 = page_url(&PageRef {
            skolem: "Page".into(),
            args: vec![Value::Node(a1)],
        });
        let url2 = page_url(&PageRef {
            skolem: "Page".into(),
            args: vec![Value::Node(a2)],
        });

        // Phase 1: warm both story pages, then notify the removal.
        let snap = {
            let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
            let server = Server::bind(site, "127.0.0.1:0").unwrap();
            let addr = server.addr().unwrap();
            let (u1, u2) = (url1.clone(), url2.clone());
            let client = std::thread::spawn(move || {
                assert!(fetch(addr, &u1).contains("one"));
                assert!(fetch(addr, &u2).contains("two"));
                let _ = fetch(addr, "/quit");
            });
            server.serve(None).unwrap();
            client.join().unwrap();

            let dropped = server.notify(&Delta::EdgeRemoved {
                from: a1,
                label: headline,
                to: Value::str("one"),
            });
            assert!(dropped >= 1, "removal delta dropped {dropped} entries");
            server.site().cache_snapshot()
        };

        // The server is gone; apply the mutation the delta described.
        assert!(data.remove_edge(a1, headline, &Value::str("one")).unwrap());

        // Phase 2: rebind over the mutated graph with the surviving cache.
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        site.cache_restore(snap);
        let server = Server::bind(site, "127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        let (u1, u2) = (url1.clone(), url2.clone());
        let client = std::thread::spawn(move || {
            let story1 = fetch(addr, &u1);
            assert!(!story1.contains("one"), "{story1}");
            assert!(story1.contains("world"), "{story1}"); // section edge intact
            assert!(fetch(addr, &u2).contains("two"));
            let _ = fetch(addr, "/quit");
        });
        server.serve(None).unwrap();
        client.join().unwrap();
        let d = server.site().stats();
        assert!(d.cache_hits >= 1, "untouched page should stay warm: {d:?}");
        assert!(
            d.cache_misses >= 1,
            "invalidated page must recompute: {d:?}"
        );
    }

    /// Regression test: a request head arriving in several TCP segments
    /// must be reassembled, not served from the first partial read (which
    /// used to fall back to the `/` roots page).
    #[test]
    fn split_request_is_reassembled_before_routing() {
        in_both_modes(|mode| {
            let (data, query) = demo_site();
            let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
            let config = ServerConfig {
                mode,
                ..ServerConfig::default()
            };
            let server = Server::bind_with(site, "127.0.0.1:0", config).unwrap();
            let addr = server.addr().unwrap();

            let client = std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect");
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                // First flush stops mid-request-line: no terminator, and even
                // the path is incomplete.
                s.write_all(b"GET /page/Fro").unwrap();
                s.flush().unwrap();
                std::thread::sleep(Duration::from_millis(80));
                s.write_all(b"ntPage HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                    .unwrap();
                let mut buf = String::new();
                s.read_to_string(&mut buf).unwrap();
                assert!(buf.starts_with("HTTP/1.1 200"), "{buf}");
                // The FrontPage expansion, not the roots listing.
                assert!(buf.contains("Story"), "{buf}");
                assert!(!buf.contains("Site roots"), "{buf}");
                let _ = fetch(addr, "/quit");
            });
            server.serve(None).unwrap();
            client.join().unwrap();
        });
    }

    #[test]
    fn oversized_and_silent_requests_are_rejected() {
        in_both_modes(|mode| {
            let (data, query) = demo_site();
            let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
            let config = ServerConfig {
                threads: 2,
                request_timeout: Duration::from_millis(150),
                max_request_bytes: 512,
                mode,
                ..ServerConfig::default()
            };
            let server = Server::bind_with(site, "127.0.0.1:0", config).unwrap();
            let addr = server.addr().unwrap();

            let client = std::thread::spawn(move || {
                // Head larger than the cap.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(1024));
                s.write_all(huge.as_bytes()).unwrap();
                let mut buf = String::new();
                s.read_to_string(&mut buf).unwrap();
                assert!(buf.contains("431"), "{mode:?}: {buf}");

                // A client that connects and never speaks: per-request timeout.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut buf = String::new();
                s.read_to_string(&mut buf).unwrap();
                assert!(buf.contains("408"), "{mode:?}: {buf}");

                // Non-GET/HEAD methods are refused after full framing.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                s.write_all(b"DELETE / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                    .unwrap();
                let mut buf = String::new();
                s.read_to_string(&mut buf).unwrap();
                assert!(buf.contains("405"), "{mode:?}: {buf}");

                let _ = fetch(addr, "/quit");
            });
            server.serve(None).unwrap();
            client.join().unwrap();
            assert!(server.stats().errors >= 3, "{mode:?}");
        });
    }

    /// `/healthz` answers ready in both serving modes once the accept loop
    /// is running, and the server reports not-ready before and after.
    #[test]
    fn healthz_reports_readiness_in_both_modes() {
        in_both_modes(|mode| {
            let (data, query) = demo_site();
            let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
            let config = ServerConfig {
                mode,
                ..ServerConfig::default()
            };
            let server = Server::bind_with(site, "127.0.0.1:0", config).unwrap();
            assert!(!server.is_ready(), "not ready before serve()");
            let addr = server.addr().unwrap();
            let client = std::thread::spawn(move || {
                let resp = fetch(addr, "/healthz");
                assert!(resp.starts_with("HTTP/1.1 200"), "{mode:?}: {resp}");
                assert!(resp.contains("text/plain"), "{mode:?}: {resp}");
                assert!(resp.ends_with("ok\n"), "{mode:?}: {resp}");
                let _ = fetch(addr, "/quit");
            });
            server.serve(None).unwrap();
            client.join().unwrap();
            assert!(!server.is_ready(), "not ready after serve() returns");
        });
    }

    /// `/debug/traces` over a live traced server: the JSON form carries a
    /// trace for the page just fetched with spans from several layers, and
    /// the chrome form is a JSON array of complete events.
    #[test]
    fn debug_traces_exposes_request_spans() {
        strudel_obs::trace::enable(strudel_obs::trace::TraceConfig::default());
        let (data, query) = demo_site();
        let site = DynamicSite::new(&data, &query, EvalOptions::default()).unwrap();
        let server = Server::bind(site, "127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        let client = std::thread::spawn(move || {
            assert!(fetch(addr, "/page/FrontPage").contains("Story"));
            let resp = fetch(addr, "/debug/traces");
            let (_, body) = resp.split_once("\r\n\r\n").unwrap();
            let v = strudel_obs::json::parse(body).expect("valid JSON");
            let traces = v.get("traces").and_then(|t| t.as_array()).unwrap();
            let ours = traces
                .iter()
                .find(|t| t.get("path").and_then(|p| p.as_str()) == Some("/page/FrontPage"))
                .expect("a trace for the fetched page");
            let spans = ours.get("spans").and_then(|s| s.as_array()).unwrap();
            let cats: std::collections::BTreeSet<&str> = spans
                .iter()
                .filter_map(|s| s.get("cat").and_then(|c| c.as_str()))
                .collect();
            assert!(cats.contains("serve"), "{cats:?}");
            assert!(cats.contains("cache"), "{cats:?}");
            assert!(cats.contains("eval"), "{cats:?}");
            assert!(cats.contains("render"), "{cats:?}");

            let resp = fetch(addr, "/debug/traces?format=chrome");
            let (_, body) = resp.split_once("\r\n\r\n").unwrap();
            let v = strudel_obs::json::parse(body).expect("valid chrome JSON");
            let events = v.as_array().expect("array of events");
            assert!(!events.is_empty());
            for e in events {
                assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("X"));
                assert!(e.get("ts").and_then(|t| t.as_f64()).is_some());
            }
            let _ = fetch(addr, "/quit");
        });
        server.serve(None).unwrap();
        client.join().unwrap();
    }

    /// The concurrency smoke test: many threads hammer the pool and every
    /// response must be well-formed and byte-identical to the serial
    /// answer for the same path.
    #[test]
    fn concurrent_requests_match_serial_answers() {
        let (data, query) = demo_site();
        // A small cache so eviction churn happens under load too.
        let site = DynamicSite::with_cache(
            &data,
            &query,
            EvalOptions::default(),
            CacheConfig {
                max_entries: 2,
                max_bytes: usize::MAX,
            },
        )
        .unwrap();
        let config = ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        };
        let server = Server::bind_with(site, "127.0.0.1:0", config).unwrap();
        let addr = server.addr().unwrap();

        let client = std::thread::spawn(move || {
            let front = fetch(addr, "/page/FrontPage");
            let mut paths = vec!["/".to_string(), "/page/FrontPage".to_string()];
            for part in front.split("href=\"/page/Page/").skip(1) {
                paths.push(format!("/page/Page/{}", &part[..part.find('"').unwrap()]));
            }
            assert!(paths.len() >= 4, "{paths:?}");
            // Serial reference answers.
            let expected: Vec<String> = paths.iter().map(|p| fetch(addr, p)).collect();

            const THREADS: usize = 8;
            const ROUNDS: usize = 12;
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let paths = paths.clone();
                let expected = expected.clone();
                handles.push(std::thread::spawn(move || {
                    for r in 0..ROUNDS {
                        let i = (t + r) % paths.len();
                        let got = fetch(addr, &paths[i]);
                        assert_eq!(got, expected[i], "thread {t} round {r} path {}", paths[i]);
                        // Well-formed: status line + framed body length.
                        let (head, body) = got.split_once("\r\n\r\n").expect("framed response");
                        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
                        let len: usize = head
                            .lines()
                            .find_map(|l| l.strip_prefix("Content-Length: "))
                            .unwrap()
                            .parse()
                            .unwrap();
                        assert_eq!(body.len(), len);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let stats = fetch(addr, "/stats");
            assert!(stats.contains("\"hits\""), "{stats}");
            let _ = fetch(addr, "/quit");
        });
        server.serve(None).unwrap();
        client.join().unwrap();

        let stats = server.stats();
        assert!(stats.requests >= 8 * 12, "{stats:?}");
        assert_eq!(stats.errors, 0, "{stats:?}");
        // The shared cache was exercised and stayed within its bound.
        let dyn_stats = server.site().stats();
        assert!(dyn_stats.cache_hits > 0, "{dyn_stats:?}");
        assert!(dyn_stats.evictions > 0, "{dyn_stats:?}");
        assert!(server.site().cache_len() <= 2);
    }
}
