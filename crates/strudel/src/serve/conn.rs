//! One non-blocking connection in the event-driven serving tier.
//!
//! A connection is a little state machine driven entirely by the event
//! loop (`serve::event`):
//!
//! ```text
//!            first byte                 head complete
//!   Idle ───────────────▶ Reading ─────────────────▶ Dispatched
//!    ▲                       │                            │ worker done
//!    │                       │ deadline / garbage         ▼
//!    └────── keep-alive ── Writing ◀──────────────────────┘
//!             (flush done)
//! ```
//!
//! The whole-request deadline is armed once, when the first byte of a
//! request arrives (or at accept for a connection that never speaks), and
//! is *not* re-armed by later reads — a client dribbling one byte per
//! almost-timeout can no longer hold the connection open indefinitely
//! (the slow-loris window the per-read timeout reset used to leave).

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use strudel_obs::trace;

/// Connection states, as surfaced by the `strudel_connections_*` gauges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Open, no bytes of a request pending (fresh, or between keep-alive
    /// requests).
    Idle,
    /// A partial request head is buffered; the whole-request deadline is
    /// running.
    Reading,
    /// A complete request is with the worker pool; the socket is quiet.
    Dispatched,
    /// Response bytes are draining to the socket.
    Writing,
}

/// Outcome of pumping readable bytes into the buffer.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Fill {
    /// Got ≥1 byte (more may remain in the kernel if the cap cut us off).
    Progress,
    /// Readable but nothing new yet (spurious wakeup).
    Blocked,
    /// Orderly EOF from the peer.
    PeerClosed,
    /// Hard socket error; the connection is unusable.
    Broken,
}

/// Outcome of flushing the write buffer.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Flush {
    /// The whole response is on the wire.
    Done,
    /// The kernel buffer filled; wait for writability.
    Blocked,
    /// Hard socket error; the connection is unusable.
    Broken,
}

pub(crate) struct Conn {
    pub stream: TcpStream,
    pub state: ConnState,
    /// Guards the slot against reuse races: a worker completion carries the
    /// generation it was dispatched under and is dropped on mismatch.
    pub generation: u64,
    pub rbuf: Vec<u8>,
    pub wbuf: Vec<u8>,
    pub wpos: usize,
    /// Whole-request (or idle) deadline; `None` while the request is with
    /// a worker or the response is draining.
    pub deadline: Option<Instant>,
    /// Responses completed on this connection.
    pub served: u64,
    pub close_after_write: bool,
    /// Whether the drained response counts as a 4xx/5xx.
    pub pending_is_error: bool,
    /// Turned away by admission control: the queued 503 counts only under
    /// `admission_rejected`, never as a request or an error (the router
    /// never saw it, and it would skew the error rate it exists to cap).
    pub rejected: bool,
    /// When the in-flight request began (first byte; accept time for a
    /// connection's first).
    pub req_started: Instant,
    /// Root tracing span of the in-flight request (present only while
    /// tracing is enabled); finished when the response drains or the
    /// connection dies.
    pub trace: Option<trace::RootSpan>,
    /// Flight-recorder timestamp (ns) when the response was queued —
    /// the start of the `serve.write` phase span.
    pub trace_write_ns: u64,
}

impl Conn {
    pub fn new(stream: TcpStream, generation: u64, request_timeout: Duration) -> Self {
        let now = Instant::now();
        Conn {
            stream,
            state: ConnState::Idle,
            generation,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            deadline: Some(now + request_timeout),
            served: 0,
            close_after_write: false,
            pending_is_error: false,
            rejected: false,
            req_started: now,
            trace: None,
            trace_write_ns: 0,
        }
    }

    /// Whether any byte of the current request has arrived.
    pub fn has_partial(&self) -> bool {
        !self.rbuf.is_empty()
    }

    /// Reads until `WouldBlock`, EOF, or the buffer cap. Never blocks.
    pub fn fill(&mut self, cap: usize) -> Fill {
        let mut chunk = [0u8; 4096];
        let mut got = false;
        loop {
            if self.rbuf.len() >= cap {
                return Fill::Progress; // parser will judge the size
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Fill::PeerClosed,
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    got = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    return if got { Fill::Progress } else { Fill::Blocked };
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Fill::Broken,
            }
        }
    }

    /// Arms a response for writing. `Flush` it to make progress.
    pub fn queue_response(&mut self, bytes: Vec<u8>, is_error: bool, close_after: bool) {
        debug_assert!(self.wpos >= self.wbuf.len(), "response already in flight");
        if self.trace.is_some() {
            self.trace_write_ns = trace::now_ns();
        }
        self.wbuf = bytes;
        self.wpos = 0;
        self.pending_is_error = is_error;
        self.close_after_write = close_after;
        self.state = ConnState::Writing;
        self.deadline = None;
    }

    /// Writes until done or `WouldBlock`. Never blocks.
    pub fn flush(&mut self) -> Flush {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Flush::Broken,
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Flush::Blocked,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Flush::Broken,
            }
        }
        Flush::Done
    }
}
