//! The event-driven serving mode: one readiness loop owning every socket,
//! a worker pool owning every page expansion.
//!
//! The loop (this module) runs on the thread that called
//! [`Server::serve`]; it accepts connections, pumps non-blocking reads
//! and writes through each [`Conn`] state machine, enforces whole-request
//! deadlines and admission control, and never computes a page. Complete
//! requests are handed to the worker pool over a channel; workers run the
//! router (which may expand pages through the shared [`DynamicSite`]
//! cache), encode the response, and hand the bytes back with
//! [`Poller::notify`] as the doorbell. One request is in flight per
//! connection at a time, so pipelined requests are answered strictly in
//! arrival order; their bytes simply wait in the connection's read buffer
//! (and the kernel's) until the previous response has drained.
//!
//! [`DynamicSite`]: strudel_site::DynamicSite

use super::conn::{Conn, ConnState, Fill, Flush};
use super::http::{self, AcceptBackoff, Method, Parsed, Request};
use super::Server;
use parking_lot::Mutex;
use polling::{Event, Poller};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use strudel_obs::trace;

/// Poller key of the listening socket; connections use `slot + 1`.
const KEY_LISTENER: usize = 0;

/// Ends a connection's in-flight root span (if any): records the
/// `serve.write` phase when a response was queued, then finishes the
/// trace (promoting it if sampled or slow).
fn finish_trace(conn: &mut Conn) {
    if let Some(root) = conn.trace.take() {
        if conn.trace_write_ns > 0 {
            let ctx = root.ctx();
            trace::record_span(
                &ctx,
                "serve.write",
                trace::Layer::Serve,
                conn.trace_write_ns,
                trace::now_ns(),
                &[("bytes", trace::AttrValue::U64(conn.wbuf.len() as u64))],
            );
        }
        root.finish();
        conn.trace_write_ns = 0;
    }
}

/// Fallback poll period when nothing imposes a deadline. Completions
/// arrive via [`Poller::notify`], so this only bounds recovery from lost
/// wakeups.
const IDLE_TICK: Duration = Duration::from_millis(500);

/// A parsed request on its way to the worker pool.
struct Job {
    slot: usize,
    generation: u64,
    req: Request,
    /// Trace context of the connection's root span, adopted by whichever
    /// worker picks the job up so expansion spans parent correctly.
    trace: Option<trace::Ctx>,
}

/// An encoded response on its way back from a worker.
struct Completion {
    slot: usize,
    generation: u64,
    bytes: Vec<u8>,
    is_error: bool,
    close_after: bool,
    /// Numeric HTTP status, recorded on the request's root span.
    status: u64,
}

/// Runs the event-driven serving mode. See [`Server::serve`] for the
/// `max_conns` contract.
pub(super) fn run(server: &Server<'_>, max_conns: Option<usize>) -> crate::error::Result<()> {
    let io_err = crate::error::StrudelError::Io;
    server.listener.set_nonblocking(true).map_err(io_err)?;
    let poller = Poller::new().map_err(io_err)?;
    poller
        .add(&server.listener, Event::readable(KEY_LISTENER))
        .map_err(io_err)?;

    let shutdown = AtomicBool::new(false);
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Mutex::new(job_rx);
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let workers = server.config.threads.max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let done_tx = done_tx.clone();
            let (shutdown, job_rx, poller) = (&shutdown, &job_rx, &poller);
            scope.spawn(move || {
                // Take the receiver lock only to pull one job.
                while let Ok(job) = { job_rx.lock().recv() } {
                    // Adopt the request's trace for the expansion phase:
                    // cache/eval/render/store spans recorded below attach
                    // to the serve.handle span, and the gap between
                    // dispatch and here surfaces as queue time on the root.
                    let trace_guard = job.trace.as_ref().map(trace::enter);
                    let mut hspan = trace::span("serve.handle", trace::Layer::Serve);
                    let (status, content_type, body) = server.route_request(&job.req, shutdown);
                    let is_error = !status.starts_with('2');
                    let status_code = status
                        .split(' ')
                        .next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or(0);
                    let keep = job.req.keep_alive && !shutdown.load(Ordering::Acquire);
                    let bytes = http::encode_response(
                        &status,
                        content_type,
                        &body,
                        keep,
                        job.req.method == Method::Head,
                    );
                    hspan.attr_u64("status", status_code);
                    hspan.attr_u64("bytes", bytes.len() as u64);
                    drop(hspan);
                    // Flush the handle span's time into the root's child
                    // accounting BEFORE the completion is visible to the
                    // loop: otherwise the loop can finish the root first and
                    // compute a self-time that still contains serve.handle.
                    drop(trace_guard);
                    if done_tx
                        .send(Completion {
                            slot: job.slot,
                            generation: job.generation,
                            bytes,
                            is_error,
                            close_after: !keep,
                            status: status_code,
                        })
                        .is_err()
                    {
                        break; // loop gone
                    }
                    let _ = poller.notify();
                }
            });
        }
        drop(done_tx);

        EventLoop {
            server,
            poller: &poller,
            shutdown: &shutdown,
            job_tx,
            done_rx,
            conns: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
            accepted: 0,
            accept_limit: max_conns,
            draining: false,
            accepting: true,
            accept_resume_at: None,
            backoff: AcceptBackoff::new(),
        }
        .run();
    });

    server.listener.set_nonblocking(false).map_err(io_err)?;
    Ok(())
}

struct EventLoop<'s, 'g> {
    server: &'s Server<'g>,
    poller: &'s Poller,
    shutdown: &'s AtomicBool,
    job_tx: mpsc::Sender<Job>,
    done_rx: mpsc::Receiver<Completion>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    accepted: usize,
    accept_limit: Option<usize>,
    /// Stop accepting, close idle connections, finish in-flight work, exit.
    draining: bool,
    /// Whether the listener is currently registered with the poller.
    accepting: bool,
    /// When accept-error backoff ends and the listener re-registers.
    accept_resume_at: Option<Instant>,
    backoff: AcceptBackoff,
}

impl EventLoop<'_, '_> {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                self.enter_drain();
            }
            if self.draining && self.open_count() == 0 {
                break;
            }
            events.clear();
            let _ = self.poller.wait(&mut events, Some(self.next_timeout()));

            // Worker completions first: they free connections for the
            // readiness events processed right after.
            while let Ok(done) = self.done_rx.try_recv() {
                self.complete(done);
            }
            for &ev in &events {
                if ev.key == KEY_LISTENER {
                    self.accept_ready();
                } else {
                    self.conn_ready(ev.key - 1, ev);
                }
            }
            let now = Instant::now();
            self.sweep_deadlines(now);
            self.resume_accept(now);
            if self.shutdown.load(Ordering::Acquire) {
                self.enter_drain();
            }
            self.publish_gauges();
        }
        // Close whatever drain left behind (nothing, unless a worker died).
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close(slot);
            }
        }
        self.publish_gauges();
        if self.accepting {
            let _ = self.poller.delete(&self.server.listener);
        }
    }

    // ---- accept path -------------------------------------------------------

    fn accept_ready(&mut self) {
        while self.accepting {
            match self.server.listener.accept() {
                Ok((stream, _)) => {
                    self.backoff.on_success();
                    self.accepted += 1;
                    self.admit(stream);
                    if self.accept_limit.is_some_and(|m| self.accepted >= m) {
                        self.enter_drain();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EMFILE and friends: re-entering accept immediately
                    // would busy-spin at 100% CPU. Unregister the listener
                    // and come back after an exponentially growing pause.
                    self.server.metrics.accept_errors.inc();
                    let pause = self.backoff.on_error();
                    self.accept_resume_at = Some(Instant::now() + pause);
                    self.unregister_listener();
                    break;
                }
            }
        }
    }

    fn admit(&mut self, stream: std::net::TcpStream) {
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        let generation = self.next_generation;
        self.next_generation += 1;
        let mut conn = Conn::new(stream, generation, self.server.config.request_timeout);
        let overloaded = self.open_count() >= self.server.config.max_connections.max(1);
        if overloaded {
            self.server.metrics.admission_rejected.inc();
            conn.rejected = true;
            conn.queue_response(http::overload_response(), true, true);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.conns[s] = Some(conn);
                s
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        if self
            .poller
            .add(
                &self.conns[slot].as_ref().unwrap().stream,
                Event::none(slot + 1),
            )
            .is_err()
        {
            self.conns[slot] = None;
            self.free.push(slot);
            return;
        }
        if overloaded {
            self.pump_write(slot);
        } else {
            self.set_interest(slot, Event::readable(slot + 1));
        }
    }

    fn unregister_listener(&mut self) {
        if self.accepting {
            let _ = self.poller.delete(&self.server.listener);
            self.accepting = false;
        }
    }

    fn resume_accept(&mut self, now: Instant) {
        if let Some(at) = self.accept_resume_at {
            if now >= at && !self.draining {
                self.accept_resume_at = None;
                if !self.accepting
                    && self
                        .poller
                        .add(&self.server.listener, Event::readable(KEY_LISTENER))
                        .is_ok()
                {
                    self.accepting = true;
                }
                // The pause may have swallowed the readiness edge.
                self.accept_ready();
            }
        }
    }

    // ---- connection I/O ----------------------------------------------------

    fn conn_ready(&mut self, slot: usize, ev: Event) {
        let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) else {
            return; // already closed this tick
        };
        match conn.state {
            ConnState::Idle | ConnState::Reading if ev.readable => self.read_ready(slot),
            ConnState::Writing if ev.writable => self.pump_write(slot),
            _ => {} // Dispatched, or a spurious direction: nothing to do
        }
    }

    fn read_ready(&mut self, slot: usize) {
        let cap = self.server.config.max_request_bytes + 65536;
        let conn = self.conns[slot].as_mut().unwrap();
        match conn.fill(cap) {
            Fill::Progress => {
                if conn.state == ConnState::Idle {
                    // First byte of a request: arm the whole-request
                    // deadline exactly once. Later reads do NOT re-arm it.
                    conn.state = ConnState::Reading;
                    conn.req_started = Instant::now();
                    conn.deadline = Some(conn.req_started + self.server.config.request_timeout);
                    conn.trace = trace::begin_request("request");
                }
                self.advance(slot);
            }
            Fill::Blocked => {}
            Fill::PeerClosed => {
                if conn.has_partial() {
                    // Peer half-closed mid-head; it can still read our 400.
                    self.respond_inline(
                        slot,
                        "400 Bad Request",
                        "<html><body>malformed request</body></html>",
                    );
                } else {
                    // A connection that opened and closed without a byte
                    // (port scan, health probe): silent, separate counter,
                    // never an "error" — the old 400-per-probe skewed the
                    // error rate. Reused keep-alive connections closing
                    // between requests are plain lifecycle, not aborts.
                    if conn.served == 0 {
                        self.server.metrics.aborted.inc();
                    }
                    self.close(slot);
                }
            }
            Fill::Broken => {
                if self.conns[slot].as_ref().unwrap().served == 0 {
                    self.server.metrics.aborted.inc();
                }
                self.close(slot);
            }
        }
    }

    /// Parses and dispatches from the read buffer. Callable only in
    /// `Idle`/`Reading`.
    fn advance(&mut self, slot: usize) {
        let max_head = self.server.config.max_request_bytes;
        let conn = self.conns[slot].as_mut().unwrap();
        match http::parse_request(&conn.rbuf) {
            Parsed::Incomplete => {
                if conn.rbuf.len() > max_head {
                    self.respond_inline(
                        slot,
                        "431 Request Header Fields Too Large",
                        "<html><body>request too large</body></html>",
                    );
                } else {
                    self.set_interest(slot, Event::readable(slot + 1));
                }
            }
            Parsed::Malformed => {
                self.respond_inline(
                    slot,
                    "400 Bad Request",
                    "<html><body>malformed request line</body></html>",
                );
            }
            Parsed::Request(_, consumed) if consumed > max_head => {
                self.respond_inline(
                    slot,
                    "431 Request Header Fields Too Large",
                    "<html><body>request too large</body></html>",
                );
            }
            Parsed::Request(req, consumed) => {
                conn.rbuf.drain(..consumed);
                if req.has_body {
                    self.respond_inline(
                        slot,
                        "400 Bad Request",
                        "<html><body>request bodies are not supported</body></html>",
                    );
                    return;
                }
                if conn.served > 0 {
                    self.server.metrics.keepalive_reuses.inc();
                }
                conn.state = ConnState::Dispatched;
                conn.deadline = None;
                // Close the parse phase: first byte → complete head.
                let trace_ctx = conn.trace.as_mut().map(|root| {
                    root.attr_text("path", &req.path);
                    let ctx = root.ctx();
                    trace::record_span(
                        &ctx,
                        "serve.parse",
                        trace::Layer::Serve,
                        root.start_ns(),
                        trace::now_ns(),
                        &[("bytes", trace::AttrValue::U64(consumed as u64))],
                    );
                    ctx
                });
                let job = Job {
                    slot,
                    generation: conn.generation,
                    req,
                    trace: trace_ctx,
                };
                self.set_interest(slot, Event::none(slot + 1));
                if self.job_tx.send(job).is_err() {
                    self.close(slot); // workers gone (only after a panic)
                }
            }
        }
    }

    /// Queues a loop-generated error response (4xx) and starts flushing.
    /// The connection always closes afterwards: the request stream is not
    /// trustworthy past a framing error.
    fn respond_inline(&mut self, slot: usize, status: &str, body: &str) {
        let bytes = http::encode_response(status, http::CT_HTML, body, false, false);
        let conn = self.conns[slot].as_mut().unwrap();
        conn.queue_response(bytes, true, true);
        self.pump_write(slot);
    }

    fn complete(&mut self, done: Completion) {
        let Some(conn) = self.conns.get_mut(done.slot).and_then(Option::as_mut) else {
            return; // connection died while the worker computed
        };
        if conn.generation != done.generation || conn.state != ConnState::Dispatched {
            return; // slot was recycled; response belongs to a dead conn
        }
        if let Some(root) = conn.trace.as_mut() {
            root.attr_u64("status", done.status);
        }
        conn.queue_response(done.bytes, done.is_error, done.close_after);
        self.pump_write(done.slot);
    }

    fn pump_write(&mut self, slot: usize) {
        let conn = self.conns[slot].as_mut().unwrap();
        match conn.flush() {
            Flush::Done => self.finish_response(slot),
            // The kernel buffer is full: only now is writability worth
            // polling for (the common case flushes in one call with no
            // interest churn).
            Flush::Blocked => self.set_interest(slot, Event::writable(slot + 1)),
            Flush::Broken => {
                // The request was processed even if the peer vanished
                // before the bytes landed; keep the counters honest.
                let conn = self.conns[slot].as_mut().unwrap();
                finish_trace(conn);
                if !conn.rejected {
                    self.server
                        .metrics
                        .record(conn.req_started.elapsed(), conn.pending_is_error);
                }
                self.close(slot);
            }
        }
    }

    fn finish_response(&mut self, slot: usize) {
        let conn = self.conns[slot].as_mut().unwrap();
        finish_trace(conn);
        if !conn.rejected {
            self.server
                .metrics
                .record(conn.req_started.elapsed(), conn.pending_is_error);
        }
        conn.served += 1;
        if conn.close_after_write || self.draining {
            self.close(slot);
            return;
        }
        conn.state = ConnState::Idle;
        conn.req_started = Instant::now();
        conn.deadline = Some(conn.req_started + self.server.config.keepalive_timeout);
        if conn.has_partial() {
            // Pipelined successor already buffered: it began "arriving"
            // now for deadline purposes.
            conn.state = ConnState::Reading;
            conn.deadline = Some(conn.req_started + self.server.config.request_timeout);
            conn.trace = trace::begin_request("request");
            self.advance(slot);
        } else {
            self.set_interest(slot, Event::readable(slot + 1));
        }
    }

    // ---- deadlines and drain -----------------------------------------------

    fn sweep_deadlines(&mut self, now: Instant) {
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            let Some(deadline) = conn.deadline else {
                continue;
            };
            if now < deadline {
                continue;
            }
            match conn.state {
                // Keep-alive connection resting between requests: expiry
                // is normal lifecycle, close silently.
                ConnState::Idle if conn.served > 0 => self.close(slot),
                // Never spoke, or dribbled a partial head past the
                // whole-request deadline (the slow-loris cut): 408.
                ConnState::Idle | ConnState::Reading => {
                    self.respond_inline(
                        slot,
                        "408 Request Timeout",
                        "<html><body>request timeout</body></html>",
                    );
                }
                _ => {}
            }
        }
    }

    fn enter_drain(&mut self) {
        if !self.draining {
            self.draining = true;
            self.accept_resume_at = None;
            self.unregister_listener();
        }
        // In-flight requests (Dispatched/Writing) finish; waiting
        // connections are cut loose.
        for slot in 0..self.conns.len() {
            if let Some(conn) = self.conns[slot].as_ref() {
                if matches!(conn.state, ConnState::Idle | ConnState::Reading) {
                    self.close(slot);
                }
            }
        }
    }

    // ---- bookkeeping -------------------------------------------------------

    fn set_interest(&self, slot: usize, interest: Event) {
        if let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) {
            let _ = self.poller.modify(&conn.stream, interest);
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(mut conn) = self.conns[slot].take() {
            // A request cut short (deadline, drain, dead worker) still
            // finishes its trace so slow/parked requests stay visible.
            finish_trace(&mut conn);
            let _ = self.poller.delete(&conn.stream);
            self.free.push(slot);
        }
    }

    fn open_count(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut next: Option<Instant> = self.accept_resume_at;
        for conn in self.conns.iter().flatten() {
            if let Some(d) = conn.deadline {
                next = Some(next.map_or(d, |n| n.min(d)));
            }
        }
        match next {
            Some(at) => at.saturating_duration_since(now).min(IDLE_TICK),
            None => IDLE_TICK,
        }
    }

    fn publish_gauges(&self) {
        let (mut open, mut idle, mut reading, mut writing) = (0u64, 0u64, 0u64, 0u64);
        for conn in self.conns.iter().flatten() {
            open += 1;
            match conn.state {
                ConnState::Idle => idle += 1,
                ConnState::Reading => reading += 1,
                ConnState::Writing => writing += 1,
                ConnState::Dispatched => {}
            }
        }
        self.server
            .metrics
            .set_conn_gauges(open, idle, reading, writing);
    }
}
