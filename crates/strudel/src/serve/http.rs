//! HTTP/1.1 framing: incremental request-head parsing and response
//! encoding.
//!
//! [`parse_request`] is a pure function of a byte-buffer prefix, so both
//! serving modes share it: the event loop calls it on a connection's read
//! buffer after every readiness wakeup (a head split across arbitrary TCP
//! segment boundaries parses identically to an unsplit one — property
//! tested), and the threaded mode calls it once the terminator has
//! accumulated. Only heads matter: requests with bodies are refused, which
//! keeps pipelined framing trivial (the next request begins right after
//! `\r\n\r\n`).

use std::time::Duration;

/// Content types the server emits.
pub(crate) const CT_HTML: &str = "text/html; charset=utf-8";
pub(crate) const CT_JSON: &str = "application/json";
pub(crate) const CT_TEXT: &str = "text/plain; charset=utf-8";
/// The Prometheus text exposition format, version 0.0.4.
pub(crate) const CT_PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Request methods the router distinguishes. `HEAD` gets the `GET`
/// headers with no body (RFC 9110 §9.3.2); everything else is 405.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Method {
    Get,
    Head,
    Other,
}

/// One parsed request head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Request {
    pub method: Method,
    pub path: String,
    /// Whether the connection may serve another request after this one:
    /// HTTP/1.1 unless `Connection: close`; HTTP/1.0 only with an explicit
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
    /// Whether the head announces a body (`Content-Length` > 0 or any
    /// `Transfer-Encoding`). The server refuses those with 400 rather than
    /// desynchronizing the connection framing.
    pub has_body: bool,
}

/// Outcome of [`parse_request`] on a buffer prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Parsed {
    /// No complete head yet; read more bytes and try again.
    Incomplete,
    /// A complete head arrived but its request line or framing headers are
    /// garbage. The connection cannot be re-synchronized.
    Malformed,
    /// A complete request head; `.1` is how many bytes it consumed
    /// (including the `\r\n\r\n`), so pipelined successors start there.
    Request(Request, usize),
}

/// Index of the `\r\n\r\n` head terminator, if present.
pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses the request line of a head. Returns `(method, path, version)`.
fn parse_request_line(line: &str) -> Option<(&str, &str, &str)> {
    let mut it = line.split(' ');
    let (method, path, version) = (it.next()?, it.next()?, it.next()?);
    if method.is_empty() || !path.starts_with('/') || !version.starts_with("HTTP/") {
        return None;
    }
    Some((method, path, version))
}

/// Parses one request head off the front of `buf`. Pure: feeding the same
/// prefix always yields the same outcome, regardless of how the bytes
/// arrived.
pub(crate) fn parse_request(buf: &[u8]) -> Parsed {
    let Some(end) = find_head_end(buf) else {
        return Parsed::Incomplete;
    };
    let consumed = end + 4;
    let head = String::from_utf8_lossy(&buf[..end]);
    let mut lines = head.lines();
    let Some((method, path, version)) = lines.next().and_then(parse_request_line) else {
        return Parsed::Malformed;
    };
    let method = match method {
        "GET" => Method::Get,
        "HEAD" => Method::Head,
        _ => Method::Other,
    };
    let http10 = version == "HTTP/1.0";
    let mut keep_alive = !http10;
    let mut has_body = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue; // tolerate junk header lines; framing needs only these
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") && http10 {
                    keep_alive = true;
                }
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<u64>() {
                Ok(n) => has_body |= n > 0,
                Err(_) => return Parsed::Malformed,
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            has_body = true;
        }
    }
    Parsed::Request(
        Request {
            method,
            path: path.to_string(),
            keep_alive,
            has_body,
        },
        consumed,
    )
}

/// Serializes one response. With `head_only` (a `HEAD` answer) the headers
/// — including the `Content-Length` the matching `GET` would carry — are
/// emitted without the body.
pub(crate) fn encode_response(
    status: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    head_only: bool,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut out = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    if !head_only {
        out.extend_from_slice(body.as_bytes());
    }
    out
}

/// A tiny static 503 for admission-control rejections, computed without
/// touching the router (the overloaded path must stay allocation-light).
pub(crate) fn overload_response() -> Vec<u8> {
    encode_response(
        "503 Service Unavailable",
        CT_HTML,
        "<html><body>server overloaded, retry shortly</body></html>",
        false,
        false,
    )
}

/// Exponential backoff for persistent `accept` errors (EMFILE, ENFILE,
/// ENOMEM…). The old acceptor ignored errors outright and re-entered
/// `accept` immediately — under fd exhaustion that is a 100%-CPU busy spin
/// that also starves the workers. Each consecutive error doubles the pause
/// (1ms → 256ms cap); one successful accept resets it.
#[derive(Default, Debug)]
pub(crate) struct AcceptBackoff {
    consecutive: u32,
}

impl AcceptBackoff {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records one accept error and returns how long to pause accepting.
    pub(crate) fn on_error(&mut self) -> Duration {
        self.consecutive = self.consecutive.saturating_add(1);
        Duration::from_millis(1 << (self.consecutive - 1).min(8))
    }

    /// Records a successful accept, ending any backoff.
    pub(crate) fn on_success(&mut self) {
        self.consecutive = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_head_framing() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(
            parse_request(b"GET /x HTTP/1.1\r\nHost: h"),
            Parsed::Incomplete
        );
        let Parsed::Request(req, consumed) =
            parse_request(b"GET /x HTTP/1.1\r\nHost: h\r\n\r\nGET /next")
        else {
            panic!("complete head must parse");
        };
        assert_eq!(consumed, 28); // the pipelined `GET /next` is untouched
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/x");
        assert!(req.keep_alive);
        assert!(!req.has_body);
        assert_eq!(parse_request(b"GET /x\r\n\r\n"), Parsed::Malformed);
        assert_eq!(parse_request(b"GET x HTTP/1.1\r\n\r\n"), Parsed::Malformed);
        assert_eq!(parse_request(b"\r\n\r\n"), Parsed::Malformed);
    }

    #[test]
    fn connection_semantics_follow_the_http_version() {
        let parse = |head: &str| match parse_request(head.as_bytes()) {
            Parsed::Request(r, _) => r,
            other => panic!("{head:?} -> {other:?}"),
        };
        assert!(parse("GET / HTTP/1.1\r\n\r\n").keep_alive);
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(!parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").keep_alive);
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").keep_alive);
        assert!(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
        assert!(!parse("GET / HTTP/1.1\r\nConnection: upgrade, close\r\n\r\n").keep_alive);
    }

    #[test]
    fn bodies_and_methods_are_recognized() {
        let parse = |head: &str| match parse_request(head.as_bytes()) {
            Parsed::Request(r, _) => r,
            other => panic!("{head:?} -> {other:?}"),
        };
        assert_eq!(parse("HEAD /x HTTP/1.1\r\n\r\n").method, Method::Head);
        assert_eq!(parse("DELETE /x HTTP/1.1\r\n\r\n").method, Method::Other);
        assert!(!parse("GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n").has_body);
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\n").has_body);
        assert!(parse("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").has_body);
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: zap\r\n\r\n"),
            Parsed::Malformed
        );
    }

    #[test]
    fn responses_frame_head_only_answers() {
        let full = encode_response("200 OK", CT_HTML, "abc", true, false);
        let head = encode_response("200 OK", CT_HTML, "abc", true, true);
        let full = String::from_utf8(full).unwrap();
        let head = String::from_utf8(head).unwrap();
        assert!(full.ends_with("\r\n\r\nabc"), "{full}");
        assert!(head.ends_with("\r\n\r\n"), "{head}");
        // Identical headers: a HEAD answer advertises the GET body length.
        assert_eq!(full.strip_suffix("abc").unwrap(), head);
        assert!(head.contains("Content-Length: 3\r\n"), "{head}");
        assert!(head.contains("Connection: keep-alive\r\n"), "{head}");
        let closing =
            String::from_utf8(encode_response("200 OK", CT_HTML, "x", false, false)).unwrap();
        assert!(closing.contains("Connection: close\r\n"), "{closing}");
    }

    use proptest::prelude::*;

    proptest! {
        /// The parser is a pure function of the buffer prefix: a request
        /// head split into TCP segments at ANY boundaries must parse to
        /// exactly what the unsplit byte stream parses to, and must stay
        /// `Incomplete` (never guess) until the terminator has arrived.
        #[test]
        fn split_byte_streams_parse_identically(
            method in "[A-Z]{2,6}",
            path in prop_oneof!["/[a-zA-Z0-9/%.]{0,16}", "[a-z]{1,8}"],
            http10 in any::<bool>(),
            headers in proptest::collection::vec(("[A-Za-z-]{1,12}", "[ -~]{0,16}"), 0..4),
            tail in "[ -~]{0,10}",
            cuts in proptest::collection::vec(0usize..256, 0..6),
        ) {
            let mut head = format!(
                "{method} {path} HTTP/1.{}\r\n",
                if http10 { '0' } else { '1' }
            );
            for (name, value) in &headers {
                head.push_str(&format!("{name}: {value}\r\n"));
            }
            head.push_str("\r\n");
            head.push_str(&tail); // pipelined successor bytes
            let bytes = head.as_bytes();
            let whole = parse_request(bytes);

            // Feed the same bytes in segments cut at arbitrary positions,
            // reparsing the accumulated buffer after each segment, exactly
            // as the event loop does after each readiness wakeup.
            let mut positions: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
            positions.push(bytes.len());
            positions.sort_unstable();
            let mut buf: Vec<u8> = Vec::new();
            let mut last = 0;
            let mut incremental = Parsed::Incomplete;
            for p in positions {
                buf.extend_from_slice(&bytes[last..p]);
                last = p;
                match parse_request(&buf) {
                    Parsed::Incomplete => {
                        // No complete terminator may be buffered yet.
                        prop_assert!(find_head_end(&buf).is_none());
                    }
                    done => {
                        incremental = done;
                        break;
                    }
                }
            }
            prop_assert_eq!(incremental, whole);
        }
    }

    #[test]
    fn accept_backoff_grows_and_resets() {
        let mut b = AcceptBackoff::new();
        let first = b.on_error();
        let second = b.on_error();
        let third = b.on_error();
        assert_eq!(first, Duration::from_millis(1));
        assert_eq!(second, Duration::from_millis(2));
        assert_eq!(third, Duration::from_millis(4));
        // The pause is capped: persistent failure must not back off into
        // unresponsiveness, only out of the busy spin.
        let mut capped = Duration::ZERO;
        for _ in 0..64 {
            capped = b.on_error();
        }
        assert_eq!(capped, Duration::from_millis(256));
        b.on_success();
        assert_eq!(b.on_error(), Duration::from_millis(1));
    }
}
