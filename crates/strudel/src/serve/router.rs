//! Routing: mapping a parsed request to `(status, content-type, body)`,
//! plus the `/stats` JSON and `/metrics` Prometheus payloads.
//!
//! Both serving modes call [`Server::route_request`] from worker threads;
//! everything here is `&self` over the shared [`DynamicSite`] and the
//! lock-free metrics, so routing needs no coordination with the
//! connection layer.
//!
//! [`DynamicSite`]: strudel_site::DynamicSite

use super::http::{Method, Request, CT_HTML, CT_JSON, CT_PROM, CT_TEXT};
use super::url::{escape, parse_page_url, render_links};
use super::Server;
use std::sync::atomic::{AtomicBool, Ordering};
use strudel_obs::{trace, PromText};
use strudel_site::{OutLink, Target};

impl Server<'_> {
    /// Answers one fully parsed request. `HEAD` routes exactly like `GET`
    /// (the connection layer drops the body when serializing); other
    /// methods are refused. `/quit` flips the shared shutdown flag.
    pub(super) fn route_request(
        &self,
        req: &Request,
        shutdown: &AtomicBool,
    ) -> (String, &'static str, String) {
        match req.method {
            Method::Other => (
                "405 Method Not Allowed".into(),
                CT_HTML,
                "<html><body>only GET and HEAD are supported</body></html>".into(),
            ),
            Method::Get | Method::Head => {
                if req.path == "/quit" {
                    shutdown.store(true, Ordering::Release);
                    ("200 OK".into(), CT_HTML, "bye".into())
                } else {
                    self.route(&req.path)
                }
            }
        }
    }

    /// Computes the `(status, content-type, body)` answer for one path.
    /// A query string (`?format=chrome`) is split off before matching.
    fn route(&self, raw_path: &str) -> (String, &'static str, String) {
        let (path, query) = match raw_path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (raw_path, ""),
        };
        if path == "/" {
            let links: Vec<OutLink> = self
                .roots
                .iter()
                .map(|r| OutLink {
                    label: "root".into(),
                    target: Target::Page(r.clone()),
                })
                .collect();
            return (
                "200 OK".into(),
                CT_HTML,
                render_links("Site roots (precomputed)", &links),
            );
        }
        if path == "/stats" {
            return ("200 OK".into(), CT_JSON, self.stats_json());
        }
        if path == "/metrics" {
            return ("200 OK".into(), CT_PROM, self.metrics_text());
        }
        if path == "/healthz" {
            return if self.is_ready() {
                ("200 OK".into(), CT_TEXT, "ok\n".into())
            } else {
                (
                    "503 Service Unavailable".into(),
                    CT_TEXT,
                    "starting\n".into(),
                )
            };
        }
        if path == "/debug/traces" {
            return if query.split('&').any(|kv| kv == "format=chrome") {
                ("200 OK".into(), CT_JSON, trace::traces_chrome())
            } else {
                ("200 OK".into(), CT_JSON, trace::traces_json())
            };
        }
        if path.starts_with("/page/") {
            let Some(page) = parse_page_url(path) else {
                return (
                    "400 Bad Request".into(),
                    CT_HTML,
                    "<html><body>bad page ref</body></html>".into(),
                );
            };
            return match self.site.expand(&page) {
                Ok(links) => {
                    let mut rspan = trace::span("render.page", trace::Layer::Render);
                    let title = format!("{page} — {} links (click time)", links.len());
                    let body = render_links(&title, &links);
                    if rspan.is_live() {
                        rspan.attr_u64("links", links.len() as u64);
                        rspan.attr_u64("bytes", body.len() as u64);
                    }
                    drop(rspan);
                    ("200 OK".into(), CT_HTML, body)
                }
                Err(e) => (
                    "500 Internal Server Error".into(),
                    CT_HTML,
                    format!(
                        "<html><body>query error: {}</body></html>",
                        escape(&e.to_string())
                    ),
                ),
            };
        }
        (
            "404 Not Found".into(),
            CT_HTML,
            "<html><body>no such page</body></html>".into(),
        )
    }

    /// The `/stats` payload: request counters, latency percentiles,
    /// server vitals (uptime, worker threads, evaluator jobs), the
    /// connection layer's counters and gauges, and the shared evaluator's
    /// cache counters, as JSON.
    fn stats_json(&self) -> String {
        let s = self.metrics.snapshot();
        let d = self.site.stats();
        let p = self.site.path_cache_stats();
        let q = self.site.plan_cache_stats();
        let st = strudel_graph::storage_stats();
        format!(
            concat!(
                "{{\"requests\":{},\"errors\":{},",
                "\"uptime_seconds\":{},\"threads\":{},\"jobs\":{},",
                "\"latency_us\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},",
                "\"connections\":{{\"open\":{},\"idle\":{},\"reading\":{},\"writing\":{},",
                "\"aborted\":{},\"keepalive_reuses\":{},\"admission_rejected\":{},",
                "\"accept_errors\":{}}},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"invalidated\":{},",
                "\"entries\":{},\"bytes\":{},\"expansions\":{},\"clause_queries\":{}}},",
                "\"path_cache\":{{\"hits\":{},\"misses\":{},\"invalidations\":{}}},",
                "\"plan_cache\":{{\"hits\":{},\"misses\":{},\"invalidations\":{}}},",
                "\"storage\":{{\"page_reads\":{},\"page_writes\":{},",
                "\"page_cache_hits\":{},\"page_cache_misses\":{},",
                "\"page_cache_evictions\":{},\"pages_leaked\":{},",
                "\"wal_frames\":{},\"wal_commits\":{},\"wal_bytes\":{},",
                "\"wal_fsyncs\":{},\"wal_group_commits\":{},\"wal_group_commit_txns\":{},",
                "\"wal_checkpoints\":{},\"wal_recoveries\":{},",
                "\"wal_recovered_frames\":{},\"wal_torn_tails\":{},\"compactions\":{},",
                "\"checkpoint_pages_written\":{},\"checkpoint_pages_reused\":{},",
                "\"dirty_pages\":{},\"freelist_pages\":{}}},",
                "\"traces\":{},",
                "\"planner_dp_fallbacks\":{}}}"
            ),
            s.requests,
            s.errors,
            self.started.elapsed().as_secs(),
            self.config.threads.max(1),
            self.site.jobs(),
            s.latency_p50_us,
            s.latency_p90_us,
            s.latency_p99_us,
            s.latency_max_us,
            s.connections_open,
            s.connections_idle,
            s.connections_reading,
            s.connections_writing,
            s.connections_aborted,
            s.keepalive_reuses,
            s.admission_rejected,
            s.accept_errors,
            d.cache_hits,
            d.cache_misses,
            d.evictions,
            d.invalidated,
            self.site.cache_len(),
            self.site.cache_bytes(),
            d.expansions,
            d.clause_queries,
            p.hits,
            p.misses,
            p.invalidations,
            q.hits,
            q.misses,
            q.invalidations,
            st.page_reads,
            st.page_writes,
            st.page_cache_hits,
            st.page_cache_misses,
            st.page_cache_evictions,
            st.pages_leaked,
            st.wal_appended_frames,
            st.wal_commits,
            st.wal_bytes,
            st.wal_fsyncs,
            st.wal_group_commits,
            st.wal_group_commit_txns,
            st.wal_checkpoints,
            st.wal_recoveries,
            st.wal_recovered_frames,
            st.wal_torn_tails,
            st.compactions,
            st.checkpoint_pages_written,
            st.checkpoint_pages_reused,
            st.dirty_pages,
            st.freelist_pages,
            traces_stats_json(),
            strudel_struql::planner_dp_fallbacks(),
        )
    }

    /// The `/metrics` payload: the same counters as `/stats`, in the
    /// Prometheus text exposition format (version 0.0.4) — counters,
    /// gauges, and the request-latency histogram in seconds.
    fn metrics_text(&self) -> String {
        let s = self.metrics.snapshot();
        let d = self.site.stats();
        let p = self.site.path_cache_stats();
        let mut m = PromText::new();
        m.counter(
            "strudel_requests_total",
            "Requests answered (any status).",
            s.requests,
        );
        m.counter(
            "strudel_request_errors_total",
            "Requests answered with a 4xx/5xx status.",
            s.errors,
        );
        m.histogram_seconds(
            "strudel_request_duration_seconds",
            "Request latency from first byte to response written.",
            &self.metrics.latency.snapshot(),
        );
        m.gauge(
            "strudel_uptime_seconds",
            "Seconds since the server bound its listener.",
            self.started.elapsed().as_secs_f64(),
        );
        m.gauge(
            "strudel_worker_threads",
            "Worker threads answering requests.",
            self.config.threads.max(1) as f64,
        );
        m.gauge(
            "strudel_eval_jobs",
            "Effective evaluator worker count for click-time expansion.",
            self.site.jobs() as f64,
        );
        m.counter(
            "strudel_accept_errors_total",
            "accept(2) failures; each pauses the acceptor with backoff.",
            s.accept_errors,
        );
        m.counter(
            "strudel_connections_aborted_total",
            "Connections closed without sending a byte (not errors).",
            s.connections_aborted,
        );
        m.counter(
            "strudel_admission_rejected_total",
            "Connections answered 503 by admission control.",
            s.admission_rejected,
        );
        m.counter(
            "strudel_keepalive_reuses_total",
            "Requests served on a reused keep-alive connection.",
            s.keepalive_reuses,
        );
        m.gauge(
            "strudel_connections_open",
            "Connections currently open.",
            s.connections_open as f64,
        );
        m.gauge(
            "strudel_connections_idle",
            "Open connections waiting between requests.",
            s.connections_idle as f64,
        );
        m.gauge(
            "strudel_connections_reading",
            "Open connections mid-request-head.",
            s.connections_reading as f64,
        );
        m.gauge(
            "strudel_connections_writing",
            "Open connections with response bytes still to flush.",
            s.connections_writing as f64,
        );
        m.counter(
            "strudel_page_cache_hits_total",
            "Click-time expansions answered from the page cache.",
            d.cache_hits,
        );
        m.counter(
            "strudel_page_cache_misses_total",
            "Click-time expansions computed by query evaluation.",
            d.cache_misses,
        );
        m.counter(
            "strudel_page_cache_evictions_total",
            "Page-cache entries evicted by the size bound.",
            d.evictions,
        );
        m.counter(
            "strudel_page_cache_invalidated_total",
            "Page-cache entries dropped by data-change deltas.",
            d.invalidated,
        );
        m.gauge(
            "strudel_page_cache_entries",
            "Pages currently cached.",
            self.site.cache_len() as f64,
        );
        m.gauge(
            "strudel_page_cache_bytes",
            "Approximate bytes held by the page cache.",
            self.site.cache_bytes() as f64,
        );
        m.counter(
            "strudel_expansions_total",
            "Logical page expansions requested.",
            d.expansions,
        );
        m.counter(
            "strudel_clause_queries_total",
            "Seeded clause evaluations run at click time.",
            d.clause_queries,
        );
        m.counter(
            "strudel_path_cache_hits_total",
            "Regular-path-expression memo-cache hits.",
            p.hits,
        );
        m.counter(
            "strudel_path_cache_misses_total",
            "Regular-path-expression memo-cache misses.",
            p.misses,
        );
        m.counter(
            "strudel_path_cache_invalidations_total",
            "Regular-path-expression memo-cache invalidations.",
            p.invalidations,
        );
        let q = self.site.plan_cache_stats();
        m.counter(
            "strudel_plan_cache_hits_total",
            "Evaluations answered with a cached compiled physical plan.",
            q.hits,
        );
        m.counter(
            "strudel_plan_cache_misses_total",
            "Conjunctions compiled into a physical plan for the first time.",
            q.misses,
        );
        m.counter(
            "strudel_plan_cache_invalidations_total",
            "Cached plans discarded because the graph changed.",
            q.invalidations,
        );
        m.counter(
            "strudel_planner_dp_fallbacks_total",
            "Cost-based plans that fell back to the greedy ordering because \
             the block exceeded the DP join-order limit.",
            strudel_struql::planner_dp_fallbacks(),
        );
        // Durable storage: the pager's page cache and the write-ahead log
        // (process-wide counters from strudel-graph's storage layer; the
        // strudel_store_* prefix keeps them distinct from the serving
        // tier's HTML page cache above).
        let st = strudel_graph::storage_stats();
        m.counter(
            "strudel_store_page_reads_total",
            "Pages read from graph-store page files.",
            st.page_reads,
        );
        m.counter(
            "strudel_store_page_writes_total",
            "Pages written to graph-store page files.",
            st.page_writes,
        );
        m.counter(
            "strudel_store_page_cache_hits_total",
            "Store page reads answered from the in-memory page cache.",
            st.page_cache_hits,
        );
        m.counter(
            "strudel_store_page_cache_misses_total",
            "Store page reads that had to touch the file.",
            st.page_cache_misses,
        );
        m.counter(
            "strudel_store_pages_leaked_total",
            "Store pages lost to freelist overflow (reclaimed by compact).",
            st.pages_leaked,
        );
        m.counter(
            "strudel_wal_frames_total",
            "Frames appended to write-ahead logs.",
            st.wal_appended_frames,
        );
        m.counter(
            "strudel_wal_commits_total",
            "Transactions made durable by a fsynced WAL commit record.",
            st.wal_commits,
        );
        m.counter(
            "strudel_wal_bytes_total",
            "Bytes appended to write-ahead logs.",
            st.wal_bytes,
        );
        m.counter(
            "strudel_wal_checkpoints_total",
            "Checkpoints folding the WAL into the page file.",
            st.wal_checkpoints,
        );
        m.counter(
            "strudel_wal_recoveries_total",
            "Store opens that replayed at least one committed WAL frame.",
            st.wal_recoveries,
        );
        m.counter(
            "strudel_wal_recovered_frames_total",
            "Committed WAL frames replayed during crash recovery.",
            st.wal_recovered_frames,
        );
        m.counter(
            "strudel_wal_torn_tails_total",
            "Torn WAL tails detected and truncated during recovery.",
            st.wal_torn_tails,
        );
        m.counter(
            "strudel_store_compactions_total",
            "Store compactions (page file rewritten minimal).",
            st.compactions,
        );
        m.counter(
            "strudel_store_page_cache_evictions_total",
            "Store pages evicted from the in-memory page cache.",
            st.page_cache_evictions,
        );
        m.counter(
            "strudel_wal_fsyncs_total",
            "WAL file data syncs (one per commit record, shared by a batch).",
            st.wal_fsyncs,
        );
        m.counter(
            "strudel_wal_group_commits_total",
            "Commit records that folded more than one transaction.",
            st.wal_group_commits,
        );
        m.counter(
            "strudel_wal_group_commit_txns_total",
            "Transactions made durable inside a group commit record.",
            st.wal_group_commit_txns,
        );
        m.counter(
            "strudel_checkpoint_pages_written_total",
            "Pages rewritten by incremental checkpoints (dirty segments).",
            st.checkpoint_pages_written,
        );
        m.counter(
            "strudel_checkpoint_pages_reused_total",
            "Pages carried over untouched across incremental checkpoints.",
            st.checkpoint_pages_reused,
        );
        m.gauge(
            "strudel_store_dirty_pages",
            "Pages the next incremental checkpoint would rewrite.",
            st.dirty_pages as f64,
        );
        m.gauge(
            "strudel_store_freelist_pages",
            "Free pages tracked in the store's active header.",
            st.freelist_pages as f64,
        );
        // Build identity and the flight recorder's own accounting.
        m.family(
            "strudel_build_info",
            "gauge",
            "Build identity (constant 1; labels carry the detail).",
        )
        .sample(
            "strudel_build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                (
                    "profile",
                    if cfg!(debug_assertions) {
                        "debug"
                    } else {
                        "release"
                    },
                ),
            ],
            1.0,
        );
        let t = trace::stats();
        m.gauge(
            "strudel_trace_enabled",
            "Whether request tracing is enabled (1) or compiled out of the \
             hot path (0).",
            if t.enabled { 1.0 } else { 0.0 },
        );
        m.counter(
            "strudel_trace_spans_recorded_total",
            "Spans written into the flight-recorder ring.",
            t.spans_recorded,
        );
        m.counter(
            "strudel_trace_spans_dropped_total",
            "Spans overwritten by ring wrap-around before export.",
            t.spans_dropped,
        );
        m.counter(
            "strudel_trace_traces_started_total",
            "Root request spans started.",
            t.traces_started,
        );
        m.counter(
            "strudel_trace_traces_sampled_total",
            "Traces picked by the head-based sampler.",
            t.traces_sampled,
        );
        m.counter(
            "strudel_trace_traces_slow_promoted_total",
            "Unsampled traces promoted for exceeding the slow threshold.",
            t.traces_slow_promoted,
        );
        m.gauge(
            "strudel_trace_ring_occupancy",
            "Live span slots in the flight-recorder ring.",
            t.ring_live as f64,
        );
        m.gauge(
            "strudel_trace_ring_capacity",
            "Flight-recorder ring capacity in span slots.",
            t.ring_capacity as f64,
        );
        m.finish()
    }
}

/// The `traces` block of `/stats`: recorder counters, per-layer self-time
/// quantiles, and the worst promoted traces with per-layer breakdowns.
fn traces_stats_json() -> String {
    let t = trace::stats();
    let mut layers = String::new();
    for (i, (name, p50, p99)) in trace::layer_quantiles().iter().enumerate() {
        if i > 0 {
            layers.push(',');
        }
        layers.push_str(&format!("\"{name}\":{{\"p50_us\":{p50},\"p99_us\":{p99}}}"));
    }
    let mut worst = String::new();
    for (i, w) in trace::worst_traces().iter().enumerate() {
        if i > 0 {
            worst.push(',');
        }
        let mut self_us = String::new();
        for (j, name) in trace::LAYER_NAMES.iter().enumerate() {
            if j > 0 {
                self_us.push(',');
            }
            self_us.push_str(&format!("\"{name}\":{}", w.layer_self_ns[j] / 1_000));
        }
        worst.push_str(&format!(
            "{{\"trace_id\":{},\"path\":\"{}\",\"duration_us\":{},\"spans\":{},\
             \"layers_self_us\":{{{self_us}}}}}",
            w.trace_id,
            strudel_obs::json::escape(&w.path),
            w.dur_ns / 1_000,
            w.spans,
        ));
    }
    format!(
        "{{\"enabled\":{},\"spans_recorded\":{},\"spans_dropped\":{},\
         \"traces_started\":{},\"traces_sampled\":{},\"traces_slow_promoted\":{},\
         \"ring_capacity\":{},\"ring_live\":{},\"sample_ppm\":{},\"slow_us\":{},\
         \"layers\":{{{layers}}},\"worst\":[{worst}]}}",
        t.enabled,
        t.spans_recorded,
        t.spans_dropped,
        t.traces_started,
        t.traces_sampled,
        t.traces_slow_promoted,
        t.ring_capacity,
        t.ring_live,
        t.sample_ppm,
        t.slow_us,
    )
}
