//! Request counters, connection-layer counters, and the latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use strudel_obs::{Counter, Histogram};

/// Everything the server counts.
///
/// Latencies land in a lock-free fixed-bucket [`Histogram`] rather than the
/// earlier mutex-guarded reservoir, whose fill phase raced the slot counter
/// against pushes. Recording is a few relaxed atomic adds, covers the
/// server's whole lifetime, and feeds `/metrics` directly.
///
/// The connection-state gauges (`conns_*`) are instantaneous: the event
/// loop publishes them after every tick; the threaded mode maintains only
/// `conns_open` (its connections have no observable idle/reading/writing
/// split — a worker owns the socket end to end).
#[derive(Default)]
pub(crate) struct Metrics {
    pub requests: Counter,
    pub errors: Counter,
    pub latency: Histogram,
    /// `accept(2)` failures (EMFILE and friends). Each one also pauses the
    /// acceptor with exponential backoff instead of busy-spinning.
    pub accept_errors: Counter,
    /// Connections that opened and closed without sending a single byte
    /// (port scans, health probes). Closed silently — *not* an error, not
    /// a request.
    pub aborted: Counter,
    /// Connections refused with 503 by admission control.
    pub admission_rejected: Counter,
    /// Requests served on an already-used keep-alive connection.
    pub keepalive_reuses: Counter,
    pub conns_open: AtomicU64,
    pub conns_idle: AtomicU64,
    pub conns_reading: AtomicU64,
    pub conns_writing: AtomicU64,
}

impl Metrics {
    pub fn record(&self, latency: Duration, is_error: bool) {
        self.requests.inc();
        if is_error {
            self.errors.inc();
        }
        self.latency
            .record(u64::try_from(latency.as_micros()).unwrap_or(u64::MAX));
    }

    pub fn set_conn_gauges(&self, open: u64, idle: u64, reading: u64, writing: u64) {
        self.conns_open.store(open, Ordering::Relaxed);
        self.conns_idle.store(idle, Ordering::Relaxed);
        self.conns_reading.store(reading, Ordering::Relaxed);
        self.conns_writing.store(writing, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServeStats {
        let lat = self.latency.snapshot();
        ServeStats {
            requests: self.requests.get(),
            errors: self.errors.get(),
            latency_p50_us: lat.quantile(0.50),
            latency_p90_us: lat.quantile(0.90),
            latency_p99_us: lat.quantile(0.99),
            latency_max_us: lat.max_us,
            accept_errors: self.accept_errors.get(),
            connections_aborted: self.aborted.get(),
            admission_rejected: self.admission_rejected.get(),
            keepalive_reuses: self.keepalive_reuses.get(),
            connections_open: self.conns_open.load(Ordering::Relaxed),
            connections_idle: self.conns_idle.load(Ordering::Relaxed),
            connections_reading: self.conns_reading.load(Ordering::Relaxed),
            connections_writing: self.conns_writing.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the server's request counters. Latency percentiles are
/// histogram estimates (the matching bucket's upper bound, clamped to the
/// exact observed maximum) over every request since the server bound.
#[derive(Default, Clone, Copy, Debug)]
pub struct ServeStats {
    /// Requests answered (any status).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: u64,
    /// Median request latency, microseconds (bucket estimate).
    pub latency_p50_us: u64,
    /// 90th-percentile request latency, microseconds (bucket estimate).
    pub latency_p90_us: u64,
    /// 99th-percentile request latency, microseconds (bucket estimate).
    pub latency_p99_us: u64,
    /// Worst request latency observed, microseconds (exact).
    pub latency_max_us: u64,
    /// `accept(2)` errors (each pauses the acceptor with backoff).
    pub accept_errors: u64,
    /// Connections closed without having sent a byte (not errors).
    pub connections_aborted: u64,
    /// Connections answered 503 by admission control.
    pub admission_rejected: u64,
    /// Requests served on a reused keep-alive connection.
    pub keepalive_reuses: u64,
    /// Connections currently open (instantaneous).
    pub connections_open: u64,
    /// Open connections waiting between requests (event mode).
    pub connections_idle: u64,
    /// Open connections mid-request-head (event mode).
    pub connections_reading: u64,
    /// Open connections with response bytes still to flush (event mode).
    pub connections_writing: u64,
}
