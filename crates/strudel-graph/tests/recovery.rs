//! Fault-injection tests for the paged store: simulated crashes (WAL
//! truncation at every byte), media corruption (bit flips in the page file
//! and the log), and snapshot isolation across concurrent commits.
//!
//! The invariant under test is the storage contract from `docs/STORAGE.md`:
//! after any single fault, reopening the store either restores exactly the
//! last durably committed revision (byte-identical graph serialization) or
//! fails with a typed `StorageCorrupt` / `StorageRecovery` error — it never
//! silently serves a wrong graph.

use std::fs;
use std::path::{Path, PathBuf};

use strudel_graph::error::GraphError;
use strudel_graph::store::{wal_path, DeltaOp, PagedStore, WireValue};
use strudel_graph::{ddl, wal, Graph};

/// A per-test scratch directory, removed on drop.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("strudel_recovery_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch { dir }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

fn sample() -> Graph {
    ddl::parse(
        r#"
collection Publications { homepage url }
object pub1 in Publications {
  title "Specifying Representations"
  year  1997
  next  &pub2
}
object pub2 in Publications {
  title "Optimizing"
  next  &pub1
}
"#,
    )
    .unwrap()
}

/// Builds a store at `path` with several WAL-resident commits and returns,
/// for each durable revision, `(revision, wal_size_at_commit, serialized
/// graph bytes)`. The first entry is the imported base revision with
/// `wal_size` equal to the empty-log size. Every other commit is a
/// group-committed batch of two transactions, so the log the fault sweeps
/// chew on contains multi-transaction commit records — the batch boundary
/// cases group commit introduces.
fn build_history(path: &Path, commits: usize) -> Vec<(u64, u64, Vec<u8>)> {
    let mut store = PagedStore::import(path, &sample()).unwrap();
    // Keep every commit in the log: no auto-checkpoint during the test.
    store.set_wal_limit(u64::MAX);
    let mut history = vec![(
        store.revision(),
        store.wal_size(),
        store.serialize().unwrap(),
    )];
    for i in 0..commits {
        if i % 2 == 1 {
            // A batch of two transactions durable as one commit record.
            let base = store.node_count();
            let txn_a = vec![
                DeltaOp::AddNode {
                    name: Some(format!("batch{i}a")),
                },
                DeltaOp::AddEdge {
                    node: base,
                    label: "title".into(),
                    value: WireValue::Str(format!("Batch {i}a")),
                },
                DeltaOp::AddToCollection {
                    collection: "Publications".into(),
                    value: WireValue::Node(base),
                },
            ];
            let txn_b = vec![
                DeltaOp::AddNode {
                    name: Some(format!("batch{i}b")),
                },
                DeltaOp::AddEdge {
                    node: base + 1,
                    label: "year".into(),
                    value: WireValue::Int(2000 + i as i64),
                },
            ];
            store.commit_batch(&[&txn_a, &txn_b]).unwrap();
        } else {
            let mut txn = store.begin();
            let node = txn.add_node(Some(&format!("extra{i}")));
            txn.add_edge(node, "title", WireValue::Str(format!("Extra {i}")));
            txn.add_edge(node, "year", WireValue::Int(2000 + i as i64));
            txn.add_to_collection("Publications", WireValue::Node(node));
            txn.commit().unwrap();
        }
        history.push((
            store.revision(),
            store.wal_size(),
            store.serialize().unwrap(),
        ));
    }
    history
}

fn assert_typed_storage_error(err: &GraphError, context: &str) {
    assert!(
        matches!(
            err,
            GraphError::StorageCorrupt { .. }
                | GraphError::StorageRecovery { .. }
                | GraphError::Storage { .. }
        ),
        "{context}: expected a typed storage error, got {err:?}"
    );
}

/// Simulated crash at every possible log length: truncating the WAL to any
/// byte count must recover exactly the newest revision whose commit record
/// fully survived — in particular every frame boundary is covered.
#[test]
fn truncating_the_wal_anywhere_recovers_the_last_durable_commit() {
    let scratch = Scratch::new("wal_truncate");
    let built = scratch.path("built.pdb");
    let history = build_history(&built, 5);
    let pages = fs::read(&built).unwrap();
    let log = fs::read(wal_path(&built)).unwrap();
    assert!(
        log.len() > wal::EMPTY_SIZE as usize,
        "test needs a non-empty log"
    );

    let victim = scratch.path("victim.pdb");
    for cut in 0..=log.len() {
        fs::write(&victim, &pages).unwrap();
        fs::write(wal_path(&victim), &log[..cut]).unwrap();
        let mut store = PagedStore::open(&victim)
            .unwrap_or_else(|e| panic!("truncation at {cut} bytes must recover: {e:?}"));
        // The newest durable revision whose commit fsync point fits the cut.
        let expected = history
            .iter()
            .rev()
            .find(|(_, wal_size, _)| *wal_size <= cut as u64)
            .unwrap_or(&history[0]);
        assert_eq!(
            store.revision(),
            expected.0,
            "truncation at {cut} bytes recovered the wrong revision"
        );
        assert_eq!(
            store.serialize().unwrap(),
            expected.2,
            "truncation at {cut} bytes recovered revision {} with wrong contents",
            expected.0
        );
    }
}

/// A bit flip anywhere in the WAL body must either drop the damaged tail
/// (recovering some earlier durable revision, content-exact) or fail with a
/// typed storage error — never produce a graph that matches no committed
/// revision.
#[test]
fn wal_bit_flips_never_yield_a_wrong_graph() {
    let scratch = Scratch::new("wal_bitflip");
    let built = scratch.path("built.pdb");
    let history = build_history(&built, 4);
    let last = history.last().unwrap().0;
    let pages = fs::read(&built).unwrap();
    let log = fs::read(wal_path(&built)).unwrap();

    let victim = scratch.path("victim.pdb");
    for byte in 0..log.len() {
        let mut flipped = log.clone();
        flipped[byte] ^= 1 << (byte % 8);
        fs::write(&victim, &pages).unwrap();
        fs::write(wal_path(&victim), &flipped).unwrap();
        match PagedStore::open(&victim) {
            Ok(mut store) => {
                let rev = store.revision();
                assert!(
                    rev <= last,
                    "flip at byte {byte} produced revision {rev} past the last commit {last}"
                );
                let expected = history
                    .iter()
                    .find(|(r, _, _)| *r == rev)
                    .unwrap_or_else(|| {
                        panic!("flip at byte {byte} recovered unknown revision {rev}")
                    });
                assert_eq!(
                    store.serialize().unwrap(),
                    expected.2,
                    "flip at byte {byte} recovered revision {rev} with wrong contents"
                );
            }
            Err(e) => assert_typed_storage_error(&e, &format!("flip at byte {byte}")),
        }
    }
}

/// A single-bit flip anywhere in the page file must either be harmless
/// (hit the stale header slot or other unreferenced bytes, with the reload
/// still byte-identical) or surface as a typed storage error. It must never
/// load a silently different graph.
#[test]
fn page_file_bit_flips_are_detected_or_harmless() {
    let scratch = Scratch::new("page_bitflip");
    let built = scratch.path("built.pdb");
    let mut store = PagedStore::import(&built, &sample()).unwrap();
    // Fold everything into pages so the WAL plays no part.
    store.checkpoint().unwrap();
    let reference = store.serialize().unwrap();
    let revision = store.revision();
    drop(store);
    let pages = fs::read(&built).unwrap();
    let log = fs::read(wal_path(&built)).unwrap();

    let victim = scratch.path("victim.pdb");
    // Stride through the file so the sweep covers every page and both
    // header slots without taking minutes; the bit index varies with the
    // offset so different bit positions are exercised.
    for byte in (0..pages.len()).step_by(13) {
        let mut flipped = pages.clone();
        flipped[byte] ^= 1 << (byte % 8);
        fs::write(&victim, &flipped).unwrap();
        fs::write(wal_path(&victim), &log).unwrap();
        match PagedStore::open(&victim) {
            Ok(mut reopened) => {
                assert_eq!(
                    reopened.revision(),
                    revision,
                    "flip at byte {byte} changed the recovered revision"
                );
                assert_eq!(
                    reopened.serialize().unwrap(),
                    reference,
                    "flip at byte {byte} silently changed the graph"
                );
            }
            Err(e) => assert_typed_storage_error(&e, &format!("flip at byte {byte}")),
        }
    }
}

/// Killing the process after a commit (drop without checkpoint) must lose
/// nothing: the reopened store is byte-identical to the working copy.
#[test]
fn reopen_after_kill_restores_the_working_copy_exactly() {
    let scratch = Scratch::new("kill_reopen");
    let path = scratch.path("data.pdb");
    let history = build_history(&path, 3);
    let (revision, _, ref bytes) = *history.last().unwrap();
    let mut reopened = PagedStore::open(&path).unwrap();
    assert_eq!(reopened.revision(), revision);
    assert_eq!(&reopened.serialize().unwrap(), bytes);
}

/// A snapshot opened before a commit keeps serving the old revision after
/// it: MVCC isolation across writers.
#[test]
fn snapshot_opened_before_a_commit_survives_it() {
    let scratch = Scratch::new("snapshot_mvcc");
    let path = scratch.path("data.pdb");
    let mut store = PagedStore::import(&path, &sample()).unwrap();
    let before = store.snapshot().unwrap();
    let nodes_before = before.graph().node_count();

    let mut txn = store.begin();
    let node = txn.add_node(Some("newcomer"));
    txn.add_edge(node, "title", WireValue::Str("After the snapshot".into()));
    let new_revision = txn.commit().unwrap();

    assert!(before.revision() < new_revision);
    assert_eq!(
        before.graph().node_count(),
        nodes_before,
        "old snapshot must not see the new commit"
    );
    let after = store.snapshot().unwrap();
    assert_eq!(after.revision(), new_revision);
    assert_eq!(after.graph().node_count(), nodes_before + 1);
}

/// Deleting the WAL outright (e.g. a crash after log reset but before any
/// append) must still open at the checkpointed revision.
#[test]
fn missing_wal_reopens_at_the_page_file_revision() {
    let scratch = Scratch::new("missing_wal");
    let path = scratch.path("data.pdb");
    let mut store = PagedStore::import(&path, &sample()).unwrap();
    let mut txn = store.begin();
    txn.add_node(Some("extra"));
    txn.commit().unwrap();
    store.checkpoint().unwrap();
    let reference = store.serialize().unwrap();
    let revision = store.revision();
    drop(store);

    fs::remove_file(wal_path(&path)).unwrap();
    let mut reopened = PagedStore::open(&path).unwrap();
    assert_eq!(reopened.revision(), revision);
    assert_eq!(reopened.serialize().unwrap(), reference);
}

fn graph_bytes(graph: &Graph) -> Vec<u8> {
    let mut buf = Vec::new();
    strudel_graph::store::save(graph, &mut buf).unwrap();
    buf
}

/// A crash at any byte of a group-committed batch — in particular between
/// the batch append and its fsync — must recover either the full batch or
/// the state before it. The batch is one commit record, so no truncation
/// point may expose one transaction of the batch without the others.
#[test]
fn group_commit_crash_never_recovers_a_partial_batch() {
    let scratch = Scratch::new("partial_batch");
    let built = scratch.path("built.pdb");
    let mut store = PagedStore::import(&built, &sample()).unwrap();
    store.set_wal_limit(u64::MAX);
    let before_bytes = store.serialize().unwrap();
    let before_rev = store.revision();

    // Three transactions group-committed as one durable unit.
    let base = store.node_count();
    let txns: Vec<Vec<DeltaOp>> = (0..3u32)
        .map(|t| {
            vec![
                DeltaOp::AddNode {
                    name: Some(format!("member{t}")),
                },
                DeltaOp::AddEdge {
                    node: base + t,
                    label: "title".into(),
                    value: WireValue::Str(format!("Member {t}")),
                },
            ]
        })
        .collect();
    let slices: Vec<&[DeltaOp]> = txns.iter().map(|t| t.as_slice()).collect();
    let batch_rev = store.commit_batch(&slices).unwrap();
    assert_eq!(batch_rev, before_rev + 1, "a batch is exactly one revision");
    let after_bytes = store.serialize().unwrap();
    drop(store);

    let pages = fs::read(&built).unwrap();
    let log = fs::read(wal_path(&built)).unwrap();
    let victim = scratch.path("victim.pdb");
    for cut in 0..=log.len() {
        fs::write(&victim, &pages).unwrap();
        fs::write(wal_path(&victim), &log[..cut]).unwrap();
        let mut reopened = PagedStore::open(&victim)
            .unwrap_or_else(|e| panic!("truncation at {cut} bytes must recover: {e:?}"));
        let got = reopened.serialize().unwrap();
        if reopened.revision() == batch_rev {
            assert_eq!(
                got, after_bytes,
                "cut at {cut}: batch revision recovered with partial contents"
            );
        } else {
            assert_eq!(reopened.revision(), before_rev, "cut at {cut}");
            assert_eq!(
                got, before_bytes,
                "cut at {cut}: pre-batch revision recovered with wrong contents"
            );
        }
    }
}

/// Snapshot stability property: a snapshot pinned at an arbitrary point
/// keeps reading byte-identical contents no matter what mix of commits,
/// group commits, incremental checkpoints, and compactions follows it.
/// The interleaving is driven by a deterministic LCG so failures replay.
#[test]
fn snapshots_stay_byte_identical_across_arbitrary_interleavings() {
    let scratch = Scratch::new("snapshot_property");
    let path = scratch.path("data.pdb");
    let mut store = PagedStore::import(&path, &sample()).unwrap();
    let mut pinned: Vec<(strudel_graph::store::Snapshot, u64, Vec<u8>)> = Vec::new();
    let mut state: u64 = 0x5157_5544_454c_0009;

    for step in 0..60u32 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let roll = (state >> 33) % 10;
        if step % 6 == 0 {
            // Pin a snapshot and record the canonical bytes it must keep
            // serving. Materialization is deferred: the graph is first
            // realized *after* later checkpoints/compactions have moved
            // the pages underneath it.
            let expected = store.serialize().unwrap();
            let snap = store.snapshot().unwrap();
            pinned.push((snap, store.revision(), expected));
        }
        match roll {
            0..=5 => {
                let mut txn = store.begin();
                let node = txn.add_node(Some(&format!("step{step}")));
                txn.add_edge(node, "year", WireValue::Int(step as i64));
                if roll.is_multiple_of(2) {
                    txn.add_to_collection("Publications", WireValue::Node(node));
                }
                txn.commit().unwrap();
            }
            6 => {
                let base = store.node_count();
                let a = vec![DeltaOp::AddNode {
                    name: Some(format!("batch{step}a")),
                }];
                let b = vec![DeltaOp::AddEdge {
                    node: base,
                    label: "title".into(),
                    value: WireValue::Str(format!("Batch {step}")),
                }];
                store.commit_batch(&[&a, &b]).unwrap();
            }
            7 | 8 => store.checkpoint().unwrap(),
            _ => {
                let _ = store.compact().unwrap();
            }
        }
    }

    assert!(pinned.len() >= 10, "property needs many pin points");
    for (snap, revision, expected) in &pinned {
        assert_eq!(snap.revision(), *revision);
        assert_eq!(
            &graph_bytes(snap.graph()),
            expected,
            "snapshot at revision {revision} drifted after later mutations"
        );
    }
}
