//! The labeled directed graph: STRUDEL's only data structure.
//!
//! Both the raw data served by a site (the *data graph*) and the generated
//! site structure (the *site graph*) are represented the same way (§2.1).
//! Node storage lives in a [`Universe`] shared by all graphs of a
//! [`crate::Database`], so graphs may share objects: a site graph may link to
//! nodes of the data graph it was derived from without copying them.
//!
//! A [`Graph`] is a *membership view* over the universe — the set of nodes it
//! contains — plus its own named collections (the query entry points) and,
//! optionally, a full set of indexes over its schema and data ([`crate::index`]).

use crate::error::{GraphError, Result};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::index::GraphIndex;
use crate::symbol::{Interner, Sym};
use crate::value::Value;
use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Allocator for globally unique graph identities (see [`Graph::cache_stamp`]).
static GRAPH_IDS: AtomicU64 = AtomicU64::new(1);

/// An identity + version fingerprint of a graph's queryable state. Two equal
/// stamps guarantee the same graph object with the same nodes, edges,
/// collections, and index state (and an unchanged universe, so edges added
/// to shared nodes through *other* graphs are covered too). Query-result
/// caches key on this to self-invalidate when data changes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheStamp {
    graph_id: u64,
    graph_revision: u64,
    universe_revision: u64,
}

impl CacheStamp {
    /// Whether two stamps name the same graph object in the same local
    /// state, ignoring the universe revision. Caches whose contents depend
    /// only on the graph's *own* members, edges, collections and index flag
    /// (the query planner's statistics, for example) validate with this:
    /// construction allocating output nodes in the shared universe must not
    /// evict them mid-build.
    pub fn same_graph(&self, other: &CacheStamp) -> bool {
        self.graph_id == other.graph_id && self.graph_revision == other.graph_revision
    }
}

/// A unique object identifier. Oids are allocated by a [`Universe`] and are
/// unique across every graph of a database.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{}", self.0)
    }
}

/// A directed, labeled edge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Edge label (an interned attribute name).
    pub label: Sym,
    /// Target object: a node or an atomic value.
    pub to: Value,
}

#[derive(Default, Clone)]
struct NodeSlot {
    /// Human-readable provenance: Skolem term (`YearPage(1997)`) or wrapper
    /// object name (`pub1`). Used for display and deterministic file naming.
    name: Option<Arc<str>>,
    out: Vec<(Sym, Value)>,
}

/// The shared object space of a database: the interner for labels and the
/// arena of all nodes with their outgoing edges.
///
/// Edges are stored in the universe rather than per graph so that a node
/// shared between a data graph and a site graph presents the same attributes
/// in both.
pub struct Universe {
    interner: Interner,
    nodes: RwLock<Vec<NodeSlot>>,
    /// Bumped on every node or edge mutation anywhere in the universe.
    revision: AtomicU64,
}

impl Universe {
    /// Creates an empty universe.
    pub fn new() -> Arc<Self> {
        Arc::new(Universe {
            interner: Interner::new(),
            nodes: RwLock::new(Vec::new()),
            revision: AtomicU64::new(0),
        })
    }

    /// The shared label/collection-name interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The universe's mutation counter (see [`CacheStamp`]).
    pub fn revision(&self) -> u64 {
        self.revision.load(Ordering::Acquire)
    }

    /// Allocates a fresh node, optionally with a provenance name.
    pub fn create_node(&self, name: Option<&str>) -> NodeId {
        self.revision.fetch_add(1, Ordering::AcqRel);
        let mut nodes = self.nodes.write();
        let id = NodeId(u32::try_from(nodes.len()).expect("oid space exhausted"));
        nodes.push(NodeSlot {
            name: name.map(Arc::from),
            out: Vec::new(),
        });
        id
    }

    /// Total number of nodes ever allocated.
    pub fn node_count(&self) -> usize {
        self.nodes.read().len()
    }

    /// The provenance name of a node, if any.
    pub fn node_name(&self, n: NodeId) -> Option<Arc<str>> {
        self.nodes
            .read()
            .get(n.0 as usize)
            .and_then(|s| s.name.clone())
    }

    /// Sets or replaces the provenance name of a node.
    pub fn set_node_name(&self, n: NodeId, name: &str) {
        if let Some(slot) = self.nodes.write().get_mut(n.0 as usize) {
            slot.name = Some(Arc::from(name));
        }
    }

    fn push_edge(&self, from: NodeId, label: Sym, to: Value) -> Result<()> {
        self.revision.fetch_add(1, Ordering::AcqRel);
        let mut nodes = self.nodes.write();
        let slot = nodes
            .get_mut(from.0 as usize)
            .ok_or(GraphError::UnknownNode(from))?;
        slot.out.push((label, to));
        Ok(())
    }

    /// Removes one occurrence of `from --label--> to`, preserving the order
    /// of the remaining edges. Returns whether an edge was removed.
    fn pop_edge(&self, from: NodeId, label: Sym, to: &Value) -> Result<bool> {
        self.revision.fetch_add(1, Ordering::AcqRel);
        let mut nodes = self.nodes.write();
        let slot = nodes
            .get_mut(from.0 as usize)
            .ok_or(GraphError::UnknownNode(from))?;
        match slot.out.iter().position(|(l, t)| *l == label && t == to) {
            Some(pos) => {
                slot.out.remove(pos);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Clones the outgoing edges of `n`. Prefer [`Graph::reader`] in loops.
    pub fn out_edges(&self, n: NodeId) -> Vec<(Sym, Value)> {
        self.nodes
            .read()
            .get(n.0 as usize)
            .map(|s| s.out.clone())
            .unwrap_or_default()
    }
}

impl Default for Universe {
    fn default() -> Self {
        Universe {
            interner: Interner::new(),
            nodes: RwLock::new(Vec::new()),
            revision: AtomicU64::new(0),
        }
    }
}

impl fmt::Debug for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Universe")
            .field("nodes", &self.node_count())
            .finish()
    }
}

/// A named collection: an insertion-ordered set of objects.
#[derive(Default, Clone, Debug)]
pub struct Collection {
    items: Vec<Value>,
    set: FxHashSet<Value>,
}

impl Collection {
    /// The members in insertion order.
    pub fn items(&self) -> &[Value] {
        &self.items
    }

    /// Whether `v` is a member.
    pub fn contains(&self, v: &Value) -> bool {
        self.set.contains(v)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn insert(&mut self, v: Value) -> bool {
        if self.set.insert(v.clone()) {
            self.items.push(v);
            true
        } else {
            false
        }
    }

    fn remove(&mut self, v: &Value) -> bool {
        if self.set.remove(v) {
            if let Some(pos) = self.items.iter().position(|x| x == v) {
                self.items.remove(pos);
            }
            true
        } else {
            false
        }
    }
}

/// A labeled directed graph over a shared [`Universe`].
pub struct Graph {
    universe: Arc<Universe>,
    members: FxHashSet<NodeId>,
    member_list: Vec<NodeId>,
    collections: FxHashMap<Sym, Collection>,
    collection_order: Vec<Sym>,
    index: Option<GraphIndex>,
    edge_count: usize,
    /// Globally unique identity of this graph object (see [`CacheStamp`]).
    id: u64,
    /// Bumped on every membership/collection/index mutation of this graph.
    revision: u64,
}

impl Graph {
    /// Creates an empty, indexed graph in `universe`.
    pub fn new(universe: Arc<Universe>) -> Self {
        Graph {
            universe,
            members: FxHashSet::default(),
            member_list: Vec::new(),
            collections: FxHashMap::default(),
            collection_order: Vec::new(),
            index: Some(GraphIndex::default()),
            edge_count: 0,
            id: GRAPH_IDS.fetch_add(1, Ordering::Relaxed),
            revision: 0,
        }
    }

    /// The current identity + version fingerprint of this graph's queryable
    /// state. Any mutation of the graph (or of its universe, through any
    /// graph sharing it) yields a different stamp.
    pub fn cache_stamp(&self) -> CacheStamp {
        CacheStamp {
            graph_id: self.id,
            graph_revision: self.revision,
            universe_revision: self.universe.revision(),
        }
    }

    /// Creates an empty graph in a fresh private universe. Convenient for
    /// tests and standalone use.
    pub fn standalone() -> Self {
        Graph::new(Universe::new())
    }

    /// The universe this graph lives in.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Interns a label or collection name.
    pub fn sym(&self, s: &str) -> Sym {
        self.universe.interner.intern(s)
    }

    /// Resolves a symbol to its string.
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        self.universe.interner.resolve(sym)
    }

    /// Disables or enables index maintenance. Disabling drops the current
    /// index; re-enabling rebuilds it from scratch. Used by the `A-OPT`
    /// ablation benchmarks (indexes on/off, DESIGN.md §4).
    pub fn set_indexing(&mut self, enabled: bool) {
        self.revision += 1;
        match (enabled, self.index.is_some()) {
            (true, false) => self.rebuild_index(),
            (false, true) => self.index = None,
            _ => {}
        }
    }

    /// Whether this graph maintains indexes.
    pub fn is_indexed(&self) -> bool {
        self.index.is_some()
    }

    /// The graph's index, if indexing is enabled.
    pub fn index(&self) -> Option<&GraphIndex> {
        self.index.as_ref()
    }

    /// Rebuilds all indexes from the current data.
    pub fn rebuild_index(&mut self) {
        self.revision += 1;
        let mut idx = GraphIndex::default();
        {
            let nodes = self.universe.nodes.read();
            for &n in &self.member_list {
                for (label, to) in &nodes[n.0 as usize].out {
                    idx.index_edge(n, *label, to);
                }
            }
        }
        for (&name, coll) in &self.collections {
            idx.index_collection(name, coll.len());
        }
        self.index = Some(idx);
    }

    // ---- nodes ----

    /// Creates a fresh node in this graph.
    pub fn new_node(&mut self, name: Option<&str>) -> NodeId {
        self.revision += 1;
        let id = self.universe.create_node(name);
        self.members.insert(id);
        self.member_list.push(id);
        id
    }

    /// Adopts an existing node of the universe into this graph, making its
    /// current edges visible (and indexed) here. Used when a site graph
    /// references data-graph nodes, and by query composition.
    pub fn adopt_node(&mut self, n: NodeId) -> Result<()> {
        self.revision += 1;
        if n.0 as usize >= self.universe.node_count() {
            return Err(GraphError::UnknownNode(n));
        }
        if self.members.insert(n) {
            self.member_list.push(n);
            let nodes = self.universe.nodes.read();
            let out = &nodes[n.0 as usize].out;
            self.edge_count += out.len();
            if let Some(idx) = &mut self.index {
                for (label, to) in out {
                    idx.index_edge(n, *label, to);
                }
            }
        }
        Ok(())
    }

    /// Whether `n` is a member of this graph.
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.members.contains(&n)
    }

    /// Member nodes in insertion order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.member_list
    }

    /// Number of member nodes.
    pub fn node_count(&self) -> usize {
        self.member_list.len()
    }

    /// Number of edges out of member nodes.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The provenance name of a node.
    pub fn node_name(&self, n: NodeId) -> Option<Arc<str>> {
        self.universe.node_name(n)
    }

    // ---- edges ----

    /// Adds an edge `from --label--> to`. `from` must be a member node.
    pub fn add_edge(&mut self, from: NodeId, label: Sym, to: Value) -> Result<()> {
        self.revision += 1;
        if !self.members.contains(&from) {
            return Err(GraphError::NotAMember(from));
        }
        self.universe.push_edge(from, label, to.clone())?;
        self.edge_count += 1;
        if let Some(idx) = &mut self.index {
            idx.index_edge(from, label, &to);
        }
        Ok(())
    }

    /// Convenience: adds an edge with a string label.
    pub fn add_edge_str(&mut self, from: NodeId, label: &str, to: impl Into<Value>) -> Result<()> {
        let l = self.sym(label);
        self.add_edge(from, l, to.into())
    }

    /// Removes one occurrence of the edge `from --label--> to`. `from` must
    /// be a member node. Returns whether an edge was actually removed
    /// (set semantics: removing an absent edge is a no-op, not an error).
    pub fn remove_edge(&mut self, from: NodeId, label: Sym, to: &Value) -> Result<bool> {
        self.revision += 1;
        if !self.members.contains(&from) {
            return Err(GraphError::NotAMember(from));
        }
        let removed = self.universe.pop_edge(from, label, to)?;
        if removed {
            self.edge_count -= 1;
            if let Some(idx) = &mut self.index {
                idx.unindex_edge(from, label, to);
            }
        }
        Ok(removed)
    }

    /// Convenience: removes an edge by string label. An un-interned label
    /// means no such edge exists anywhere, so this returns `Ok(false)`.
    pub fn remove_edge_str(&mut self, from: NodeId, label: &str, to: &Value) -> Result<bool> {
        match self.universe.interner.get(label) {
            Some(l) => self.remove_edge(from, l, to),
            None => Ok(false),
        }
    }

    /// Whether the edge `from --label--> to` is present (on a member node).
    pub fn has_edge(&self, from: NodeId, label: Sym, to: &Value) -> bool {
        if !self.members.contains(&from) {
            return false;
        }
        let nodes = self.universe.nodes.read();
        nodes
            .get(from.0 as usize)
            .is_some_and(|s| s.out.iter().any(|(l, t)| *l == label && t == to))
    }

    /// Removes `n` from this graph's membership (the node itself — and edges
    /// *into* it from other members — stay in the universe; its outgoing
    /// edges stop counting toward this graph). Returns whether `n` was a
    /// member. The mirror of [`Graph::adopt_node`].
    pub fn remove_member(&mut self, n: NodeId) -> bool {
        self.revision += 1;
        if !self.members.remove(&n) {
            return false;
        }
        self.member_list.retain(|m| *m != n);
        let nodes = self.universe.nodes.read();
        let out = nodes
            .get(n.0 as usize)
            .map(|s| s.out.as_slice())
            .unwrap_or(&[]);
        self.edge_count -= out.len();
        if let Some(idx) = &mut self.index {
            for (label, to) in out {
                idx.unindex_edge(n, *label, to);
            }
        }
        true
    }

    /// Clones the outgoing edges of `n`. For bulk traversal use [`Graph::reader`].
    pub fn out_edges(&self, n: NodeId) -> Vec<(Sym, Value)> {
        self.universe.out_edges(n)
    }

    /// Iterates all edges of the graph (cloned), in deterministic order.
    pub fn edges(&self) -> Vec<Edge> {
        let nodes = self.universe.nodes.read();
        let mut out = Vec::with_capacity(self.edge_count);
        for &n in &self.member_list {
            for (label, to) in &nodes[n.0 as usize].out {
                out.push(Edge {
                    from: n,
                    label: *label,
                    to: to.clone(),
                });
            }
        }
        out
    }

    /// A read guard giving borrowed, allocation-free access to edges.
    pub fn reader(&self) -> GraphReader<'_> {
        GraphReader {
            graph: self,
            nodes: self.universe.nodes.read(),
        }
    }

    // ---- collections ----

    /// Creates (or gets) a collection by name and returns its symbol.
    pub fn ensure_collection(&mut self, name: &str) -> Sym {
        self.revision += 1;
        let sym = self.sym(name);
        if let std::collections::hash_map::Entry::Vacant(e) = self.collections.entry(sym) {
            e.insert(Collection::default());
            self.collection_order.push(sym);
            if let Some(idx) = &mut self.index {
                idx.index_collection(sym, 0);
            }
        }
        sym
    }

    /// Adds `v` to the named collection, creating the collection if needed.
    /// Returns `true` if the value was newly inserted.
    pub fn add_to_collection(&mut self, name: Sym, v: Value) -> bool {
        self.revision += 1;
        let is_new_coll = !self.collections.contains_key(&name);
        if is_new_coll {
            self.collections.insert(name, Collection::default());
            self.collection_order.push(name);
        }
        let inserted = self
            .collections
            .get_mut(&name)
            .expect("just ensured")
            .insert(v);
        if let Some(idx) = &mut self.index {
            let len = self.collections[&name].len();
            idx.index_collection(name, len);
        }
        inserted
    }

    /// Convenience: adds to a collection by string name.
    pub fn add_to_collection_str(&mut self, name: &str, v: impl Into<Value>) -> bool {
        let sym = self.sym(name);
        self.add_to_collection(sym, v.into())
    }

    /// Removes `v` from the named collection. Returns whether it was a
    /// member. The (empty) collection itself stays registered.
    pub fn remove_from_collection(&mut self, name: Sym, v: &Value) -> bool {
        self.revision += 1;
        let Some(coll) = self.collections.get_mut(&name) else {
            return false;
        };
        let removed = coll.remove(v);
        if removed {
            if let Some(idx) = &mut self.index {
                let len = self.collections[&name].len();
                idx.index_collection(name, len);
            }
        }
        removed
    }

    /// Convenience: removes from a collection by string name.
    pub fn remove_from_collection_str(&mut self, name: &str, v: &Value) -> bool {
        match self.universe.interner.get(name) {
            Some(sym) => self.remove_from_collection(sym, v),
            None => false,
        }
    }

    /// Looks up a collection by symbol.
    pub fn collection(&self, name: Sym) -> Option<&Collection> {
        self.collections.get(&name)
    }

    /// Looks up a collection by string name.
    pub fn collection_str(&self, name: &str) -> Option<&Collection> {
        let sym = self.universe.interner.get(name)?;
        self.collections.get(&sym)
    }

    /// All collection names, in creation order.
    pub fn collection_names(&self) -> &[Sym] {
        &self.collection_order
    }

    // ---- schema queries (the §2.2 schema index fallbacks) ----

    /// All distinct edge labels of the graph. Uses the schema index when
    /// available, otherwise scans.
    pub fn labels(&self) -> Vec<Sym> {
        if let Some(idx) = &self.index {
            return idx.labels();
        }
        let nodes = self.universe.nodes.read();
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for &n in &self.member_list {
            for (label, _) in &nodes[n.0 as usize].out {
                if seen.insert(*label) {
                    out.push(*label);
                }
            }
        }
        out
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count)
            .field("collections", &self.collection_order.len())
            .field("indexed", &self.index.is_some())
            .finish()
    }
}

/// Borrowed, lock-held access to a graph's edges for traversal-heavy code
/// (the query evaluator, the HTML generator). Holding a `GraphReader` blocks
/// writers to the universe; drop it before mutating.
pub struct GraphReader<'g> {
    graph: &'g Graph,
    nodes: parking_lot::RwLockReadGuard<'g, Vec<NodeSlot>>,
}

impl<'g> GraphReader<'g> {
    /// The outgoing edges of `n`, borrowed.
    #[inline]
    pub fn out(&self, n: NodeId) -> &[(Sym, Value)] {
        self.nodes
            .get(n.0 as usize)
            .map(|s| s.out.as_slice())
            .unwrap_or(&[])
    }

    /// The values of attribute `label` on node `n`, in insertion order.
    pub fn attr_values<'a>(
        &'a self,
        n: NodeId,
        label: Sym,
    ) -> impl Iterator<Item = &'a Value> + 'a {
        self.out(n)
            .iter()
            .filter(move |(l, _)| *l == label)
            .map(|(_, v)| v)
    }

    /// The first value of attribute `label` on node `n`.
    pub fn attr(&self, n: NodeId, label: Sym) -> Option<&Value> {
        self.attr_values(n, label).next()
    }

    /// Graph membership test.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.graph.contains_node(n)
    }

    /// The provenance name of `n`.
    pub fn name(&self, n: NodeId) -> Option<&str> {
        self.nodes.get(n.0 as usize).and_then(|s| s.name.as_deref())
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Graph {
        let mut g = Graph::standalone();
        let pubs = g.ensure_collection("Publications");
        let p1 = g.new_node(Some("pub1"));
        let p2 = g.new_node(Some("pub2"));
        g.add_to_collection(pubs, Value::Node(p1));
        g.add_to_collection(pubs, Value::Node(p2));
        g.add_edge_str(p1, "title", "Specifying Representations")
            .unwrap();
        g.add_edge_str(p1, "year", 1997i64).unwrap();
        g.add_edge_str(p1, "author", "Norman Ramsey").unwrap();
        g.add_edge_str(p1, "author", "Mary Fernandez").unwrap();
        g.add_edge_str(p2, "title", "Optimizing Regular").unwrap();
        g.add_edge_str(p2, "year", 1998i64).unwrap();
        g
    }

    #[test]
    fn nodes_and_edges_accumulate() {
        let g = small();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.edges().len(), 6);
    }

    #[test]
    fn collections_deduplicate() {
        let mut g = small();
        let n = g.nodes()[0];
        let c = g.ensure_collection("Publications");
        assert!(!g.add_to_collection(c, Value::Node(n)));
        assert_eq!(g.collection(c).unwrap().len(), 2);
    }

    #[test]
    fn multi_valued_attributes_preserve_order() {
        let g = small();
        let n = g.nodes()[0];
        let author = g.universe().interner().get("author").unwrap();
        let r = g.reader();
        let authors: Vec<String> = r.attr_values(n, author).map(|v| v.to_string()).collect();
        assert_eq!(authors, vec!["\"Norman Ramsey\"", "\"Mary Fernandez\""]);
    }

    #[test]
    fn irregular_schema_is_allowed() {
        // pub1 has `author`, pub2 does not — no error, just absent.
        let g = small();
        let n2 = g.nodes()[1];
        let author = g.universe().interner().get("author").unwrap();
        assert!(g.reader().attr(n2, author).is_none());
    }

    #[test]
    fn add_edge_to_non_member_fails() {
        let mut g = Graph::standalone();
        let other = g.universe().create_node(None); // allocated but never joined
        let l = g.sym("x");
        assert!(matches!(
            g.add_edge(other, l, Value::Int(1)),
            Err(GraphError::NotAMember(_))
        ));
    }

    #[test]
    fn shared_universe_allows_cross_graph_references() {
        let uni = Universe::new();
        let mut data = Graph::new(Arc::clone(&uni));
        let mut site = Graph::new(Arc::clone(&uni));
        let d = data.new_node(Some("article"));
        data.add_edge_str(d, "headline", "News!").unwrap();
        let s = site.new_node(Some("Page()"));
        site.add_edge_str(s, "Story", Value::Node(d)).unwrap();
        // The site graph can adopt the data node and see its attributes.
        site.adopt_node(d).unwrap();
        let headline = uni.interner().get("headline").unwrap();
        assert_eq!(site.reader().attr(d, headline), Some(&Value::str("News!")));
    }

    #[test]
    fn adopt_is_idempotent() {
        let uni = Universe::new();
        let mut a = Graph::new(Arc::clone(&uni));
        let n = a.new_node(None);
        a.add_edge_str(n, "k", 1i64).unwrap();
        let mut b = Graph::new(Arc::clone(&uni));
        b.adopt_node(n).unwrap();
        b.adopt_node(n).unwrap();
        assert_eq!(b.node_count(), 1);
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn adopt_unknown_node_fails() {
        let mut g = Graph::standalone();
        assert!(g.adopt_node(NodeId(999)).is_err());
    }

    #[test]
    fn labels_with_and_without_index_agree() {
        let mut g = small();
        let mut with: Vec<_> = g
            .labels()
            .iter()
            .map(|s| g.resolve(*s).to_string())
            .collect();
        g.set_indexing(false);
        let mut without: Vec<_> = g
            .labels()
            .iter()
            .map(|s| g.resolve(*s).to_string())
            .collect();
        with.sort();
        without.sort();
        assert_eq!(with, vec!["author", "title", "year"]);
        assert_eq!(with, without);
    }

    #[test]
    fn reindexing_restores_index() {
        let mut g = small();
        g.set_indexing(false);
        assert!(!g.is_indexed());
        g.set_indexing(true);
        assert!(g.is_indexed());
        let year = g.universe().interner().get("year").unwrap();
        assert_eq!(g.index().unwrap().edges_with_label(year).len(), 2);
    }

    #[test]
    fn node_names_survive() {
        let g = small();
        assert_eq!(g.node_name(g.nodes()[0]).as_deref(), Some("pub1"));
        assert_eq!(g.node_name(g.nodes()[1]).as_deref(), Some("pub2"));
    }

    #[test]
    fn remove_edge_updates_counts_and_index() {
        let mut g = small();
        let p1 = g.nodes()[0];
        let year = g.universe().interner().get("year").unwrap();
        let stamp = g.cache_stamp();
        assert!(g.remove_edge(p1, year, &Value::Int(1997)).unwrap());
        assert_ne!(g.cache_stamp(), stamp, "removal must invalidate caches");
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.index().unwrap().edges_with_label(year).len(), 1);
        assert!(!g.has_edge(p1, year, &Value::Int(1997)));
        // Removing again is a no-op, not an error.
        assert!(!g.remove_edge(p1, year, &Value::Int(1997)).unwrap());
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn remove_edge_drops_emptied_label_from_schema() {
        let mut g = small();
        let p1 = g.nodes()[0];
        let title = g.universe().interner().get("title").unwrap();
        g.remove_edge(p1, title, &Value::str("Specifying Representations"))
            .unwrap();
        // "title" still on pub2, so it survives the schema scan...
        assert!(g.labels().contains(&title));
        let p2 = g.nodes()[1];
        g.remove_edge(p2, title, &Value::str("Optimizing Regular"))
            .unwrap();
        // ...but vanishes once its extension empties, with and without index.
        let mut with: Vec<_> = g.labels();
        g.set_indexing(false);
        let mut without: Vec<_> = g.labels();
        with.sort();
        without.sort();
        assert!(!with.contains(&title));
        assert_eq!(with, without);
    }

    #[test]
    fn remove_edge_only_removes_one_occurrence() {
        let mut g = Graph::standalone();
        let n = g.new_node(None);
        g.add_edge_str(n, "k", 7i64).unwrap();
        g.add_edge_str(n, "k", 7i64).unwrap();
        let k = g.universe().interner().get("k").unwrap();
        assert!(g.remove_edge(n, k, &Value::Int(7)).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(n, k, &Value::Int(7)));
    }

    #[test]
    fn remove_edge_on_non_member_fails() {
        let mut g = Graph::standalone();
        let other = g.universe().create_node(None);
        let l = g.sym("x");
        assert!(matches!(
            g.remove_edge(other, l, &Value::Int(1)),
            Err(GraphError::NotAMember(_))
        ));
        assert!(!g
            .remove_edge_str(other, "never-interned", &Value::Int(1))
            .unwrap());
    }

    #[test]
    fn remove_member_mirrors_adopt() {
        let uni = Universe::new();
        let mut a = Graph::new(Arc::clone(&uni));
        let n = a.new_node(Some("n"));
        a.add_edge_str(n, "k", 1i64).unwrap();
        let mut b = Graph::new(Arc::clone(&uni));
        b.adopt_node(n).unwrap();
        assert_eq!((b.node_count(), b.edge_count()), (1, 1));
        assert!(b.remove_member(n));
        assert!(!b.remove_member(n));
        assert_eq!((b.node_count(), b.edge_count()), (0, 0));
        let k = uni.interner().get("k").unwrap();
        assert!(b.index().unwrap().edges_with_label(k).is_empty());
        // The node and its edges are untouched in the owning graph.
        assert_eq!((a.node_count(), a.edge_count()), (1, 1));
    }

    #[test]
    fn remove_from_collection_keeps_order_and_registration() {
        let mut g = small();
        let pubs = g.universe().interner().get("Publications").unwrap();
        let (p1, p2) = (g.nodes()[0], g.nodes()[1]);
        assert!(g.remove_from_collection(pubs, &Value::Node(p1)));
        assert!(!g.remove_from_collection(pubs, &Value::Node(p1)));
        let coll = g.collection(pubs).unwrap();
        assert_eq!(coll.items(), &[Value::Node(p2)]);
        assert!(!coll.contains(&Value::Node(p1)));
        assert_eq!(g.index().unwrap().collection_cardinality(pubs), Some(1));
        // Emptied collections stay registered (same as ensure_collection).
        assert!(g.remove_from_collection_str("Publications", &Value::Node(p2)));
        assert!(g.collection(pubs).unwrap().is_empty());
        assert!(g.collection_names().contains(&pubs));
        assert!(!g.remove_from_collection_str("NoSuch", &Value::Int(0)));
    }
}
