//! Process-wide storage-layer counters.
//!
//! The pager and write-ahead log count their work into one static set of
//! relaxed atomics, mirroring how `strudel_struql::planner_dp_fallbacks`
//! surfaces planner events: the serving tier scrapes a [`StorageStats`]
//! snapshot into `/stats` and `/metrics` without needing a handle to any
//! particular [`crate::store::PagedStore`] instance. Counters are
//! monotonic over the process lifetime (Prometheus `_total` semantics).

use std::sync::atomic::{AtomicU64, Ordering};

/// One relaxed monotonic counter.
#[derive(Default)]
pub(crate) struct Cell(AtomicU64);

impl Cell {
    pub(crate) fn inc(&self) {
        self.add(1);
    }

    pub(crate) fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The storage-layer counter set (see [`storage_stats`]).
#[derive(Default)]
pub(crate) struct StorageCounters {
    /// Pages read from a page file (cache misses included).
    pub page_reads: Cell,
    /// Pages written to a page file (chain pages and header slots).
    pub page_writes: Cell,
    /// Page reads answered from the in-memory page cache.
    pub page_cache_hits: Cell,
    /// Page reads that had to touch the file.
    pub page_cache_misses: Cell,
    /// Pages lost to header-freelist overflow (reclaimed by `compact`).
    pub pages_leaked: Cell,
    /// Frames appended to a write-ahead log.
    pub wal_appended_frames: Cell,
    /// Commit records made durable (fsynced) in a write-ahead log.
    pub wal_commits: Cell,
    /// Bytes appended to a write-ahead log.
    pub wal_bytes: Cell,
    /// Checkpoints: WAL contents folded into the page file.
    pub wal_checkpoints: Cell,
    /// Store opens that replayed at least one committed WAL frame.
    pub wal_recoveries: Cell,
    /// Committed frames replayed into the graph during recovery.
    pub wal_recovered_frames: Cell,
    /// Torn WAL tails detected (and truncated) during recovery.
    pub wal_torn_tails: Cell,
    /// Store compactions (page file rewritten minimal).
    pub compactions: Cell,
}

pub(crate) static STORAGE: StorageCounters = StorageCounters {
    page_reads: Cell(AtomicU64::new(0)),
    page_writes: Cell(AtomicU64::new(0)),
    page_cache_hits: Cell(AtomicU64::new(0)),
    page_cache_misses: Cell(AtomicU64::new(0)),
    pages_leaked: Cell(AtomicU64::new(0)),
    wal_appended_frames: Cell(AtomicU64::new(0)),
    wal_commits: Cell(AtomicU64::new(0)),
    wal_bytes: Cell(AtomicU64::new(0)),
    wal_checkpoints: Cell(AtomicU64::new(0)),
    wal_recoveries: Cell(AtomicU64::new(0)),
    wal_recovered_frames: Cell(AtomicU64::new(0)),
    wal_torn_tails: Cell(AtomicU64::new(0)),
    compactions: Cell(AtomicU64::new(0)),
};

/// A snapshot of the process-wide storage counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    /// Pages read from page files.
    pub page_reads: u64,
    /// Pages written to page files.
    pub page_writes: u64,
    /// Page reads answered from the page cache.
    pub page_cache_hits: u64,
    /// Page reads that missed the page cache.
    pub page_cache_misses: u64,
    /// Pages lost to freelist overflow (reclaimed by compaction).
    pub pages_leaked: u64,
    /// WAL frames appended.
    pub wal_appended_frames: u64,
    /// WAL commit records made durable.
    pub wal_commits: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
    /// Checkpoints performed.
    pub wal_checkpoints: u64,
    /// Opens that replayed committed WAL frames.
    pub wal_recoveries: u64,
    /// Committed WAL frames replayed during recovery.
    pub wal_recovered_frames: u64,
    /// Torn WAL tails detected and truncated.
    pub wal_torn_tails: u64,
    /// Store compactions.
    pub compactions: u64,
}

/// Snapshots the process-wide storage counters (page cache, WAL, recovery).
pub fn storage_stats() -> StorageStats {
    let c = &STORAGE;
    StorageStats {
        page_reads: c.page_reads.get(),
        page_writes: c.page_writes.get(),
        page_cache_hits: c.page_cache_hits.get(),
        page_cache_misses: c.page_cache_misses.get(),
        pages_leaked: c.pages_leaked.get(),
        wal_appended_frames: c.wal_appended_frames.get(),
        wal_commits: c.wal_commits.get(),
        wal_bytes: c.wal_bytes.get(),
        wal_checkpoints: c.wal_checkpoints.get(),
        wal_recoveries: c.wal_recoveries.get(),
        wal_recovered_frames: c.wal_recovered_frames.get(),
        wal_torn_tails: c.wal_torn_tails.get(),
        compactions: c.compactions.get(),
    }
}
