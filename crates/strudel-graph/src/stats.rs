//! Process-wide storage-layer counters.
//!
//! The pager and write-ahead log count their work into one static set of
//! relaxed atomics, mirroring how `strudel_struql::planner_dp_fallbacks`
//! surfaces planner events: the serving tier scrapes a [`StorageStats`]
//! snapshot into `/stats` and `/metrics` without needing a handle to any
//! particular [`crate::store::PagedStore`] instance. Counters are
//! monotonic over the process lifetime (Prometheus `_total` semantics).

use std::sync::atomic::{AtomicU64, Ordering};

/// One relaxed monotonic counter.
#[derive(Default)]
pub(crate) struct Cell(AtomicU64);

impl Cell {
    pub(crate) fn inc(&self) {
        self.add(1);
    }

    pub(crate) fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for the gauge-style cells (`dirty_pages`,
    /// `freelist_pages`) that track a level, not a running total.
    pub(crate) fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The storage-layer counter set (see [`storage_stats`]).
#[derive(Default)]
pub(crate) struct StorageCounters {
    /// Pages read from a page file (cache misses included).
    pub page_reads: Cell,
    /// Pages written to a page file (chain pages and header slots).
    pub page_writes: Cell,
    /// Page reads answered from the in-memory page cache.
    pub page_cache_hits: Cell,
    /// Page reads that had to touch the file.
    pub page_cache_misses: Cell,
    /// Pages lost to header-freelist overflow (reclaimed by `compact`).
    pub pages_leaked: Cell,
    /// Frames appended to a write-ahead log.
    pub wal_appended_frames: Cell,
    /// Commit records made durable (fsynced) in a write-ahead log.
    pub wal_commits: Cell,
    /// Bytes appended to a write-ahead log.
    pub wal_bytes: Cell,
    /// Checkpoints: WAL contents folded into the page file.
    pub wal_checkpoints: Cell,
    /// Store opens that replayed at least one committed WAL frame.
    pub wal_recoveries: Cell,
    /// Committed frames replayed into the graph during recovery.
    pub wal_recovered_frames: Cell,
    /// Torn WAL tails detected (and truncated) during recovery.
    pub wal_torn_tails: Cell,
    /// Store compactions (page file rewritten minimal).
    pub compactions: Cell,
    /// WAL file fsyncs (each one is a durability point).
    pub wal_fsyncs: Cell,
    /// Group commits: one commit record covering more than one transaction.
    pub wal_group_commits: Cell,
    /// Transactions folded into group commit records.
    pub wal_group_commit_txns: Cell,
    /// Pages written by checkpoints (dirty segments + manifest).
    pub checkpoint_pages_written: Cell,
    /// Pages carried over untouched by incremental checkpoints.
    pub checkpoint_pages_reused: Cell,
    /// Pages evicted from a pager's in-memory page cache.
    pub page_cache_evictions: Cell,
    /// Gauge: pages the next checkpoint would rewrite (last writer wins).
    pub dirty_pages: Cell,
    /// Gauge: free pages tracked in the active header (last writer wins).
    pub freelist_pages: Cell,
}

pub(crate) static STORAGE: StorageCounters = StorageCounters {
    page_reads: Cell(AtomicU64::new(0)),
    page_writes: Cell(AtomicU64::new(0)),
    page_cache_hits: Cell(AtomicU64::new(0)),
    page_cache_misses: Cell(AtomicU64::new(0)),
    pages_leaked: Cell(AtomicU64::new(0)),
    wal_appended_frames: Cell(AtomicU64::new(0)),
    wal_commits: Cell(AtomicU64::new(0)),
    wal_bytes: Cell(AtomicU64::new(0)),
    wal_checkpoints: Cell(AtomicU64::new(0)),
    wal_recoveries: Cell(AtomicU64::new(0)),
    wal_recovered_frames: Cell(AtomicU64::new(0)),
    wal_torn_tails: Cell(AtomicU64::new(0)),
    compactions: Cell(AtomicU64::new(0)),
    wal_fsyncs: Cell(AtomicU64::new(0)),
    wal_group_commits: Cell(AtomicU64::new(0)),
    wal_group_commit_txns: Cell(AtomicU64::new(0)),
    checkpoint_pages_written: Cell(AtomicU64::new(0)),
    checkpoint_pages_reused: Cell(AtomicU64::new(0)),
    page_cache_evictions: Cell(AtomicU64::new(0)),
    dirty_pages: Cell(AtomicU64::new(0)),
    freelist_pages: Cell(AtomicU64::new(0)),
};

/// A snapshot of the process-wide storage counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    /// Pages read from page files.
    pub page_reads: u64,
    /// Pages written to page files.
    pub page_writes: u64,
    /// Page reads answered from the page cache.
    pub page_cache_hits: u64,
    /// Page reads that missed the page cache.
    pub page_cache_misses: u64,
    /// Pages lost to freelist overflow (reclaimed by compaction).
    pub pages_leaked: u64,
    /// WAL frames appended.
    pub wal_appended_frames: u64,
    /// WAL commit records made durable.
    pub wal_commits: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
    /// Checkpoints performed.
    pub wal_checkpoints: u64,
    /// Opens that replayed committed WAL frames.
    pub wal_recoveries: u64,
    /// Committed WAL frames replayed during recovery.
    pub wal_recovered_frames: u64,
    /// Torn WAL tails detected and truncated.
    pub wal_torn_tails: u64,
    /// Store compactions.
    pub compactions: u64,
    /// WAL file fsyncs.
    pub wal_fsyncs: u64,
    /// Commit records that covered more than one transaction.
    pub wal_group_commits: u64,
    /// Transactions folded into group commit records.
    pub wal_group_commit_txns: u64,
    /// Pages written by checkpoints.
    pub checkpoint_pages_written: u64,
    /// Pages reused untouched across incremental checkpoints.
    pub checkpoint_pages_reused: u64,
    /// Pages evicted from page caches.
    pub page_cache_evictions: u64,
    /// Gauge: pages the next checkpoint would rewrite.
    pub dirty_pages: u64,
    /// Gauge: free pages tracked in the active header.
    pub freelist_pages: u64,
}

/// Snapshots the process-wide storage counters (page cache, WAL, recovery).
pub fn storage_stats() -> StorageStats {
    let c = &STORAGE;
    StorageStats {
        page_reads: c.page_reads.get(),
        page_writes: c.page_writes.get(),
        page_cache_hits: c.page_cache_hits.get(),
        page_cache_misses: c.page_cache_misses.get(),
        pages_leaked: c.pages_leaked.get(),
        wal_appended_frames: c.wal_appended_frames.get(),
        wal_commits: c.wal_commits.get(),
        wal_bytes: c.wal_bytes.get(),
        wal_checkpoints: c.wal_checkpoints.get(),
        wal_recoveries: c.wal_recoveries.get(),
        wal_recovered_frames: c.wal_recovered_frames.get(),
        wal_torn_tails: c.wal_torn_tails.get(),
        compactions: c.compactions.get(),
        wal_fsyncs: c.wal_fsyncs.get(),
        wal_group_commits: c.wal_group_commits.get(),
        wal_group_commit_txns: c.wal_group_commit_txns.get(),
        checkpoint_pages_written: c.checkpoint_pages_written.get(),
        checkpoint_pages_reused: c.checkpoint_pages_reused.get(),
        page_cache_evictions: c.page_cache_evictions.get(),
        dirty_pages: c.dirty_pages.get(),
        freelist_pages: c.freelist_pages.get(),
    }
}
