//! STRUDEL's data-definition language (Fig. 2 of the paper).
//!
//! This is the common exchange format between wrappers and the mediator
//! layer (§2.2): a textual syntax for graphs, with `collection` blocks that
//! declare *default* value types for attributes ("these directives are not
//! constraints and can be overridden in the input file") and `object` blocks
//! that define nodes, their collection memberships, and their attributes.
//!
//! ```text
//! collection Publications {
//!   abstract   text
//!   postscript ps
//! }
//! object pub1 in Publications {
//!   title      "Specifying Representations..."
//!   author     "Norman Ramsey"
//!   author     "Mary Fernandez"
//!   year       1997
//!   abstract   "abstracts/toplas97.txt"
//!   postscript "papers/toplas97.ps.gz"
//! }
//! ```
//!
//! Extensions kept from the paper's prose: nested structured values (an
//! address "may be a structure with address, city and zipcode fields"),
//! written as an inline `{ … }` block, and object references written
//! `&name`, which allow graphs with shared substructure and cycles.

use crate::error::{GraphError, Result};
use crate::fxhash::FxHashMap;
use crate::graph::{Graph, NodeId};
use crate::value::{FileKind, Value};
use std::borrow::Cow;
use std::fmt::Write as _;

/// Default value type declared by a `collection` directive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Directive {
    File(FileKind),
    Url,
}

impl Directive {
    fn from_keyword(kw: &str) -> Option<Directive> {
        if kw == "url" {
            return Some(Directive::Url);
        }
        FileKind::from_keyword(kw).map(Directive::File)
    }

    fn apply(self, s: &str) -> Value {
        match self {
            Directive::File(kind) => Value::file(kind, s),
            Directive::Url => Value::url(s),
        }
    }
}

// ---------------------------------------------------------------- lexer ----

/// Tokens borrow from the source text; only string literals containing
/// escapes own their (unescaped) content. This keeps lexing and parsing
/// allocation-free on the hot path — DDL is the exchange format every
/// wrapper and the mediator funnel data through.
#[derive(Clone, Debug, PartialEq)]
enum Tok<'a> {
    Ident(&'a str),
    Str(Cow<'a, str>),
    Int(i64),
    Float(f64),
    Bool(bool),
    LBrace,
    RBrace,
    Comma,
    Amp,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> GraphError {
        GraphError::DdlParse {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.as_bytes().get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_byte() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.src.as_bytes().get(self.pos + 1) == Some(&b'/') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn next_tok(&mut self) -> Result<Option<(Tok<'a>, usize)>> {
        self.skip_trivia();
        let line = self.line;
        let Some(b) = self.peek_byte() else {
            return Ok(None);
        };
        let tok = match b {
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'&' => {
                self.bump();
                Tok::Amp
            }
            b'"' => {
                self.bump();
                let start = self.pos;
                // Fast path: no escapes — borrow the slice between the
                // quotes (quote bytes are ASCII, so the slice boundaries
                // are char boundaries).
                let mut escaped = false;
                loop {
                    match self.peek_byte() {
                        None => return Err(self.err("unterminated string literal")),
                        Some(b'"') => break,
                        Some(b'\\') => {
                            escaped = true;
                            break;
                        }
                        _ => {
                            self.bump();
                        }
                    }
                }
                if !escaped {
                    let s = &self.src[start..self.pos];
                    self.bump(); // closing quote
                    Tok::Str(Cow::Borrowed(s))
                } else {
                    let mut bytes: Vec<u8> = self.src.as_bytes()[start..self.pos].to_vec();
                    loop {
                        match self.bump() {
                            None => return Err(self.err("unterminated string literal")),
                            Some(b'"') => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'n') => bytes.push(b'\n'),
                                Some(b't') => bytes.push(b'\t'),
                                Some(b'"') => bytes.push(b'"'),
                                Some(b'\\') => bytes.push(b'\\'),
                                other => {
                                    return Err(self
                                        .err(format!("bad escape: \\{:?}", other.map(char::from))))
                                }
                            },
                            Some(c) => bytes.push(c),
                        }
                    }
                    let s = String::from_utf8(bytes)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    Tok::Str(Cow::Owned(s))
                }
            }
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                // A sign is part of the number only immediately after an
                // exponent marker (or as the leading character, consumed
                // above) — otherwise `1997-1998` would lex as one token.
                let mut after_exp = false;
                self.bump();
                while matches!(self.peek_byte(), Some(b'0'..=b'9' | b'.' | b'e' | b'E'))
                    || (after_exp && matches!(self.peek_byte(), Some(b'-' | b'+')))
                {
                    after_exp = matches!(self.peek_byte(), Some(b'e' | b'E'));
                    self.bump();
                }
                let text = &self.src[start..self.pos];
                if text.contains(['.', 'e', 'E']) {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| self.err(format!("bad float {text:?}")))?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| self.err(format!("bad integer {text:?}")))?,
                    )
                }
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = self.pos;
                while matches!(self.peek_byte(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
                {
                    self.bump();
                }
                let word = &self.src[start..self.pos];
                match word {
                    "true" => Tok::Bool(true),
                    "false" => Tok::Bool(false),
                    _ => Tok::Ident(word),
                }
            }
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        Ok(Some((tok, line)))
    }
}

fn lex(src: &str) -> Result<Vec<(Tok<'_>, usize)>> {
    let mut lexer = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(t) = lexer.next_tok()? {
        out.push(t);
    }
    Ok(out)
}

// --------------------------------------------------------------- parser ----

struct Parser<'a, 'g> {
    toks: Vec<(Tok<'a>, usize)>,
    pos: usize,
    graph: &'g mut Graph,
    /// Declared default types: collection → attribute → directive.
    directives: FxHashMap<&'a str, FxHashMap<&'a str, Directive>>,
    /// Named objects, created lazily so forward references work.
    named: FxHashMap<&'a str, NodeId>,
    anon_counter: usize,
}

impl<'a> Parser<'a, '_> {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|(_, l)| *l)
            .unwrap_or(1)
    }

    fn err(&self, message: impl Into<String>) -> GraphError {
        GraphError::DdlParse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok<'a>> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok<'a>> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_ident(&mut self, what: &str) -> Result<&'a str> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect(&mut self, tok: Tok<'a>) -> Result<()> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => Err(self.err(format!("expected {tok:?}, found {other:?}"))),
        }
    }

    fn node_for(&mut self, name: &'a str) -> NodeId {
        if let Some(&n) = self.named.get(name) {
            return n;
        }
        let n = self.graph.new_node(Some(name));
        self.named.insert(name, n);
        n
    }

    fn parse(&mut self) -> Result<()> {
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Ident(kw) if *kw == "collection" => self.parse_collection()?,
                Tok::Ident(kw) if *kw == "object" => self.parse_object()?,
                other => {
                    return Err(self.err(format!(
                        "expected `collection` or `object`, found {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    fn parse_collection(&mut self) -> Result<()> {
        self.next(); // `collection`
        let name = self.expect_ident("collection name")?;
        self.graph.ensure_collection(name);
        self.expect(Tok::LBrace)?;
        while self.peek() != Some(&Tok::RBrace) {
            let attr = self.expect_ident("attribute name")?;
            let kind = self.expect_ident("type keyword")?;
            let dir = Directive::from_keyword(kind)
                .ok_or_else(|| self.err(format!("unknown type keyword {kind:?}")))?;
            self.directives.entry(name).or_default().insert(attr, dir);
        }
        self.expect(Tok::RBrace)
    }

    fn parse_object(&mut self) -> Result<()> {
        self.next(); // `object`
        let name = self.expect_ident("object name")?;
        let node = self.node_for(name);
        let mut colls = Vec::new();
        if matches!(self.peek(), Some(Tok::Ident(kw)) if *kw == "in") {
            self.next();
            loop {
                let coll = self.expect_ident("collection name")?;
                let sym = self.graph.ensure_collection(coll);
                self.graph.add_to_collection(sym, Value::Node(node));
                colls.push(coll);
                if self.peek() == Some(&Tok::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.parse_body(node, &colls)
    }

    fn parse_body(&mut self, node: NodeId, colls: &[&'a str]) -> Result<()> {
        self.expect(Tok::LBrace)?;
        while self.peek() != Some(&Tok::RBrace) {
            let attr = self.expect_ident("attribute name")?;
            let value = self.parse_value(attr, colls)?;
            let label = self.graph.sym(attr);
            self.graph
                .add_edge(node, label, value)
                .expect("node is a member");
        }
        self.expect(Tok::RBrace)
    }

    fn parse_value(&mut self, attr: &str, colls: &[&'a str]) -> Result<Value> {
        match self.next() {
            Some(Tok::Str(s)) => {
                // Collection directives give string values their default
                // type; first matching collection wins.
                for coll in colls {
                    if let Some(dir) = self.directives.get(coll).and_then(|m| m.get(attr)) {
                        return Ok(dir.apply(&s));
                    }
                }
                Ok(Value::str(s))
            }
            Some(Tok::Int(i)) => Ok(Value::Int(i)),
            Some(Tok::Float(f)) => Ok(Value::Float(f)),
            Some(Tok::Bool(b)) => Ok(Value::Bool(b)),
            Some(Tok::Amp) => {
                let target = self.expect_ident("object name after `&`")?;
                Ok(Value::Node(self.node_for(target)))
            }
            Some(Tok::LBrace) => {
                // Nested structured value: an anonymous node.
                self.pos -= 1; // parse_body expects the brace
                self.anon_counter += 1;
                let inner = self
                    .graph
                    .new_node(Some(&format!("_anon{}", self.anon_counter)));
                self.parse_body(inner, colls)?;
                Ok(Value::Node(inner))
            }
            other => Err(self.err(format!("expected a value, found {other:?}"))),
        }
    }
}

/// Parses DDL text, materializing its collections, objects, and edges into
/// `graph`. Multiple inputs may be parsed into the same graph; object names
/// are shared across calls only within a single `parse_into` invocation.
pub fn parse_into(graph: &mut Graph, src: &str) -> Result<()> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        graph,
        directives: FxHashMap::default(),
        named: FxHashMap::default(),
        anon_counter: 0,
    };
    p.parse()
}

/// Parses DDL text into a fresh standalone graph.
pub fn parse(src: &str) -> Result<Graph> {
    let mut g = Graph::standalone();
    parse_into(&mut g, src)?;
    Ok(g)
}

// -------------------------------------------------------------- printer ----

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\t', "\\t")
}

/// Serializes a graph to DDL text. Nodes are named by their provenance name
/// when present, otherwise `n<oid>`. The output parses back ([`parse`]) to an
/// isomorphic graph; file/url typing is preserved via per-object collection
/// directives when it is uniform, and inline it is not (files print with
/// their kind recoverable from the path where possible).
pub fn print(graph: &Graph) -> String {
    let mut out = String::new();
    let reader = graph.reader();
    // Provenance names are used when they are valid DDL identifiers;
    // anything else (Skolem terms like `P(&0)`) falls back to `n<oid>` so
    // the output always re-parses.
    let ident_ok = |s: &str| -> bool {
        !s.is_empty()
            && s.bytes()
                .next()
                .is_some_and(|b| b.is_ascii_alphabetic() || b == b'_')
            && s.bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    };
    let name_of = move |n: NodeId| -> String {
        match reader.name(n) {
            Some(name) if ident_ok(name) => name.to_string(),
            _ => format!("n{}", n.0),
        }
    };
    let reader = graph.reader();

    // Membership map: node → collections (in collection creation order).
    let mut membership: FxHashMap<NodeId, Vec<String>> = FxHashMap::default();
    for &coll in graph.collection_names() {
        let cname = graph.resolve(coll);
        for v in graph.collection(coll).expect("listed").items() {
            if let Some(n) = v.as_node() {
                membership.entry(n).or_default().push(cname.to_string());
            }
        }
    }

    // Directive synthesis: declare file/url attribute types per collection
    // when every string-typed value of that attribute agrees.
    let mut directives: FxHashMap<String, Vec<(String, &'static str)>> = FxHashMap::default();
    for &coll in graph.collection_names() {
        let cname = graph.resolve(coll).to_string();
        let mut per_attr: FxHashMap<String, Option<&'static str>> = FxHashMap::default();
        for v in graph.collection(coll).expect("listed").items() {
            let Some(n) = v.as_node() else { continue };
            for (label, value) in reader.out(n) {
                let kw = match value {
                    Value::File(k, _) => Some(k.keyword()),
                    Value::Url(_) => Some("url"),
                    Value::Str(_) => None,
                    _ => continue,
                };
                let attr = graph.resolve(*label).to_string();
                match per_attr.entry(attr) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(kw);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        if *e.get() != kw {
                            e.insert(None);
                        }
                    }
                }
            }
        }
        let mut decls: Vec<(String, &'static str)> = per_attr
            .into_iter()
            .filter_map(|(a, kw)| kw.map(|k| (a, k)))
            .collect();
        decls.sort();
        if !decls.is_empty() {
            directives.insert(cname, decls);
        }
    }

    for &coll in graph.collection_names() {
        let cname = graph.resolve(coll);
        let _ = writeln!(out, "collection {cname} {{");
        if let Some(decls) = directives.get(&*cname) {
            for (attr, kw) in decls {
                let _ = writeln!(out, "  {attr} {kw}");
            }
        }
        let _ = writeln!(out, "}}");
    }

    for &n in graph.nodes() {
        let name = name_of(n);
        if name.starts_with("_anon") {
            continue; // printed inline below
        }
        let _ = write!(out, "object {name}");
        if let Some(colls) = membership.get(&n) {
            let _ = write!(out, " in {}", colls.join(", "));
        }
        let _ = writeln!(out, " {{");
        print_attrs(graph, &reader, n, &name_of, 1, &mut out);
        let _ = writeln!(out, "}}");
    }
    out
}

fn print_attrs(
    graph: &Graph,
    reader: &crate::graph::GraphReader<'_>,
    n: NodeId,
    name_of: &dyn Fn(NodeId) -> String,
    depth: usize,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    for (label, value) in reader.out(n) {
        let attr = graph.resolve(*label);
        match value {
            Value::Node(m) => {
                let mname = name_of(*m);
                if mname.starts_with("_anon") {
                    let _ = writeln!(out, "{indent}{attr} {{");
                    print_attrs(graph, reader, *m, name_of, depth + 1, out);
                    let _ = writeln!(out, "{indent}}}");
                } else {
                    let _ = writeln!(out, "{indent}{attr} &{mname}");
                }
            }
            Value::Int(i) => {
                let _ = writeln!(out, "{indent}{attr} {i}");
            }
            Value::Float(f) => {
                let _ = writeln!(out, "{indent}{attr} {f:?}");
            }
            Value::Bool(b) => {
                let _ = writeln!(out, "{indent}{attr} {b}");
            }
            Value::Str(s) | Value::Url(s) | Value::File(_, s) => {
                let _ = writeln!(out, "{indent}{attr} \"{}\"", escape(s));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok<'_>> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn lexer_splits_adjacent_signed_numbers() {
        // `1-2` is two integers (e.g. a `1997-1998` range in source data),
        // not a malformed single token.
        assert_eq!(toks("1-2"), vec![Tok::Int(1), Tok::Int(-2)]);
        assert_eq!(toks("1997-1998"), vec![Tok::Int(1997), Tok::Int(-1998)]);
    }

    #[test]
    fn lexer_keeps_exponent_signs() {
        assert_eq!(toks("1e5"), vec![Tok::Float(1e5)]);
        assert_eq!(toks("1e-5"), vec![Tok::Float(1e-5)]);
        assert_eq!(toks("2.5E+3"), vec![Tok::Float(2.5e3)]);
        // The sign rule only applies right after the exponent marker:
        // `1e-5-2` is the float then a second number.
        assert_eq!(toks("1e-5-2"), vec![Tok::Float(1e-5), Tok::Int(-2)]);
    }

    #[test]
    fn lexer_rejects_double_sign() {
        let err = lex("--3").unwrap_err().to_string();
        assert!(err.contains("bad integer"), "{err}");
    }

    /// Fig. 2 of the paper, verbatim in structure.
    const FIG2: &str = r#"
collection Publications {
  abstract   text
  postscript ps
}
object pub1 in Publications {
  title      "Specifying Representations..."
  author     "Norman Ramsey"
  author     "Mary Fernandez"
  year       1997
  month      "May"
  journal    "Transactions on Programming..."
  pub-type   "article"
  abstract   "abstracts/toplas97.txt"
  postscript "papers/toplas97.ps.gz"
  volume     "19 (3)"
  category   "Architecture Specifications"
  category   "Programming Languages"
}
object pub2 in Publications {
  title      "Optimizing Regular..."
  author     "Mary Fernandez"
  author     "Dan Suciu"
  year       1998
  booktitle  "Proc. of ICDE"
  pub-type   "inproceedings"
  abstract   "abstracts/icde98.txt"
  postscript "papers/icde98.ps.gz"
  category   "Semistructured Data"
  category   "Programming Languages"
}
"#;

    #[test]
    fn parses_fig2() {
        let g = parse(FIG2).unwrap();
        assert_eq!(g.node_count(), 2);
        let pubs = g.collection_str("Publications").unwrap();
        assert_eq!(pubs.len(), 2);
        let pub1 = g.nodes()[0];
        let r = g.reader();
        let year = g.universe().interner().get("year").unwrap();
        assert_eq!(r.attr(pub1, year), Some(&Value::Int(1997)));
        // Directive typing: abstract is a text file, postscript a PS file.
        let abs = g.universe().interner().get("abstract").unwrap();
        assert_eq!(
            r.attr(pub1, abs),
            Some(&Value::file(FileKind::Text, "abstracts/toplas97.txt"))
        );
        let ps = g.universe().interner().get("postscript").unwrap();
        assert_eq!(
            r.attr(pub1, ps),
            Some(&Value::file(FileKind::PostScript, "papers/toplas97.ps.gz"))
        );
    }

    #[test]
    fn irregular_attributes_coexist() {
        let g = parse(FIG2).unwrap();
        let r = g.reader();
        let month = g.universe().interner().get("month").unwrap();
        let booktitle = g.universe().interner().get("booktitle").unwrap();
        let (pub1, pub2) = (g.nodes()[0], g.nodes()[1]);
        assert!(r.attr(pub1, month).is_some() && r.attr(pub2, month).is_none());
        assert!(r.attr(pub1, booktitle).is_none() && r.attr(pub2, booktitle).is_some());
    }

    #[test]
    fn object_references_and_cycles() {
        let g = parse(
            r#"
object a { next &b }
object b { next &a  label "back" }
"#,
        )
        .unwrap();
        assert_eq!(g.node_count(), 2);
        let next = g.universe().interner().get("next").unwrap();
        let r = g.reader();
        let a = g.nodes()[0];
        let b = r.attr(a, next).unwrap().as_node().unwrap();
        assert_eq!(r.attr(b, next), Some(&Value::Node(a)));
    }

    #[test]
    fn forward_references_work() {
        let g = parse("object a { next &later }\nobject later { x 1 }").unwrap();
        assert_eq!(g.node_count(), 2);
        let later = g.nodes()[1];
        assert_eq!(g.node_name(later).as_deref(), Some("later"));
    }

    #[test]
    fn nested_structured_values() {
        let g = parse(
            r#"
object mff {
  name "Mary Fernandez"
  address { street "180 Park Ave" city "Florham Park" zipcode "07932" }
}
"#,
        )
        .unwrap();
        assert_eq!(g.node_count(), 2);
        let addr = g.universe().interner().get("address").unwrap();
        let city = g.universe().interner().get("city").unwrap();
        let r = g.reader();
        let anon = r.attr(g.nodes()[0], addr).unwrap().as_node().unwrap();
        assert_eq!(r.attr(anon, city), Some(&Value::str("Florham Park")));
    }

    #[test]
    fn multiple_collection_membership() {
        let g = parse("collection A {}\ncollection B {}\nobject x in A, B { k 1 }").unwrap();
        let n = Value::Node(g.nodes()[0]);
        assert!(g.collection_str("A").unwrap().contains(&n));
        assert!(g.collection_str("B").unwrap().contains(&n));
    }

    #[test]
    fn comments_and_bools() {
        let g = parse("# leading\nobject x { // trailing\n flag true  off false }").unwrap();
        let r = g.reader();
        let flag = g.universe().interner().get("flag").unwrap();
        assert_eq!(r.attr(g.nodes()[0], flag), Some(&Value::Bool(true)));
    }

    #[test]
    fn string_escapes() {
        let g = parse(r#"object x { s "a\"b\\c\nd" }"#).unwrap();
        let s = g.universe().interner().get("s").unwrap();
        assert_eq!(
            g.reader().attr(g.nodes()[0], s),
            Some(&Value::str("a\"b\\c\nd"))
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("object x {\n  y\n}").unwrap_err();
        match err {
            GraphError::DdlParse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse(r#"object x { s "oops }"#).is_err());
    }

    #[test]
    fn print_parse_roundtrip_preserves_structure() {
        let g = parse(FIG2).unwrap();
        let text = print(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.collection_str("Publications").unwrap().len(), 2);
        // Typed values survive the roundtrip.
        let ps = g2.universe().interner().get("postscript").unwrap();
        let r = g2.reader();
        assert_eq!(
            r.attr(g2.nodes()[0], ps),
            Some(&Value::file(FileKind::PostScript, "papers/toplas97.ps.gz"))
        );
    }

    #[test]
    fn print_handles_nested_and_refs() {
        let src = "object a { inner { k 1 } next &b }\nobject b { x \"y\" }";
        let g = parse(src).unwrap();
        let text = print(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g2.node_count(), 3);
        assert_eq!(g2.edge_count(), g.edge_count());
    }
}
