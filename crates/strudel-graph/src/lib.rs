//! # strudel-graph
//!
//! The semistructured data model underlying STRUDEL (Fernandez, Florescu,
//! Kang, Levy, Suciu — SIGMOD 1997): labeled, directed graphs in the style of
//! OEM, together with the indexed *data repository* of §2.2 of the paper.
//!
//! A [`Database`] holds a set of named [`Graph`]s that may share objects and
//! collections. Each graph consists of *objects* connected by directed edges
//! labeled with string-valued attribute names. Objects are either *nodes*,
//! identified by a unique object identifier ([`Oid`]), or *atomic values*
//! ([`Value`]): integers, floats, booleans, strings, URLs, and files of
//! several kinds (text, HTML, image, PostScript). Objects are grouped into
//! named *collections*; an object may belong to several collections, and
//! objects in the same collection may have different representations.
//!
//! Because semistructured data lacks a schema, the repository cannot rely on
//! schema information to organize data; instead (per §2.2) it **fully indexes
//! both the schema and the data**: one index holds the names of all
//! collections and attributes in a graph, others hold the extension of each
//! collection and each attribute, and indexes on atomic values are global to
//! the graph. See [`index`].
//!
//! The crate also implements STRUDEL's data-definition language ([`ddl`]),
//! the common exchange format between wrappers and the repository (the
//! `collection … { } object … in … { }` syntax of Fig. 2 of the paper).
//!
//! Durability lives in three layers: [`fsio`] (atomic, fsynced file
//! replacement), [`pager`] + [`wal`] (a checksummed page file and
//! write-ahead log), and [`store`] (the graph codec plus the
//! [`store::PagedStore`] transactional store with MVCC snapshots). See
//! `docs/STORAGE.md` for formats and the crash-safety argument.

#![warn(missing_docs)]

pub mod database;
pub mod ddl;
pub mod error;
pub mod fsio;
pub mod fxhash;
pub mod graph;
pub mod index;
pub mod pager;
pub mod stats;
pub mod store;
pub mod symbol;
pub mod value;
pub mod wal;

pub use database::Database;
pub use error::{GraphError, Result};
pub use graph::{Edge, Graph, NodeId as Oid};
pub use stats::{storage_stats, StorageStats};
pub use symbol::{Interner, Sym};
pub use value::{FileKind, Value};
