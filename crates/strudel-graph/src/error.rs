//! Error types for the data repository.

use crate::graph::NodeId;
use std::fmt;

/// Errors raised by graph and repository operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The oid does not exist in the universe.
    UnknownNode(NodeId),
    /// The node exists in the universe but is not a member of this graph.
    NotAMember(NodeId),
    /// A graph with this name already exists in the database.
    DuplicateGraph(String),
    /// No graph with this name exists in the database.
    UnknownGraph(String),
    /// A syntax error in the data-definition language.
    DdlParse {
        /// 1-based line of the error.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A storage-layer I/O failure (the operating system refused or lost a
    /// read/write; the data itself is not known to be bad).
    Storage {
        /// Description of what went wrong.
        message: String,
    },
    /// On-disk data failed validation: bad magic, checksum mismatch, an
    /// out-of-range count or index, truncation, or trailing garbage. The
    /// bytes cannot be trusted and were not loaded.
    StorageCorrupt {
        /// Description of what failed to validate, with context.
        message: String,
    },
    /// Crash recovery could not restore a consistent revision: the
    /// write-ahead log and the page file disagree (e.g. the log is ahead of
    /// the base snapshot), or a committed delta no longer applies. Nothing
    /// was loaded — recovery never yields a silently wrong graph.
    StorageRecovery {
        /// Description of the recovery invariant that failed.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::NotAMember(n) => write!(f, "node {n} is not a member of this graph"),
            GraphError::DuplicateGraph(name) => write!(f, "graph {name:?} already exists"),
            GraphError::UnknownGraph(name) => write!(f, "no graph named {name:?}"),
            GraphError::DdlParse { line, message } => {
                write!(f, "DDL parse error at line {line}: {message}")
            }
            GraphError::Storage { message } => write!(f, "storage error: {message}"),
            GraphError::StorageCorrupt { message } => {
                write!(f, "storage corruption: {message}")
            }
            GraphError::StorageRecovery { message } => {
                write!(f, "storage recovery failed: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Storage {
            message: format!("I/O error: {e}"),
        }
    }
}

/// Result alias for repository operations.
pub type Result<T> = std::result::Result<T, GraphError>;
