//! Error types for the data repository.

use crate::graph::NodeId;
use std::fmt;

/// Errors raised by graph and repository operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The oid does not exist in the universe.
    UnknownNode(NodeId),
    /// The node exists in the universe but is not a member of this graph.
    NotAMember(NodeId),
    /// A graph with this name already exists in the database.
    DuplicateGraph(String),
    /// No graph with this name exists in the database.
    UnknownGraph(String),
    /// A syntax error in the data-definition language.
    DdlParse {
        /// 1-based line of the error.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A storage-layer failure: I/O errors, corrupt or truncated snapshot
    /// files, and graphs too large for the on-disk format.
    Storage {
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::NotAMember(n) => write!(f, "node {n} is not a member of this graph"),
            GraphError::DuplicateGraph(name) => write!(f, "graph {name:?} already exists"),
            GraphError::UnknownGraph(name) => write!(f, "no graph named {name:?}"),
            GraphError::DdlParse { line, message } => {
                write!(f, "DDL parse error at line {line}: {message}")
            }
            GraphError::Storage { message } => write!(f, "storage error: {message}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Result alias for repository operations.
pub type Result<T> = std::result::Result<T, GraphError>;
