//! Full indexing of schema and data (§2.2).
//!
//! "Without schema information, we fully index both the schema and the data.
//! For example, one index contains the names of all the collections and
//! attributes in the graph; other indexes contain the extensions for each
//! collection and attribute. In addition, indexes on atomic values are global
//! to the graph, not built per collection or attribute."
//!
//! Maintaining these indexes is expensive (every mutation touches them), but
//! they let the query processor answer *schema* queries (`scan all attribute
//! names`) and give the cost-based optimizer the cardinality statistics it
//! plans with.

use crate::fxhash::FxHashMap;
use crate::graph::NodeId;
use crate::symbol::Sym;
use crate::value::Value;
use std::sync::Mutex;

/// The complete index set of one graph.
#[derive(Default, Debug)]
pub struct GraphIndex {
    /// Attribute (label) extension index: label → all `(from, to)` edges.
    label_ext: FxHashMap<Sym, Vec<(NodeId, Value)>>,
    /// Creation order of labels, for deterministic schema scans.
    label_order: Vec<Sym>,
    /// Global atomic-value index: value → `(from, label)` of every edge whose
    /// target is that atomic value.
    value_ext: FxHashMap<Value, Vec<(NodeId, Sym)>>,
    /// Reverse adjacency for node targets: node → `(from, label)`.
    in_edges: FxHashMap<NodeId, Vec<(NodeId, Sym)>>,
    /// Schema index: collection name → extent cardinality.
    coll_card: FxHashMap<Sym, usize>,
    edge_count: usize,
    /// Degree statistics per label (see [`LabelDegreeStats`]), materialized
    /// lazily: a label's tallies are first built by scanning its extension
    /// when the planner asks for them, and kept up to date under add/remove
    /// from then on. Graphs nobody plans against — the *output* graphs that
    /// construction populates through [`crate::graph::Graph::adopt_node`] —
    /// therefore pay almost nothing per indexed edge. Behind a mutex so the
    /// read-side accessors can materialize on a shared reference.
    degree: Mutex<FxHashMap<Sym, LabelDegreeStats>>,
}

/// Distinct-endpoint tallies for one label. `srcs.len()` is the label's
/// distinct-source count (`cardinality / distinct_sources` is the average
/// out-degree *among nodes that actually carry the label* — the statistic
/// the cost-based planner uses instead of a whole-graph average degree);
/// `tgts.len()` is the distinct-target count behind the reverse-probe
/// fan-in estimate. Targets are keyed by a 64-bit content fingerprint, not
/// the value itself: maintaining the tally never clones a value or compares
/// string keys, and a (vanishingly unlikely) fingerprint collision merges
/// two targets in the *statistic* only, never in query results.
#[derive(Default, Debug)]
struct LabelDegreeStats {
    srcs: FxHashMap<NodeId, u32>,
    tgts: FxHashMap<u64, u32>,
}

/// The strict-equality content fingerprint used by [`LabelDegreeStats`].
fn value_fingerprint(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = crate::fxhash::FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

impl GraphIndex {
    /// Records one edge in every applicable index.
    pub(crate) fn index_edge(&mut self, from: NodeId, label: Sym, to: &Value) {
        match self.label_ext.entry(label) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().push((from, to.clone()));
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(vec![(from, to.clone())]);
                self.label_order.push(label);
            }
        }
        match to {
            Value::Node(n) => self.in_edges.entry(*n).or_default().push((from, label)),
            atomic => self
                .value_ext
                .entry(atomic.clone())
                .or_default()
                .push((from, label)),
        }
        if let Some(deg) = self.degree.get_mut().unwrap().get_mut(&label) {
            *deg.srcs.entry(from).or_insert(0) += 1;
            *deg.tgts.entry(value_fingerprint(to)).or_insert(0) += 1;
        }
        self.edge_count += 1;
    }

    /// Removes one occurrence of an edge from every applicable index. The
    /// mirror of [`GraphIndex::index_edge`]; when a label's extension becomes
    /// empty the label is also dropped from the schema scan order so indexed
    /// and unindexed [`crate::graph::Graph::labels`] stay in agreement.
    pub(crate) fn unindex_edge(&mut self, from: NodeId, label: Sym, to: &Value) {
        let mut removed = false;
        if let Some(ext) = self.label_ext.get_mut(&label) {
            if let Some(pos) = ext.iter().position(|(f, t)| *f == from && t == to) {
                ext.remove(pos);
                self.edge_count -= 1;
                removed = true;
            }
            if ext.is_empty() {
                self.label_ext.remove(&label);
                self.label_order.retain(|l| *l != label);
            }
        }
        if removed {
            if let Some(deg) = self.degree.get_mut().unwrap().get_mut(&label) {
                if let Some(n) = deg.srcs.get_mut(&from) {
                    *n -= 1;
                    if *n == 0 {
                        deg.srcs.remove(&from);
                    }
                }
                let fp = value_fingerprint(to);
                if let Some(n) = deg.tgts.get_mut(&fp) {
                    *n -= 1;
                    if *n == 0 {
                        deg.tgts.remove(&fp);
                    }
                }
                if deg.srcs.is_empty() && deg.tgts.is_empty() {
                    self.degree.get_mut().unwrap().remove(&label);
                }
            }
        }
        match to {
            Value::Node(n) => {
                if let Some(back) = self.in_edges.get_mut(n) {
                    if let Some(pos) = back.iter().position(|(f, l)| *f == from && *l == label) {
                        back.remove(pos);
                    }
                    if back.is_empty() {
                        self.in_edges.remove(n);
                    }
                }
            }
            atomic => {
                if let Some(back) = self.value_ext.get_mut(atomic) {
                    if let Some(pos) = back.iter().position(|(f, l)| *f == from && *l == label) {
                        back.remove(pos);
                    }
                    if back.is_empty() {
                        self.value_ext.remove(atomic);
                    }
                }
            }
        }
    }

    /// Records (or updates) a collection's cardinality in the schema index.
    pub(crate) fn index_collection(&mut self, name: Sym, cardinality: usize) {
        self.coll_card.insert(name, cardinality);
    }

    /// All labels appearing in the graph, in first-appearance order
    /// (the schema-scan physical operator reads this).
    pub fn labels(&self) -> Vec<Sym> {
        self.label_order.clone()
    }

    /// The extension of a label: every `(from, to)` edge carrying it.
    pub fn edges_with_label(&self, label: Sym) -> &[(NodeId, Value)] {
        self.label_ext.get(&label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every edge pointing at the atomic value `v` (the global value index).
    pub fn edges_to_value(&self, v: &Value) -> &[(NodeId, Sym)] {
        self.value_ext.get(v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every edge pointing at node `n` (reverse adjacency).
    pub fn edges_to_node(&self, n: NodeId) -> &[(NodeId, Sym)] {
        self.in_edges.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    // ---- statistics for the cost-based optimizer (§2.4, [FLO 97]) ----

    /// Number of edges carrying `label`.
    pub fn label_cardinality(&self, label: Sym) -> usize {
        self.label_ext.get(&label).map(Vec::len).unwrap_or(0)
    }

    /// Cardinality of a collection extent, if known.
    pub fn collection_cardinality(&self, name: Sym) -> Option<usize> {
        self.coll_card.get(&name).copied()
    }

    /// Total number of indexed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of distinct labels (the "schema size" of the graph).
    pub fn label_count(&self) -> usize {
        self.label_order.len()
    }

    /// Number of distinct nodes with at least one outgoing `label` edge.
    /// `label_cardinality / label_distinct_sources` is the average
    /// out-degree among nodes carrying the label — a much sharper fan-out
    /// estimate than the whole-graph average degree.
    pub fn label_distinct_sources(&self, label: Sym) -> usize {
        self.with_degree(label, |d| d.srcs.len())
    }

    /// Number of distinct values with at least one incoming `label` edge.
    /// `label_cardinality / label_distinct_targets` is the average fan-in a
    /// reverse-index probe on a bound target of this label returns.
    pub fn label_distinct_targets(&self, label: Sym) -> usize {
        self.with_degree(label, |d| d.tgts.len())
    }

    /// Runs `f` over the label's degree tallies, materializing them from
    /// the extension index on first use.
    fn with_degree<T>(&self, label: Sym, f: impl FnOnce(&LabelDegreeStats) -> T) -> T {
        let mut deg = self.degree.lock().unwrap();
        let d = deg.entry(label).or_insert_with(|| {
            let mut d = LabelDegreeStats::default();
            for (from, to) in self.label_ext.get(&label).map(Vec::as_slice).unwrap_or(&[]) {
                *d.srcs.entry(*from).or_insert(0) += 1;
                *d.tgts.entry(value_fingerprint(to)).or_insert(0) += 1;
            }
            d
        });
        f(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn indexed_graph() -> Graph {
        let mut g = Graph::standalone();
        let a = g.new_node(Some("a"));
        let b = g.new_node(Some("b"));
        g.add_edge_str(a, "knows", Value::Node(b)).unwrap();
        g.add_edge_str(a, "year", 1997i64).unwrap();
        g.add_edge_str(b, "year", 1997i64).unwrap();
        g.add_edge_str(b, "year", 1998i64).unwrap();
        g.add_to_collection_str("People", Value::Node(a));
        g
    }

    #[test]
    fn label_extension_lists_all_edges() {
        let g = indexed_graph();
        let year = g.universe().interner().get("year").unwrap();
        assert_eq!(g.index().unwrap().edges_with_label(year).len(), 3);
        assert_eq!(g.index().unwrap().label_cardinality(year), 3);
    }

    #[test]
    fn global_value_index_spans_labels_and_nodes() {
        let g = indexed_graph();
        let hits = g.index().unwrap().edges_to_value(&Value::Int(1997));
        assert_eq!(hits.len(), 2);
        let froms: Vec<_> = hits.iter().map(|(f, _)| *f).collect();
        assert!(froms.contains(&g.nodes()[0]) && froms.contains(&g.nodes()[1]));
    }

    #[test]
    fn reverse_adjacency_tracks_node_targets() {
        let g = indexed_graph();
        let b = g.nodes()[1];
        let back = g.index().unwrap().edges_to_node(b);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].0, g.nodes()[0]);
    }

    #[test]
    fn schema_index_holds_collections_and_labels() {
        let g = indexed_graph();
        let idx = g.index().unwrap();
        assert_eq!(idx.label_count(), 2);
        let people = g.universe().interner().get("People").unwrap();
        assert_eq!(idx.collection_cardinality(people), Some(1));
        assert_eq!(idx.collection_cardinality(Sym(9999)), None);
    }

    #[test]
    fn missing_label_has_empty_extension() {
        let g = indexed_graph();
        assert!(g.index().unwrap().edges_with_label(Sym(4242)).is_empty());
        assert!(g.index().unwrap().edges_to_value(&Value::Int(0)).is_empty());
    }

    #[test]
    fn degree_statistics_track_distinct_endpoints() {
        let g = indexed_graph();
        let idx = g.index().unwrap();
        let year = g.universe().interner().get("year").unwrap();
        // Three `year` edges from two sources onto two distinct values.
        assert_eq!(idx.label_cardinality(year), 3);
        assert_eq!(idx.label_distinct_sources(year), 2);
        assert_eq!(idx.label_distinct_targets(year), 2);
        let knows = g.universe().interner().get("knows").unwrap();
        assert_eq!(idx.label_distinct_sources(knows), 1);
        assert_eq!(idx.label_distinct_targets(knows), 1);
        assert_eq!(idx.label_distinct_sources(Sym(4242)), 0);
        assert_eq!(idx.label_distinct_targets(Sym(4242)), 0);
    }

    #[test]
    fn degree_statistics_survive_removal_and_rebuild() {
        let mut g = indexed_graph();
        let b = g.nodes()[1];
        g.remove_edge_str(b, "year", &Value::Int(1998)).unwrap();
        let year = g.universe().interner().get("year").unwrap();
        assert_eq!(g.index().unwrap().label_distinct_sources(year), 2);
        assert_eq!(g.index().unwrap().label_distinct_targets(year), 1);
        g.remove_edge_str(b, "year", &Value::Int(1997)).unwrap();
        assert_eq!(g.index().unwrap().label_distinct_sources(year), 1);
        g.rebuild_index();
        assert_eq!(g.index().unwrap().label_distinct_sources(year), 1);
        assert_eq!(g.index().unwrap().label_distinct_targets(year), 1);
    }

    #[test]
    fn rebuild_matches_incremental_maintenance() {
        let mut g = indexed_graph();
        let year = g.universe().interner().get("year").unwrap();
        let before = g.index().unwrap().edges_with_label(year).to_vec();
        g.rebuild_index();
        assert_eq!(g.index().unwrap().edges_with_label(year), before.as_slice());
        assert_eq!(g.index().unwrap().edge_count(), 4);
    }
}
