//! The page file: fixed-size checksummed pages under a double-buffered
//! header, the bottom layer of the persistent store.
//!
//! ```text
//! page 0   header slot A ┐  the two slots alternate: a commit writes the
//! page 1   header slot B ┘  *older* slot, so the newer one stays intact
//! page 2.. data pages (4 KiB): [checksum][next][len][kind] + payload
//! ```
//!
//! A committed **revision** is rooted in a header slot: the header's root
//! chain (each page names its successor) plus any number of auxiliary
//! *blob* chains the root's contents point at — the store keeps its
//! checkpoint manifest in the root chain and one blob chain per graph
//! segment, so an incremental checkpoint rewrites only the chains whose
//! segment changed ([`Pager::commit_segments`]). Commits are copy-on-write:
//! new chains are written only into pages referenced by *neither* valid
//! header (the in-header freelist plus file growth), then the older header
//! slot is rewritten to describe the new revision. If the header write
//! tears, the untouched newer slot still describes the previous revision —
//! opening picks the valid slot with the highest revision, so a crash at
//! any byte leaves a loadable store, and pages shared with the previous
//! revision are never touched.
//!
//! Every page carries a checksum over its own number, link, length, kind
//! and payload; a bit flip anywhere in live data fails validation with a
//! typed [`GraphError::StorageCorrupt`] instead of loading a wrong graph.
//! The freelist lives entirely *inside* the header page (up to
//! [`FREE_CAP`] entries), so freeing pages never mutates the pages
//! themselves before the header flip. Overflowing entries are counted as
//! leaked and reclaimed by [`crate::store::PagedStore::compact`].

use crate::error::{GraphError, Result};
use crate::fxhash::{FxHashMap, FxHasher};
use crate::stats::STORAGE;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Size of every page in the file, headers included.
pub const PAGE_SIZE: usize = 4096;
/// Bytes of payload a data page carries after its 16-byte header.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - 16;
/// Free-page entries a header slot can track; the rest leak until compact.
pub const FREE_CAP: usize = (PAGE_SIZE - HEADER_FIXED - 8) / 4;

const MAGIC: &[u8; 8] = b"STRUPGD1";
/// Format version 2: the root chain may be a segment manifest whose
/// entries name blob chains elsewhere in the file (incremental
/// checkpoints). Version-1 files (single flat chain) are not migrated.
const VERSION: u32 = 2;
/// Default page-cache capacity, in pages.
pub const DEFAULT_CACHE_PAGES: usize = 1024;
/// Fixed header-slot fields before the freelist entries.
const HEADER_FIXED: usize = 56;
/// Page kind tag for snapshot-chain pages.
const KIND_SNAP: u8 = 1;
/// Nonzero seed so an all-zero page never validates against checksum 0.
const CHECKSUM_SEED: u64 = 0x5354_5255_4447_4531;

fn corrupt(message: impl Into<String>) -> GraphError {
    GraphError::StorageCorrupt {
        message: message.into(),
    }
}

fn fx(parts: &[&[u8]]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(CHECKSUM_SEED);
    for p in parts {
        h.write_u64(p.len() as u64);
        h.write(p);
    }
    h.finish()
}

/// The committed state a header slot describes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct HeaderState {
    revision: u64,
    root_page: u32,
    root_pages: u32,
    root_bytes: u64,
    page_count: u32,
    leaked: u64,
    free: Vec<u32>,
}

fn encode_header(slot: u32, s: &HeaderState) -> Vec<u8> {
    let mut buf = vec![0u8; PAGE_SIZE];
    buf[0..8].copy_from_slice(MAGIC);
    buf[8..12].copy_from_slice(&VERSION.to_le_bytes());
    buf[12..16].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
    buf[16..24].copy_from_slice(&s.revision.to_le_bytes());
    buf[24..28].copy_from_slice(&s.root_page.to_le_bytes());
    buf[28..32].copy_from_slice(&s.root_pages.to_le_bytes());
    buf[32..40].copy_from_slice(&s.root_bytes.to_le_bytes());
    buf[40..44].copy_from_slice(&s.page_count.to_le_bytes());
    buf[44..48].copy_from_slice(&(s.free.len() as u32).to_le_bytes());
    buf[48..56].copy_from_slice(&s.leaked.to_le_bytes());
    for (i, &p) in s.free.iter().enumerate() {
        let at = HEADER_FIXED + i * 4;
        buf[at..at + 4].copy_from_slice(&p.to_le_bytes());
    }
    let sum = fx(&[&slot.to_le_bytes(), &buf[..PAGE_SIZE - 8]]);
    buf[PAGE_SIZE - 8..].copy_from_slice(&sum.to_le_bytes());
    buf
}

fn decode_header(slot: u32, buf: &[u8], file_len: u64) -> Result<HeaderState> {
    let err = |m: &str| corrupt(format!("header slot {slot}: {m}"));
    if buf.len() != PAGE_SIZE {
        return Err(err("short read"));
    }
    let stored = u64::from_le_bytes(buf[PAGE_SIZE - 8..].try_into().expect("8 bytes"));
    if fx(&[&slot.to_le_bytes(), &buf[..PAGE_SIZE - 8]]) != stored {
        return Err(err("checksum mismatch"));
    }
    if &buf[0..8] != MAGIC {
        return Err(err("bad magic"));
    }
    let u32_at = |at: usize| u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"));
    let u64_at = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
    if u32_at(8) != VERSION {
        return Err(err("unsupported version"));
    }
    if u32_at(12) as usize != PAGE_SIZE {
        return Err(err("unsupported page size"));
    }
    let s = HeaderState {
        revision: u64_at(16),
        root_page: u32_at(24),
        root_pages: u32_at(28),
        root_bytes: u64_at(32),
        page_count: u32_at(40),
        leaked: u64_at(48),
        free: (0..u32_at(44) as usize)
            .map(|i| u32_at(HEADER_FIXED + i * 4))
            .collect(),
    };
    if u32_at(44) as usize > FREE_CAP {
        return Err(err("freelist count out of range"));
    }
    if s.page_count < 2 || (s.page_count as u64) * (PAGE_SIZE as u64) > file_len {
        return Err(err("page count exceeds file"));
    }
    let in_range = |p: u32| (2..s.page_count).contains(&p);
    if (s.root_pages == 0) != (s.root_page == 0) {
        return Err(err("inconsistent empty root"));
    }
    if s.root_page != 0 && !in_range(s.root_page) {
        return Err(err("root page out of range"));
    }
    if s.free.iter().any(|&p| !in_range(p)) {
        return Err(err("free page out of range"));
    }
    Ok(s)
}

/// The pager: page-granular reads and copy-on-write chain commits over one
/// page file, with an in-memory page cache.
pub struct Pager {
    file: File,
    path: PathBuf,
    state: HeaderState,
    /// The slot describing `state`; commits write the other one.
    active_slot: u32,
    /// Page ids of the committed snapshot chain, in order.
    chain: Vec<u32>,
    cache: PageCache,
}

/// Bounded FIFO page cache (raw page bytes, checksum-validated at fill).
struct PageCache {
    map: FxHashMap<u32, Box<[u8]>>,
    order: VecDeque<u32>,
    cap: usize,
}

impl PageCache {
    fn new(cap: usize) -> Self {
        PageCache {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            cap: cap.max(8),
        }
    }

    fn get(&self, page: u32) -> Option<&[u8]> {
        self.map.get(&page).map(|b| &b[..])
    }

    fn put(&mut self, page: u32, bytes: Box<[u8]>) {
        while self.map.len() >= self.cap {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                    STORAGE.page_cache_evictions.inc();
                }
                None => break,
            }
        }
        if self.map.insert(page, bytes).is_none() {
            self.order.push_back(page);
        }
    }

    fn set_cap(&mut self, cap: usize) {
        self.cap = cap.max(8);
        while self.map.len() > self.cap {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                    STORAGE.page_cache_evictions.inc();
                }
                None => break,
            }
        }
    }
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("path", &self.path)
            .field("revision", &self.state.revision)
            .finish_non_exhaustive()
    }
}

impl Pager {
    /// Creates a fresh page file at `path` (truncating any existing one):
    /// two valid header slots describing the empty revision 0.
    pub fn create(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let state = HeaderState {
            page_count: 2,
            ..HeaderState::default()
        };
        for slot in [0u32, 1] {
            write_at(
                &mut file,
                slot as u64 * PAGE_SIZE as u64,
                &encode_header(slot, &state),
            )?;
            STORAGE.page_writes.inc();
        }
        file.sync_all()?;
        Ok(Pager {
            file,
            path: path.to_path_buf(),
            state,
            active_slot: 0,
            chain: Vec::new(),
            cache: PageCache::new(1024),
        })
    }

    /// Opens an existing page file, validating both header slots and
    /// selecting the valid one with the highest revision.
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let file_len = file.metadata()?.len();
        let mut chosen: Option<(u32, HeaderState)> = None;
        let mut errors = Vec::new();
        for slot in [0u32, 1] {
            let mut buf = vec![0u8; PAGE_SIZE];
            let read = read_at(&mut file, slot as u64 * PAGE_SIZE as u64, &mut buf);
            STORAGE.page_reads.inc();
            let parsed = match read {
                Ok(()) => decode_header(slot, &buf, file_len),
                Err(e) => Err(e),
            };
            match parsed {
                Ok(s) => {
                    if chosen.as_ref().is_none_or(|(_, c)| s.revision > c.revision) {
                        chosen = Some((slot, s));
                    }
                }
                Err(e) => errors.push(e.to_string()),
            }
        }
        let (active_slot, state) = chosen.ok_or_else(|| {
            corrupt(format!(
                "{}: no valid header slot ({})",
                path.display(),
                errors.join("; ")
            ))
        })?;
        let mut pager = Pager {
            file,
            path: path.to_path_buf(),
            state,
            active_slot,
            chain: Vec::new(),
            cache: PageCache::new(1024),
        };
        pager.chain = pager.walk_chain()?;
        Ok(pager)
    }

    /// The committed revision number.
    pub fn revision(&self) -> u64 {
        self.state.revision
    }

    /// Total pages in the file (header slots included).
    pub fn page_count(&self) -> u32 {
        self.state.page_count
    }

    /// Pages in the committed snapshot chain.
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }

    /// Free pages tracked in the header, available to the next commit.
    pub fn free_len(&self) -> usize {
        self.state.free.len()
    }

    /// Pages lost to freelist overflow since creation (compact reclaims).
    pub fn leaked(&self) -> u64 {
        self.state.leaked
    }

    /// The file path this pager writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Resizes the in-memory page cache (in pages; clamped to at least 8).
    pub fn set_cache_capacity(&mut self, pages: usize) {
        self.cache.set_cap(pages);
    }

    fn read_page(&mut self, page: u32) -> Result<Vec<u8>> {
        if let Some(hit) = self.cache.get(page) {
            STORAGE.page_cache_hits.inc();
            return Ok(hit.to_vec());
        }
        STORAGE.page_cache_misses.inc();
        STORAGE.page_reads.inc();
        let mut buf = vec![0u8; PAGE_SIZE];
        read_at(&mut self.file, page as u64 * PAGE_SIZE as u64, &mut buf)?;
        self.cache.put(page, buf.clone().into_boxed_slice());
        Ok(buf)
    }

    /// Walks the committed root chain, validating every page, and returns
    /// its page ids. Length and byte totals must match the header exactly.
    fn walk_chain(&mut self) -> Result<Vec<u32>> {
        let (page, want_pages, want_bytes) = (
            self.state.root_page,
            self.state.root_pages,
            self.state.root_bytes,
        );
        self.walk_blob(page, want_pages, want_bytes)
    }

    /// Walks any chain starting at `first`, validating every page, and
    /// returns its page ids. The declared page and byte totals (from the
    /// header for the root chain, from a manifest entry for a segment
    /// blob) must match the chain on disk exactly.
    pub fn walk_blob(&mut self, first: u32, want_pages: u32, want_bytes: u64) -> Result<Vec<u32>> {
        let mut page = first;
        let mut pages = Vec::with_capacity(want_pages as usize);
        let mut bytes = 0u64;
        while page != 0 {
            if pages.len() >= want_pages as usize {
                return Err(corrupt("page chain longer than declared"));
            }
            let (next, len) = self.validate_page(page)?;
            bytes += len as u64;
            pages.push(page);
            page = next;
        }
        if pages.len() != want_pages as usize || bytes != want_bytes {
            return Err(corrupt(format!(
                "page chain mismatch: {} pages / {} bytes on disk, declared {} / {}",
                pages.len(),
                bytes,
                want_pages,
                want_bytes
            )));
        }
        Ok(pages)
    }

    fn validate_page(&mut self, page: u32) -> Result<(u32, usize)> {
        if !(2..self.state.page_count).contains(&page) {
            return Err(corrupt(format!("page {page} out of range")));
        }
        let buf = self.read_page(page)?;
        let stored = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
        let next = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        let len = u16::from_le_bytes(buf[12..14].try_into().expect("2 bytes")) as usize;
        let kind = buf[14];
        if len > PAGE_PAYLOAD {
            return Err(corrupt(format!("page {page}: length out of range")));
        }
        let sum = fx(&[
            &page.to_le_bytes(),
            &next.to_le_bytes(),
            &[kind],
            &buf[16..16 + len],
        ]);
        if sum != stored {
            return Err(corrupt(format!("page {page}: checksum mismatch")));
        }
        if kind != KIND_SNAP {
            return Err(corrupt(format!("page {page}: unexpected kind {kind}")));
        }
        Ok((next, len))
    }

    /// Reads the committed revision's root-chain bytes.
    pub fn read_chain(&mut self) -> Result<Vec<u8>> {
        let chain = self.chain.clone();
        self.read_pages(&chain)
    }

    /// Reads and concatenates the payloads of `pages` (a chain's page ids
    /// in order), re-validating each page's checksum.
    pub fn read_pages(&mut self, pages: &[u32]) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(pages.len() * PAGE_PAYLOAD);
        for &page in pages {
            let (_, len) = self.validate_page(page)?;
            let buf = self.read_page(page)?;
            out.extend_from_slice(&buf[16..16 + len]);
        }
        Ok(out)
    }

    /// Writes `bytes` as a linked chain over the pre-allocated `pages`.
    fn write_chain(&mut self, bytes: &[u8], pages: &[u32]) -> Result<()> {
        debug_assert_eq!(pages.len(), bytes.len().div_ceil(PAGE_PAYLOAD));
        for (i, chunk) in bytes.chunks(PAGE_PAYLOAD).enumerate() {
            let page = pages[i];
            let next = pages.get(i + 1).copied().unwrap_or(0);
            let mut buf = vec![0u8; PAGE_SIZE];
            let sum = fx(&[
                &page.to_le_bytes(),
                &next.to_le_bytes(),
                &[KIND_SNAP],
                chunk,
            ]);
            buf[0..8].copy_from_slice(&sum.to_le_bytes());
            buf[8..12].copy_from_slice(&next.to_le_bytes());
            buf[12..14].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            buf[14] = KIND_SNAP;
            buf[16..16 + chunk.len()].copy_from_slice(chunk);
            write_at(&mut self.file, page as u64 * PAGE_SIZE as u64, &buf)?;
            STORAGE.page_writes.inc();
            self.cache.put(page, buf.into_boxed_slice());
        }
        Ok(())
    }

    /// Commits `bytes` as revision `revision` in a single root chain — the
    /// whole-image form used by tests and trivial stores. Equivalent to
    /// [`Pager::commit_segments`] with no blobs.
    pub fn commit_chain(&mut self, bytes: &[u8], revision: u64) -> Result<()> {
        self.commit_segments(&[], Vec::new(), revision, |_| bytes.to_vec())?;
        Ok(())
    }

    /// Commits revision `revision` as a set of blob chains plus a root
    /// chain, copy-on-write: every new chain goes into pages referenced by
    /// neither valid header (freelist, then file growth), the data is
    /// fsynced, then the older header slot flips to the new root.
    ///
    /// `blobs` are written first and their allocated page ids handed to
    /// `root`, which builds the root-chain bytes (the store's manifest)
    /// from them. `freed` lists pages of the *previous* revision the
    /// caller no longer references (replaced segments); together with the
    /// replaced root chain they fund the commit after this one — they are
    /// never written during *this* commit, so the previous revision stays
    /// intact on disk until the header flip makes the new one durable.
    /// Pages of untouched blobs are shared between the two revisions.
    ///
    /// Returns the page ids allocated to each blob, parallel to `blobs`.
    pub fn commit_segments(
        &mut self,
        blobs: &[&[u8]],
        freed: Vec<u32>,
        revision: u64,
        root: impl FnOnce(&[Vec<u32>]) -> Vec<u8>,
    ) -> Result<Vec<Vec<u32>>> {
        let mut pool = self.state.free.clone();
        let mut page_count = self.state.page_count;
        let mut alloc = |n: usize| -> Vec<u32> {
            (0..n)
                .map(|_| {
                    pool.pop().unwrap_or_else(|| {
                        let p = page_count;
                        page_count += 1;
                        p
                    })
                })
                .collect()
        };
        let blob_pages: Vec<Vec<u32>> = blobs
            .iter()
            .map(|b| alloc(b.len().div_ceil(PAGE_PAYLOAD)))
            .collect();
        let root_bytes = root(&blob_pages);
        let root_pages = alloc(root_bytes.len().div_ceil(PAGE_PAYLOAD));
        // Grow the file up front so page writes never extend past EOF
        // implicitly (and a short file can never validate as a header).
        if page_count > self.state.page_count {
            self.file.set_len(page_count as u64 * PAGE_SIZE as u64)?;
        }
        for (bytes, pages) in blobs.iter().zip(&blob_pages) {
            let pages = pages.clone();
            self.write_chain(bytes, &pages)?;
        }
        {
            let pages = root_pages.clone();
            self.write_chain(&root_bytes, &pages)?;
        }
        if !root_pages.is_empty() || blob_pages.iter().any(|p| !p.is_empty()) {
            self.file.sync_all()?;
        }
        // The replaced root chain and the caller's replaced blob pages are
        // free for the commit after this one; any entries past the
        // header's capacity are leaked until compaction.
        let mut free = pool;
        free.extend_from_slice(&self.chain);
        free.extend(freed);
        let mut leaked = self.state.leaked;
        if free.len() > FREE_CAP {
            let overflow = (free.len() - FREE_CAP) as u64;
            leaked += overflow;
            STORAGE.pages_leaked.add(overflow);
            free.truncate(FREE_CAP);
        }
        let new_state = HeaderState {
            revision,
            root_page: root_pages.first().copied().unwrap_or(0),
            root_pages: root_pages.len() as u32,
            root_bytes: root_bytes.len() as u64,
            page_count,
            leaked,
            free,
        };
        let slot = 1 - self.active_slot;
        write_at(
            &mut self.file,
            slot as u64 * PAGE_SIZE as u64,
            &encode_header(slot, &new_state),
        )?;
        STORAGE.page_writes.inc();
        self.file.sync_all()?;
        self.state = new_state;
        self.active_slot = slot;
        self.chain = root_pages;
        Ok(blob_pages)
    }
}

fn read_at(file: &mut File, offset: u64, buf: &mut [u8]) -> Result<()> {
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(buf)
        .map_err(|e| corrupt(format!("short read at {offset}: {e}")))
}

fn write_at(file: &mut File, offset: u64, buf: &[u8]) -> Result<()> {
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("strudel_pager_{tag}_{}.pdb", std::process::id()))
    }

    #[test]
    fn create_open_empty() {
        let p = tmp("empty");
        Pager::create(&p).unwrap();
        let mut pager = Pager::open(&p).unwrap();
        assert_eq!(pager.revision(), 0);
        assert_eq!(pager.read_chain().unwrap(), Vec::<u8>::new());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn commit_and_reopen_roundtrips_bytes() {
        let p = tmp("roundtrip");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        {
            let mut pager = Pager::create(&p).unwrap();
            pager.commit_chain(&payload, 1).unwrap();
            assert_eq!(pager.read_chain().unwrap(), payload);
        }
        let mut pager = Pager::open(&p).unwrap();
        assert_eq!(pager.revision(), 1);
        assert_eq!(pager.read_chain().unwrap(), payload);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn cow_commit_reuses_freed_pages() {
        let p = tmp("cow");
        let mut pager = Pager::create(&p).unwrap();
        let big = vec![7u8; PAGE_PAYLOAD * 3 + 5];
        pager.commit_chain(&big, 1).unwrap();
        let count_after_first = pager.page_count();
        // Several same-size commits: the file stops growing once the
        // freelist can satisfy allocations.
        for rev in 2..8 {
            pager.commit_chain(&big, rev).unwrap();
        }
        assert!(
            pager.page_count() <= count_after_first + 4,
            "file kept growing"
        );
        let mut reopened = Pager::open(&p).unwrap();
        assert_eq!(reopened.revision(), 7);
        assert_eq!(reopened.read_chain().unwrap(), big);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn torn_header_falls_back_to_other_slot() {
        let p = tmp("torn");
        let mut pager = Pager::create(&p).unwrap();
        pager.commit_chain(b"revision one", 1).unwrap();
        pager.commit_chain(b"revision two", 2).unwrap();
        // Find which slot holds revision 2 and corrupt it mid-page,
        // simulating a torn header write.
        let mut bytes = std::fs::read(&p).unwrap();
        let rev_at = |b: &[u8], slot: usize| {
            u64::from_le_bytes(
                b[slot * PAGE_SIZE + 16..slot * PAGE_SIZE + 24]
                    .try_into()
                    .unwrap(),
            )
        };
        let slot = if rev_at(&bytes, 0) == 2 { 0 } else { 1 };
        for i in 0..64 {
            bytes[slot * PAGE_SIZE + 100 + i] ^= 0xFF;
        }
        std::fs::write(&p, &bytes).unwrap();
        let mut reopened = Pager::open(&p).unwrap();
        assert_eq!(reopened.revision(), 1);
        assert_eq!(reopened.read_chain().unwrap(), b"revision one");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn flipped_data_page_is_typed_corruption() {
        let p = tmp("flip");
        let mut pager = Pager::create(&p).unwrap();
        pager.commit_chain(&vec![9u8; 5000], 1).unwrap();
        drop(pager);
        let mut bytes = std::fs::read(&p).unwrap();
        // Flip a payload byte in the first data page (page 2).
        bytes[2 * PAGE_SIZE + 100] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        let err = Pager::open(&p).unwrap_err();
        assert!(matches!(err, GraphError::StorageCorrupt { .. }), "{err}");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn both_headers_corrupt_is_an_error() {
        let p = tmp("bothbad");
        Pager::create(&p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[20] ^= 0xFF;
        bytes[PAGE_SIZE + 20] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(
            Pager::open(&p),
            Err(GraphError::StorageCorrupt { .. })
        ));
        std::fs::remove_file(&p).unwrap();
    }
}
