//! Atomic values and object references.
//!
//! STRUDEL supports several atomic types that commonly appear in Web pages
//! (§2.1): integers, strings, URLs, and PostScript / text / image / HTML
//! files. "The atomic types are handled in a uniform fashion, and values are
//! coerced dynamically when they are compared at run time" — see
//! [`Value::coerced_eq`] and [`Value::coerced_cmp`].

use crate::graph::NodeId;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The kind of an external file referenced from a graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum FileKind {
    /// A plain-text file, embedded inline when rendered.
    Text,
    /// An HTML fragment file, embedded verbatim when rendered.
    Html,
    /// An image file, rendered as an `<img>` element.
    Image,
    /// A PostScript file, rendered as a download link.
    PostScript,
}

impl FileKind {
    /// The DDL keyword for this kind (`text`, `html`, `image`, `ps`).
    pub fn keyword(self) -> &'static str {
        match self {
            FileKind::Text => "text",
            FileKind::Html => "html",
            FileKind::Image => "image",
            FileKind::PostScript => "ps",
        }
    }

    /// Parses a DDL keyword into a kind.
    pub fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "text" => FileKind::Text,
            "html" => FileKind::Html,
            "image" | "img" => FileKind::Image,
            "ps" | "postscript" => FileKind::PostScript,
            _ => return None,
        })
    }

    /// Guesses a kind from a file-name extension, the way the BibTeX and
    /// HTML wrappers classify attachment paths.
    pub fn from_path(path: &str) -> Option<Self> {
        let lower = path.to_ascii_lowercase();
        let ext = lower.rsplit('.').next()?;
        Some(match ext {
            "txt" => FileKind::Text,
            "htm" | "html" => FileKind::Html,
            "gif" | "jpg" | "jpeg" | "png" => FileKind::Image,
            "ps" | "eps" => FileKind::PostScript,
            "gz" => {
                // `paper.ps.gz` is still PostScript for STRUDEL's purposes.
                let stem = lower.strip_suffix(".gz").unwrap_or(&lower);
                return FileKind::from_path(stem);
            }
            _ => return None,
        })
    }
}

/// An object in a STRUDEL graph: a node reference or an atomic value.
///
/// Equality and hashing are *strict* (used for indexes and Skolem-function
/// argument identity); query-time comparisons use the dynamic coercion rules
/// in [`Value::coerced_eq`].
#[derive(Clone, Debug)]
pub enum Value {
    /// An internal node, identified by oid.
    Node(NodeId),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(Arc<str>),
    /// A URL.
    Url(Arc<str>),
    /// A reference to an external file of the given kind.
    File(FileKind, Arc<str>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for URL values.
    pub fn url(s: impl AsRef<str>) -> Self {
        Value::Url(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for file values.
    pub fn file(kind: FileKind, path: impl AsRef<str>) -> Self {
        Value::File(kind, Arc::from(path.as_ref()))
    }

    /// Returns the node id if this value is a node.
    #[inline]
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Value::Node(n) => Some(*n),
            _ => None,
        }
    }

    /// Whether this value is an internal node.
    #[inline]
    pub fn is_node(&self) -> bool {
        matches!(self, Value::Node(_))
    }

    /// Whether this value is an atomic (non-node) value.
    #[inline]
    pub fn is_atomic(&self) -> bool {
        !self.is_node()
    }

    /// A short name for the value's type, used in error messages and by the
    /// built-in type-test predicates (`isInt`, `isString`, …).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Node(_) => "node",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Url(_) => "url",
            Value::File(FileKind::Text, _) => "textfile",
            Value::File(FileKind::Html, _) => "htmlfile",
            Value::File(FileKind::Image, _) => "imagefile",
            Value::File(FileKind::PostScript, _) => "psfile",
        }
    }

    /// Dynamic-coercion equality (§2.1): atomic values of different types are
    /// coerced before comparison. `Int` and `Float` compare numerically;
    /// strings compare with numbers when they parse as numbers; URLs and
    /// files compare with strings by their text. Nodes compare only by oid.
    pub fn coerced_eq(&self, other: &Value) -> bool {
        self.coerced_cmp(other) == Some(Ordering::Equal)
    }

    /// Dynamic-coercion ordering. Returns `None` when the two values are
    /// incomparable (e.g. a node and a string, or a non-numeric string and
    /// an integer).
    pub fn coerced_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Node(a), Node(b)) => Some(a.cmp(b)),
            (Node(_), _) | (_, Node(_)) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Bool(_), _) | (_, Bool(_)) => None,
            (Int(_) | Float(_), _) => other
                .text()
                .and_then(|t| coerce_text_numeric(&t, self).map(Ordering::reverse)),
            (_, Int(_) | Float(_)) => self.text().and_then(|t| coerce_text_numeric(&t, other)),
            // Remaining cases are all text-like (Str / Url / File).
            _ => Some(self.text()?.cmp(&other.text()?)),
        }
    }

    /// The textual content of a text-like value (string, URL, file path).
    /// Returns `None` for nodes, numbers, and booleans.
    pub fn text(&self) -> Option<Arc<str>> {
        match self {
            Value::Str(s) | Value::Url(s) | Value::File(_, s) => Some(Arc::clone(s)),
            _ => None,
        }
    }

    /// A *total* order over all values, with no coercion: values of
    /// different types order by a fixed type rank, values of the same type
    /// by their content (floats by `total_cmp`, so NaNs are ordered too).
    /// `Equal` holds exactly for [`PartialEq`]-identical values. This is not
    /// a semantic comparison — [`Value::coerced_cmp`] is — it exists so
    /// relations of values can be put in one canonical order regardless of
    /// how they were produced (the evaluator sorts every final bindings
    /// relation with it, making query output independent of the physical
    /// plan that computed it).
    pub fn canonical_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Node(_) => 0,
                Int(_) => 1,
                Float(_) => 2,
                Bool(_) => 3,
                Str(_) => 4,
                Url(_) => 5,
                File(..) => 6,
            }
        }
        match (self, other) {
            (Node(a), Node(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) | (Url(a), Url(b)) => a.cmp(b),
            (File(ka, a), File(kb, b)) => ka.cmp(kb).then_with(|| a.cmp(b)),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// Compares the text `t` (lhs) against the numeric value `num` (rhs),
/// coercing the text to a number if possible.
fn coerce_text_numeric(t: &str, num: &Value) -> Option<Ordering> {
    let lhs: f64 = t.trim().parse().ok()?;
    match num {
        Value::Int(b) => lhs.partial_cmp(&(*b as f64)),
        Value::Float(b) => lhs.partial_cmp(b),
        _ => None,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Node(a), Node(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Url(a), Url(b)) => a == b,
            (File(ka, a), File(kb, b)) => ka == kb && a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Node(n) => n.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Str(s) | Value::Url(s) => s.hash(state),
            Value::File(k, s) => {
                k.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Node(n) => write!(f, "&{}", n.0),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Url(s) => write!(f, "url({s})"),
            Value::File(k, s) => write!(f, "{}({s})", k.keyword()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<NodeId> for Value {
    fn from(v: NodeId) -> Self {
        Value::Node(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_eq_distinguishes_types() {
        assert_ne!(Value::Int(1997), Value::str("1997"));
        assert_ne!(Value::Str(Arc::from("x")), Value::Url(Arc::from("x")));
    }

    #[test]
    fn coerced_eq_crosses_types() {
        assert!(Value::Int(1997).coerced_eq(&Value::str("1997")));
        assert!(Value::str("1997").coerced_eq(&Value::Int(1997)));
        assert!(Value::Int(3).coerced_eq(&Value::Float(3.0)));
        assert!(Value::url("a/b").coerced_eq(&Value::str("a/b")));
        assert!(!Value::Int(1997).coerced_eq(&Value::str("abc")));
    }

    #[test]
    fn coerced_cmp_orders_numbers_and_text() {
        assert_eq!(
            Value::Int(1).coerced_cmp(&Value::Float(2.0)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("1998").coerced_cmp(&Value::Int(1997)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Int(1997).coerced_cmp(&Value::str("1998")),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("b").coerced_cmp(&Value::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Node(NodeId(1)).coerced_cmp(&Value::str("a")), None);
        assert_eq!(Value::Bool(true).coerced_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn float_nan_is_self_equal_strictly_but_not_coerced() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone()); // bitwise, for index keys
        assert!(!nan.coerced_eq(&nan)); // IEEE semantics at query time
    }

    #[test]
    fn file_kind_from_path() {
        assert_eq!(
            FileKind::from_path("papers/icde98.ps.gz"),
            Some(FileKind::PostScript)
        );
        assert_eq!(
            FileKind::from_path("abstracts/toplas97.txt"),
            Some(FileKind::Text)
        );
        assert_eq!(FileKind::from_path("logo.PNG"), Some(FileKind::Image));
        assert_eq!(FileKind::from_path("index.html"), Some(FileKind::Html));
        assert_eq!(FileKind::from_path("mystery.bin"), None);
        assert_eq!(FileKind::from_path("noext"), None);
    }

    #[test]
    fn file_kind_keyword_roundtrip() {
        for k in [
            FileKind::Text,
            FileKind::Html,
            FileKind::Image,
            FileKind::PostScript,
        ] {
            assert_eq!(FileKind::from_keyword(k.keyword()), Some(k));
        }
        assert_eq!(
            FileKind::from_keyword("postscript"),
            Some(FileKind::PostScript)
        );
        assert_eq!(FileKind::from_keyword("video"), None);
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(
            Value::file(FileKind::PostScript, "a.ps").type_name(),
            "psfile"
        );
        assert_eq!(Value::Node(NodeId(0)).type_name(), "node");
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(
            Value::file(FileKind::Text, "a.txt").to_string(),
            "text(a.txt)"
        );
        assert_eq!(Value::Node(NodeId(3)).to_string(), "&3");
    }
}
