//! A small, fast, non-cryptographic hasher (the FxHash algorithm used by
//! rustc), plus `HashMap`/`HashSet` aliases built on it.
//!
//! The repository's indexes are hash-heavy with short keys (interned symbols,
//! 32-bit oids), exactly the regime where SipHash's HashDoS protection costs
//! the most and buys nothing: all keys are internally generated, never
//! attacker controlled. Implemented in-repo because the reproduction is
//! dependency-minimal.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash implementation.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("strudel"), hash_one("strudel"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one("a"), hash_one("b"));
        assert_ne!(hash_one((1u32, 2u32)), hash_one((2u32, 1u32)));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<&str, i32> = FxHashMap::default();
        for (i, k) in ["year", "title", "author", "abstract"].iter().enumerate() {
            m.insert(k, i as i32);
        }
        assert_eq!(m["author"], 2);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn unaligned_byte_tails_hash_differently() {
        // Exercise the chunk remainder path.
        assert_ne!(
            hash_one(b"123456789".as_slice()),
            hash_one(b"123456788".as_slice())
        );
        assert_ne!(
            hash_one(b"12345678".as_slice()),
            hash_one(b"123456789".as_slice())
        );
    }
}
