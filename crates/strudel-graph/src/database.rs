//! A database: a set of named graphs over one shared object universe (§2.1).
//!
//! "A database consists of a set of graphs … Graphs of the same database may
//! share objects and/or collections." The database is the unit the STRUDEL
//! query processor operates on: StruQL names one input graph and one output
//! graph (`INPUT BIBTEX … OUTPUT HomePage`), both resolved here.

use crate::error::{GraphError, Result};
use crate::graph::{Graph, Universe};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A set of named graphs sharing a [`Universe`].
pub struct Database {
    universe: Arc<Universe>,
    graphs: BTreeMap<String, Graph>,
}

impl Database {
    /// Creates an empty database with a fresh universe.
    pub fn new() -> Self {
        Database {
            universe: Universe::new(),
            graphs: BTreeMap::new(),
        }
    }

    /// The shared universe.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Creates an empty graph under `name`.
    pub fn create_graph(&mut self, name: &str) -> Result<&mut Graph> {
        if self.graphs.contains_key(name) {
            return Err(GraphError::DuplicateGraph(name.to_string()));
        }
        self.graphs
            .insert(name.to_string(), Graph::new(Arc::clone(&self.universe)));
        Ok(self.graphs.get_mut(name).expect("just inserted"))
    }

    /// Inserts an existing graph under `name`. The graph must share this
    /// database's universe (so oids and symbols are meaningful).
    pub fn insert_graph(&mut self, name: &str, graph: Graph) -> Result<()> {
        if self.graphs.contains_key(name) {
            return Err(GraphError::DuplicateGraph(name.to_string()));
        }
        assert!(
            Arc::ptr_eq(graph.universe(), &self.universe),
            "graph belongs to a different universe"
        );
        self.graphs.insert(name.to_string(), graph);
        Ok(())
    }

    /// Removes and returns the graph under `name`.
    pub fn remove_graph(&mut self, name: &str) -> Result<Graph> {
        self.graphs
            .remove(name)
            .ok_or_else(|| GraphError::UnknownGraph(name.to_string()))
    }

    /// Borrows the graph under `name`.
    pub fn graph(&self, name: &str) -> Result<&Graph> {
        self.graphs
            .get(name)
            .ok_or_else(|| GraphError::UnknownGraph(name.to_string()))
    }

    /// Mutably borrows the graph under `name`.
    pub fn graph_mut(&mut self, name: &str) -> Result<&mut Graph> {
        self.graphs
            .get_mut(name)
            .ok_or_else(|| GraphError::UnknownGraph(name.to_string()))
    }

    /// Whether a graph named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.graphs.contains_key(name)
    }

    /// Names of all graphs, sorted.
    pub fn graph_names(&self) -> impl Iterator<Item = &str> {
        self.graphs.keys().map(String::as_str)
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the database holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_graph("BIBTEX").unwrap();
        assert!(db.contains("BIBTEX"));
        assert!(db.graph("BIBTEX").is_ok());
        assert!(db.graph("missing").is_err());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut db = Database::new();
        db.create_graph("G").unwrap();
        assert!(matches!(
            db.create_graph("G"),
            Err(GraphError::DuplicateGraph(_))
        ));
    }

    #[test]
    fn graphs_share_objects() {
        let mut db = Database::new();
        let n = {
            let data = db.create_graph("Data").unwrap();
            let n = data.new_node(Some("shared"));
            data.add_edge_str(n, "k", 7i64).unwrap();
            n
        };
        {
            let site = db.create_graph("Site").unwrap();
            site.adopt_node(n).unwrap();
        }
        let site = db.graph("Site").unwrap();
        assert!(site.contains_node(n));
        assert_eq!(site.node_name(n).as_deref(), Some("shared"));
        let k = db.universe().interner().get("k").unwrap();
        assert_eq!(site.reader().attr(n, k), Some(&Value::Int(7)));
    }

    #[test]
    fn remove_returns_graph() {
        let mut db = Database::new();
        db.create_graph("G").unwrap();
        let g = db.remove_graph("G").unwrap();
        assert_eq!(g.node_count(), 0);
        assert!(!db.contains("G"));
        assert!(db.remove_graph("G").is_err());
    }

    #[test]
    fn graph_names_sorted() {
        let mut db = Database::new();
        db.create_graph("b").unwrap();
        db.create_graph("a").unwrap();
        let names: Vec<_> = db.graph_names().collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
