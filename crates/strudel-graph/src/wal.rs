//! The write-ahead log: append-only delta frames with commit records,
//! giving the store durable commits without rewriting the page file.
//!
//! ```text
//! header  [magic "STRUWAL2"][base_revision u64][created_at u64][checksum u64]
//! frame   [kind u8][len u32][payload][checksum u64]
//! ```
//!
//! The header's `base_revision` names the page-file revision this log's
//! frames apply on top of; a log whose base does not match the page file
//! is stale (discarded) or impossible (typed recovery error) — see
//! [`crate::store::PagedStore`]. Each frame's checksum covers the base
//! revision, the frame's own byte offset, its kind and its payload, so a
//! frame is only valid in this log, at this position.
//!
//! A transaction is a run of `Delta` frames terminated by a `Commit`
//! frame naming the revision it produces; the commit append is fsynced,
//! which is the durability point. Under **group commit** several
//! transactions' delta runs are appended back to back and covered by a
//! *single* commit record: the batch becomes one revision, so a crash can
//! only ever land before or after the whole batch — never inside it.
//! Recovery scans frames until the first invalid one: everything after
//! the last *committed* frame — a torn half-written tail, or deltas whose
//! commit never made it — is truncated away, and the committed prefix is
//! replayed. A log can never replay into a state that was not explicitly
//! committed.
//!
//! The header also records the log's creation time, so `store info` and
//! `/stats` can report how long changes have been accumulating since the
//! last checkpoint (the "WAL age").

use crate::error::{GraphError, Result};
use crate::fsio;
use crate::fxhash::FxHasher;
use crate::stats::STORAGE;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};
use strudel_obs::trace;

const MAGIC: &[u8; 8] = b"STRUWAL2";
const HEADER_LEN: u64 = 32;

/// Size in bytes of an empty (header-only) log.
pub const EMPTY_SIZE: u64 = HEADER_LEN;
/// Nonzero seed, distinct from the pager's, so zeroed bytes never validate.
const CHECKSUM_SEED: u64 = 0x5354_5255_5741_4c31;

/// Frame kind: one delta payload within a transaction.
const KIND_DELTA: u8 = 1;
/// Frame kind: commit record; payload is the resulting revision (u64).
const KIND_COMMIT: u8 = 2;

fn corrupt(message: impl Into<String>) -> GraphError {
    GraphError::StorageCorrupt {
        message: message.into(),
    }
}

fn header_checksum(base_revision: u64, created_at: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(CHECKSUM_SEED);
    h.write(MAGIC);
    h.write_u64(base_revision);
    h.write_u64(created_at);
    h.finish()
}

fn unix_now_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn frame_checksum(base_revision: u64, offset: u64, kind: u8, payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(CHECKSUM_SEED);
    h.write_u64(base_revision);
    h.write_u64(offset);
    h.write_u8(kind);
    h.write_u64(payload.len() as u64);
    h.write(payload);
    h.finish()
}

/// One committed transaction replayed from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalTxn {
    /// The revision this transaction's commit record names.
    pub revision: u64,
    /// Delta payloads in append order.
    pub deltas: Vec<Vec<u8>>,
}

/// An open write-ahead log positioned at its append end.
pub struct Wal {
    file: File,
    path: PathBuf,
    base_revision: u64,
    created_at: u64,
    /// Next append offset (== current durable-prefix length after open).
    end: u64,
}

impl Wal {
    /// Creates (truncating) a log whose frames apply on top of page-file
    /// revision `base_revision`, and makes the header durable.
    pub fn create(path: &Path, base_revision: u64) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let created_at = unix_now_secs();
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&base_revision.to_le_bytes());
        header.extend_from_slice(&created_at.to_le_bytes());
        header.extend_from_slice(&header_checksum(base_revision, created_at).to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        STORAGE.wal_fsyncs.inc();
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            base_revision,
            created_at,
            end: HEADER_LEN,
        })
    }

    /// Opens an existing log and replays its committed transactions.
    ///
    /// The returned log is truncated to its last commit record: a torn
    /// tail (first frame that fails validation) and any trailing deltas
    /// whose commit never became durable are cut off and counted. A file
    /// too short to hold a header is treated as empty-from-birth (a crash
    /// during log reset) and recreated at `fallback_base`; a present but
    /// invalid header is typed corruption — committed work might be in it.
    pub fn open(path: &Path, fallback_base: u64) -> Result<(Self, Vec<WalTxn>)> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len < HEADER_LEN {
            drop(file);
            return Ok((Wal::create(path, fallback_base)?, Vec::new()));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if &header[0..8] != MAGIC {
            return Err(corrupt(format!("{}: bad WAL magic", path.display())));
        }
        let base_revision = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let created_at = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let stored = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
        if stored != header_checksum(base_revision, created_at) {
            return Err(corrupt(format!(
                "{}: WAL header checksum mismatch",
                path.display()
            )));
        }
        let mut body = Vec::with_capacity((len - HEADER_LEN) as usize);
        file.read_to_end(&mut body)?;

        let mut txns = Vec::new();
        let mut pending: Vec<Vec<u8>> = Vec::new();
        let mut at = 0usize;
        // Offset (file coordinates) just past the last commit frame.
        let mut committed_end = HEADER_LEN;
        while let Some((kind, payload, next)) = parse_frame(&body, at, base_revision) {
            if kind == KIND_COMMIT {
                let revision = u64::from_le_bytes(
                    payload
                        .try_into()
                        .map_err(|_| corrupt("WAL commit frame with malformed revision"))?,
                );
                txns.push(WalTxn {
                    revision,
                    deltas: std::mem::take(&mut pending),
                });
                committed_end = HEADER_LEN + next as u64;
            } else {
                pending.push(payload.to_vec());
            }
            at = next;
        }
        if HEADER_LEN + at as u64 != len || !pending.is_empty() {
            // Torn tail or dangling uncommitted deltas: cut back to the
            // committed prefix so future appends extend valid state.
            STORAGE.wal_torn_tails.inc();
            file.set_len(committed_end)?;
            file.sync_all()?;
            STORAGE.wal_fsyncs.inc();
        }
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                base_revision,
                created_at,
                end: committed_end,
            },
            txns,
        ))
    }

    /// The page-file revision this log applies on top of.
    pub fn base_revision(&self) -> u64 {
        self.base_revision
    }

    /// Unix time (seconds) the log was created — i.e. the last checkpoint.
    pub fn created_at_unix_secs(&self) -> u64 {
        self.created_at
    }

    /// Seconds since the log was created (0 if the clock went backwards).
    pub fn age_seconds(&self) -> u64 {
        unix_now_secs().saturating_sub(self.created_at)
    }

    /// Bytes in the durable log (header included).
    pub fn size_bytes(&self) -> u64 {
        self.end
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&mut self, kind: u8, payload: &[u8]) -> Result<()> {
        let mut frame = Vec::with_capacity(13 + payload.len() + 8);
        frame.push(kind);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(
            &frame_checksum(self.base_revision, self.end, kind, payload).to_le_bytes(),
        );
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&frame)?;
        self.end += frame.len() as u64;
        STORAGE.wal_appended_frames.inc();
        STORAGE.wal_bytes.add(frame.len() as u64);
        Ok(())
    }

    /// Appends one delta payload (not yet durable — see [`Wal::commit`]).
    pub fn append_delta(&mut self, payload: &[u8]) -> Result<()> {
        self.append(KIND_DELTA, payload)
    }

    /// Appends a commit record naming `revision` and syncs the log's data:
    /// once this returns, the transaction — or, under group commit, every
    /// transaction appended since the previous commit record — survives
    /// any crash. One commit record covers the whole run of deltas before
    /// it, which is what makes a batched commit all-or-nothing on disk.
    pub fn commit(&mut self, revision: u64) -> Result<()> {
        let mut tspan = trace::span("store.wal_commit", trace::Layer::Store);
        if tspan.is_live() {
            tspan.attr_u64("rev", revision);
            tspan.attr_u64("wal_bytes", self.end);
        }
        self.append(KIND_COMMIT, &revision.to_le_bytes())?;
        fsio::sync_file_data(&self.file)?;
        STORAGE.wal_commits.inc();
        STORAGE.wal_fsyncs.inc();
        Ok(())
    }
}

/// Parses the frame at `at`; `None` if truncated or checksum-invalid.
fn parse_frame(body: &[u8], at: usize, base_revision: u64) -> Option<(u8, &[u8], usize)> {
    let kind = *body.get(at)?;
    let len_bytes = body.get(at + 1..at + 5)?;
    let len = u32::from_le_bytes(len_bytes.try_into().ok()?) as usize;
    let payload = body.get(at + 5..at + 5 + len)?;
    let sum_bytes = body.get(at + 5 + len..at + 13 + len)?;
    let stored = u64::from_le_bytes(sum_bytes.try_into().ok()?);
    if stored != frame_checksum(base_revision, HEADER_LEN + at as u64, kind, payload) {
        return None;
    }
    Some((kind, payload, at + 13 + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("strudel_wal_{tag}_{}.wal", std::process::id()))
    }

    #[test]
    fn committed_txns_replay_in_order() {
        let p = tmp("replay");
        {
            let mut wal = Wal::create(&p, 3).unwrap();
            wal.append_delta(b"alpha").unwrap();
            wal.append_delta(b"beta").unwrap();
            wal.commit(4).unwrap();
            wal.append_delta(b"gamma").unwrap();
            wal.commit(5).unwrap();
        }
        let (wal, txns) = Wal::open(&p, 0).unwrap();
        assert_eq!(wal.base_revision(), 3);
        assert_eq!(
            txns,
            vec![
                WalTxn {
                    revision: 4,
                    deltas: vec![b"alpha".to_vec(), b"beta".to_vec()]
                },
                WalTxn {
                    revision: 5,
                    deltas: vec![b"gamma".to_vec()]
                },
            ]
        );
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_last_commit() {
        let p = tmp("torn");
        {
            let mut wal = Wal::create(&p, 0).unwrap();
            wal.append_delta(b"kept").unwrap();
            wal.commit(1).unwrap();
            wal.append_delta(b"doomed: commit never lands").unwrap();
        }
        let committed = {
            let (wal, txns) = Wal::open(&p, 0).unwrap();
            assert_eq!(txns.len(), 1);
            assert_eq!(txns[0].deltas, vec![b"kept".to_vec()]);
            wal.size_bytes()
        };
        // The dangling delta is gone from disk; reopening is clean and
        // appending continues from the committed prefix.
        assert_eq!(std::fs::metadata(&p).unwrap().len(), committed);
        let (mut wal, txns) = Wal::open(&p, 0).unwrap();
        assert_eq!(txns.len(), 1);
        wal.append_delta(b"later").unwrap();
        wal.commit(2).unwrap();
        let (_, txns) = Wal::open(&p, 0).unwrap();
        assert_eq!(txns.len(), 2);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn bit_flip_in_tail_loses_only_the_tail() {
        let p = tmp("flip");
        {
            let mut wal = Wal::create(&p, 0).unwrap();
            wal.append_delta(b"first").unwrap();
            wal.commit(1).unwrap();
            wal.append_delta(b"second").unwrap();
            wal.commit(2).unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        let n = bytes.len();
        bytes[n - 4] ^= 0x10; // inside the final commit frame
        std::fs::write(&p, &bytes).unwrap();
        let (_, txns) = Wal::open(&p, 0).unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].revision, 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn short_file_is_recreated_at_fallback_base() {
        let p = tmp("short");
        std::fs::write(&p, b"tiny").unwrap();
        let (wal, txns) = Wal::open(&p, 9).unwrap();
        assert!(txns.is_empty());
        assert_eq!(wal.base_revision(), 9);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn creation_time_survives_reopen() {
        let p = tmp("age");
        let created = {
            let mut wal = Wal::create(&p, 0).unwrap();
            assert!(wal.created_at_unix_secs() > 0);
            wal.append_delta(b"x").unwrap();
            wal.commit(1).unwrap();
            wal.created_at_unix_secs()
        };
        let (wal, _) = Wal::open(&p, 0).unwrap();
        assert_eq!(wal.created_at_unix_secs(), created);
        assert!(wal.age_seconds() < 3600, "age must be measured from now");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn corrupt_header_is_typed() {
        let p = tmp("hdr");
        {
            let mut wal = Wal::create(&p, 0).unwrap();
            wal.append_delta(b"x").unwrap();
            wal.commit(1).unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[10] ^= 0xFF; // base_revision byte: header checksum now fails
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(
            Wal::open(&p, 0),
            Err(GraphError::StorageCorrupt { .. })
        ));
        std::fs::remove_file(&p).unwrap();
    }
}
