//! Crash-safe file writes.
//!
//! The repository's original `save_to_file` truncated the destination in
//! place (`File::create` + write), so a crash mid-save destroyed the only
//! copy of the graph, and nothing in the tree ever called fsync — a write
//! that "succeeded" could still evaporate on power loss. Every durable
//! write in the workspace now goes through this module's protocol:
//!
//! 1. write the new contents to a hidden temp file **in the destination's
//!    directory** (same filesystem, so the rename below is atomic),
//! 2. flush and `fsync` the temp file,
//! 3. `rename(2)` it over the destination (atomic replacement: readers see
//!    either the complete old file or the complete new file, never a torn
//!    or empty one),
//! 4. `fsync` the directory, making the rename itself durable.
//!
//! On any error the temp file is removed and the destination is untouched.
//!
//! [`atomic_write_in`] performs steps 1–3 only; callers writing many files
//! into one directory (site publication) use it per file and then issue a
//! single [`fsync_dir`] — per-file atomicity with one directory flush.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes temp files of concurrent writers in one directory.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_path_for(dest: &Path) -> io::Result<PathBuf> {
    let name = dest
        .file_name()
        .ok_or_else(|| io::Error::other(format!("{}: not a file path", dest.display())))?
        .to_string_lossy()
        .into_owned();
    let parent = parent_dir(dest);
    Ok(parent.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    )))
}

fn parent_dir(dest: &Path) -> PathBuf {
    match dest.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// Flushes a directory's metadata (new names, renames) to stable storage.
///
/// A no-op error on platforms where directories cannot be opened is
/// swallowed: the write itself already succeeded, and rename atomicity (the
/// crash-*consistency* half of the protocol) does not depend on this.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Flushes a file's data (and the metadata needed to read it back) to
/// stable storage — `fdatasync(2)` semantics via `File::sync_data`. The
/// write-ahead log's commit path uses this instead of `sync_all`: the log
/// grows strictly by appends within a preallocated-or-extended file, so the
/// lighter data sync is a valid durability point, and under group commit it
/// is the one syscall the whole batch shares.
pub fn sync_file_data(file: &File) -> io::Result<()> {
    file.sync_data()
}

/// Atomically replaces `dest` with whatever `write` produces, with full
/// durability (file fsync, atomic rename, directory fsync).
///
/// `write` receives a buffered writer over the temp file. If it returns an
/// error — including an interrupted/failing underlying writer — the temp
/// file is removed and `dest` is left byte-identical to what it was.
pub fn atomic_write_with<E: From<io::Error>>(
    dest: &Path,
    write: impl FnOnce(&mut BufWriter<File>) -> Result<(), E>,
) -> Result<(), E> {
    let tmp = temp_path_for(dest).map_err(E::from)?;
    let result = write_temp(&tmp, write);
    match result {
        Ok(()) => {}
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
    }
    if let Err(e) = std::fs::rename(&tmp, dest) {
        let _ = std::fs::remove_file(&tmp);
        return Err(E::from(e));
    }
    fsync_dir(&parent_dir(dest)).map_err(E::from)
}

fn write_temp<E: From<io::Error>>(
    tmp: &Path,
    write: impl FnOnce(&mut BufWriter<File>) -> Result<(), E>,
) -> Result<(), E> {
    let file = File::create(tmp).map_err(E::from)?;
    let mut w = BufWriter::new(file);
    write(&mut w)?;
    w.flush().map_err(E::from)?;
    w.get_ref().sync_all().map_err(E::from)
}

/// Atomically replaces `dest` with `bytes` (temp file, fsync, rename,
/// directory fsync).
pub fn atomic_write(dest: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_with::<io::Error>(dest, |w| w.write_all(bytes))
}

/// Atomically replaces `dir/name` with `bytes` **without** the trailing
/// directory fsync. A reader (or a crash) never observes a torn file, but
/// the replacement itself is only durable after a later [`fsync_dir`] on
/// `dir` — the batch-publication pattern.
pub fn atomic_write_in(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let dest = dir.join(name);
    let tmp = temp_path_for(&dest)?;
    if let Err(e) = write_temp::<io::Error>(&tmp, |w| w.write_all(bytes)) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, &dest) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("strudel_fsio_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let d = tmpdir("replace");
        let p = d.join("f.bin");
        atomic_write(&p, b"old").unwrap();
        atomic_write(&p, b"new contents").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"new contents");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn failed_write_leaves_destination_and_no_litter() {
        let d = tmpdir("fail");
        let p = d.join("f.bin");
        atomic_write(&p, b"the original").unwrap();
        let err = atomic_write_with::<io::Error>(&p, |w| {
            w.write_all(b"partial garbage")?;
            Err(io::Error::other("injected failure"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "injected failure");
        assert_eq!(std::fs::read(&p).unwrap(), b"the original");
        // No temp files left behind.
        assert_eq!(std::fs::read_dir(&d).unwrap().count(), 1);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn write_in_then_dir_fsync() {
        let d = tmpdir("batch");
        atomic_write_in(&d, "a.html", b"<a>").unwrap();
        atomic_write_in(&d, "b.html", b"<b>").unwrap();
        fsync_dir(&d).unwrap();
        assert_eq!(std::fs::read(d.join("a.html")).unwrap(), b"<a>");
        assert_eq!(std::fs::read(d.join("b.html")).unwrap(), b"<b>");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn rejects_pathless_destination() {
        assert!(atomic_write(Path::new("/"), b"x").is_err());
    }
}
