//! String interning for edge labels and collection names.
//!
//! Labels are the "schema" of a semistructured graph and are compared and
//! hashed constantly during query evaluation, so they are interned once into
//! a [`Sym`] (a 32-bit handle). All graphs of one [`crate::Database`] share a
//! single [`Interner`] so a `Sym` is meaningful across the graphs a query
//! reads and writes.

use crate::fxhash::FxHashMap;
use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// An interned string handle. Cheap to copy, hash, and compare.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Sym(pub u32);

impl Sym {
    /// The raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Default)]
struct InternerInner {
    strings: Vec<Arc<str>>,
    lookup: FxHashMap<Arc<str>, Sym>,
}

/// A thread-safe string interner shared by all graphs of a database.
///
/// Interning is write-locked; resolution takes a read lock and returns a
/// cheaply clonable `Arc<str>`.
#[derive(Default)]
pub struct Interner {
    inner: RwLock<InternerInner>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&self, s: &str) -> Sym {
        if let Some(&sym) = self.inner.read().lookup.get(s) {
            return sym;
        }
        let mut inner = self.inner.write();
        // Re-check under the write lock: another thread may have interned
        // the same string between our read and write acquisitions.
        if let Some(&sym) = inner.lookup.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Sym(u32::try_from(inner.strings.len()).expect("interner overflow"));
        inner.strings.push(Arc::clone(&arc));
        inner.lookup.insert(arc, sym);
        sym
    }

    /// Looks up a previously interned string without interning it.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.inner.read().lookup.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        Arc::clone(&self.inner.read().strings[sym.index()])
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("Paper");
        let b = i.intern("Paper");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let i = Interner::new();
        assert_ne!(i.intern("year"), i.intern("Year"));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let i = Interner::new();
        let s = i.intern("TechReport");
        assert_eq!(&*i.resolve(s), "TechReport");
    }

    #[test]
    fn get_does_not_intern() {
        let i = Interner::new();
        assert!(i.get("missing").is_none());
        assert!(i.is_empty());
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let i = Arc::new(Interner::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|n| i.intern(&format!("label{n}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_eq!(i.len(), 100);
    }
}
