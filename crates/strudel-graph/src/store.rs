//! Persistence for the data repository: the flat snapshot codec and the
//! paged, WAL-backed store built on top of it.
//!
//! §6 of the paper lists "designing efficient storage representations for
//! semistructured data" among the open problems: "traditional database
//! systems rely heavily on schema information to organize data on disk",
//! which a schemaless repository cannot. This module implements the natural
//! schema-free layout the paper's repository design implies: a **symbol
//! table** (every label and collection name once), a **node table** (names
//! and out-edge lists referencing symbols), and **collection extents** —
//! the same three structures the in-memory indexes are built from, so a
//! loaded graph re-indexes in one pass.
//!
//! The format is a length-prefixed little-endian encoding, written and read
//! without intermediate allocation beyond the structures themselves. It is
//! deliberately dependency-free (no serde): the point of the exercise is
//! the *layout*, mirroring how the 1997 prototype would have had to store
//! graphs.
//!
//! On top of the codec sits [`PagedStore`]: snapshots live in a
//! [`crate::pager`] page file, commits are logged as typed [`DeltaOp`]s in
//! a [`crate::wal`] write-ahead log and replayed on open, and readers take
//! [`Snapshot`]s — immutable materialized revisions that stay consistent
//! while the writer keeps committing. See `docs/STORAGE.md` for the file
//! formats and the crash-safety argument.

use crate::error::{GraphError, Result};
use crate::fsio;
use crate::graph::{Graph, NodeId};
use crate::pager::Pager;
use crate::stats::STORAGE;
use crate::symbol::Sym;
use crate::value::{FileKind, Value};
use crate::wal::Wal;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"STRUDEL1";

fn io_err(e: io::Error) -> GraphError {
    GraphError::Storage {
        message: format!("I/O error: {e}"),
    }
}

fn corrupt(message: impl Into<String>) -> GraphError {
    GraphError::StorageCorrupt {
        message: message.into(),
    }
}

fn recovery(message: impl Into<String>) -> GraphError {
    GraphError::StorageRecovery {
        message: message.into(),
    }
}

/// Checks a count fits the on-disk `u32` representation; oversized graphs
/// fail loudly instead of silently writing a corrupt file.
fn checked_count(n: usize, what: &str) -> Result<u32> {
    u32::try_from(n).map_err(|_| corrupt(format!("{what} count {n} exceeds format limit")))
}

// ------------------------------------------------------------- primitives ----

fn write_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_u64(w: &mut impl Write, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_str(w: &mut impl Write, s: &str) -> Result<()> {
    write_u32(
        w,
        u32::try_from(s.len()).map_err(|_| corrupt("string too long"))?,
    )?;
    w.write_all(s.as_bytes()).map_err(io_err)
}

/// A bounds-checked reader over the whole (buffered) input. Every count
/// and length in the file is validated against the bytes actually present
/// *before* any allocation, so a corrupted length prefix cannot trigger an
/// unbounded allocation (found by the bit-flip fuzz test).
struct In<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> In<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt("truncated input"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a count that prefixes `count * min_record_bytes`-byte records;
    /// rejects counts the remaining input cannot possibly hold.
    fn count(&mut self, min_record_bytes: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_record_bytes.max(1)) > self.remaining() {
            return Err(corrupt(format!("count {n} exceeds remaining input")));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = if self.remaining() < len {
            return Err(corrupt("truncated string"));
        } else {
            self.take(len)?
        };
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid UTF-8 in stored string"))
    }
}

// ------------------------------------------------------------- values ----

const TAG_NODE: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_URL: u8 = 5;
const TAG_FILE: u8 = 6;

fn file_kind_tag(kind: &FileKind) -> u8 {
    match kind {
        FileKind::Text => 0,
        FileKind::Html => 1,
        FileKind::Image => 2,
        FileKind::PostScript => 3,
    }
}

fn file_kind_of(tag: u8) -> Result<FileKind> {
    Ok(match tag {
        0 => FileKind::Text,
        1 => FileKind::Html,
        2 => FileKind::Image,
        3 => FileKind::PostScript,
        other => return Err(corrupt(format!("unknown file kind {other}"))),
    })
}

fn write_value(w: &mut impl Write, v: &Value, remap: &dyn Fn(NodeId) -> u32) -> Result<()> {
    match v {
        Value::Node(n) => {
            w.write_all(&[TAG_NODE]).map_err(io_err)?;
            write_u32(w, remap(*n))
        }
        Value::Int(i) => {
            w.write_all(&[TAG_INT]).map_err(io_err)?;
            write_u64(w, *i as u64)
        }
        Value::Float(f) => {
            w.write_all(&[TAG_FLOAT]).map_err(io_err)?;
            write_u64(w, f.to_bits())
        }
        Value::Bool(b) => w.write_all(&[TAG_BOOL, u8::from(*b)]).map_err(io_err),
        Value::Str(s) => {
            w.write_all(&[TAG_STR]).map_err(io_err)?;
            write_str(w, s)
        }
        Value::Url(s) => {
            w.write_all(&[TAG_URL]).map_err(io_err)?;
            write_str(w, s)
        }
        Value::File(kind, path) => {
            w.write_all(&[TAG_FILE, file_kind_tag(kind)])
                .map_err(io_err)?;
            write_str(w, path)
        }
    }
}

fn read_value(r: &mut In<'_>, nodes: &[NodeId]) -> Result<Value> {
    Ok(match r.u8()? {
        TAG_NODE => {
            let idx = r.u32()? as usize;
            Value::Node(
                *nodes
                    .get(idx)
                    .ok_or_else(|| corrupt("node index out of range"))?,
            )
        }
        TAG_INT => Value::Int(r.u64()? as i64),
        TAG_FLOAT => Value::Float(f64::from_bits(r.u64()?)),
        TAG_BOOL => Value::Bool(r.u8()? != 0),
        TAG_STR => Value::str(r.str()?),
        TAG_URL => Value::url(r.str()?),
        TAG_FILE => {
            let kind = file_kind_of(r.u8()?)?;
            Value::file(kind, r.str()?)
        }
        other => return Err(corrupt(format!("unknown value tag {other}"))),
    })
}

// ------------------------------------------------------------ graph I/O ----

/// Serializes a graph to a writer.
///
/// Layout: magic, symbol table (all labels used), node table (name flag +
/// name, edge list of `(symbol index, value)`), collection extents. Node
/// references are densified to the graph's member order, so the stored form
/// is independent of the universe's global oid space.
pub fn save(graph: &Graph, w: &mut impl Write) -> Result<()> {
    w.write_all(MAGIC).map_err(io_err)?;

    // Dense node numbering.
    let members = graph.nodes();
    checked_count(members.len(), "node")?;
    let mut dense = std::collections::HashMap::with_capacity(members.len());
    for (i, &n) in members.iter().enumerate() {
        dense.insert(n, u32::try_from(i).expect("node count checked above"));
    }
    let remap = |n: NodeId| -> u32 { *dense.get(&n).unwrap_or(&u32::MAX) };

    // Symbol table: all labels that occur, in first-use order.
    let mut sym_index: Vec<Sym> = Vec::new();
    let mut sym_of = std::collections::HashMap::new();
    let reader = graph.reader();
    for &n in members {
        for (l, _) in reader.out(n) {
            if !sym_of.contains_key(l) {
                let idx = checked_count(sym_index.len(), "symbol")?;
                sym_index.push(*l);
                sym_of.insert(*l, idx);
            }
        }
    }
    write_u32(w, checked_count(sym_index.len(), "symbol")?)?;
    for &s in &sym_index {
        write_str(w, &graph.resolve(s))?;
    }

    // Node table.
    write_u32(w, checked_count(members.len(), "node")?)?;
    for &n in members {
        match reader.name(n) {
            Some(name) => {
                w.write_all(&[1]).map_err(io_err)?;
                write_str(w, name)?;
            }
            None => w.write_all(&[0]).map_err(io_err)?,
        }
        let out = reader.out(n);
        // Dangling node references (to nodes outside this graph) are not
        // representable in the dense numbering; reject rather than corrupt.
        for (_, v) in out {
            if let Value::Node(m) = v {
                if !dense.contains_key(m) {
                    return Err(corrupt(format!(
                        "edge to non-member node {m}; adopt it before saving"
                    )));
                }
            }
        }
        write_u32(w, checked_count(out.len(), "out-edge")?)?;
        for (l, v) in out {
            write_u32(w, sym_of[l])?;
            write_value(w, v, &remap)?;
        }
    }

    // Collections.
    let colls = graph.collection_names().to_vec();
    write_u32(w, checked_count(colls.len(), "collection")?)?;
    for c in colls {
        write_str(w, &graph.resolve(c))?;
        let items = graph.collection(c).expect("listed").items();
        for item in items {
            if let Value::Node(m) = item {
                if !dense.contains_key(m) {
                    return Err(corrupt("collection member is not a graph member"));
                }
            }
        }
        write_u32(w, checked_count(items.len(), "collection item")?)?;
        for item in items {
            write_value(w, item, &remap)?;
        }
    }
    Ok(())
}

/// Deserializes a graph from a reader into a fresh standalone graph.
///
/// The entire stream is buffered first so every count in the file can be
/// validated against the bytes actually present — corrupted inputs fail
/// with an error rather than attempting huge allocations.
pub fn load(reader: &mut impl Read) -> Result<Graph> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf).map_err(io_err)?;
    load_slice(&buf)
}

/// Deserializes a graph from an in-memory buffer.
///
/// The buffer must contain exactly one graph: trailing bytes after the last
/// collection record are rejected as [`GraphError::StorageCorrupt`] (a file
/// that "loads fine" but carries unread data is evidence of truncated or
/// mixed-up writes, not something to serve from).
pub fn load_slice(buf: &[u8]) -> Result<Graph> {
    let mut g = Graph::standalone();
    load_slice_into(&mut g, buf)?;
    Ok(g)
}

/// Deserializes a graph from a buffer into `g` — typically a fresh graph,
/// either standalone or attached to a shared universe (how the serving tier
/// materializes a store into its mediated universe). Same strictness as
/// [`load_slice`], including the trailing-garbage check.
pub fn load_slice_into(g: &mut Graph, buf: &[u8]) -> Result<()> {
    let mut r = In { buf, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(corrupt("not a STRUDEL graph file"));
    }

    // Each symbol record is at least its 4-byte length prefix.
    let n_syms = r.count(4)?;
    let mut syms = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        let s = r.str()?;
        syms.push(g.sym(&s));
    }

    // Each node record is at least 1 flag byte + 4 count bytes.
    let n_nodes = r.count(5)?;
    // Edge values may reference nodes that appear later in the stream, so
    // pre-create every node, then fill names and edges in a second pass.
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(g.new_node(None));
    }
    for i in 0..n_nodes {
        let has_name = r.u8()? == 1;
        if has_name {
            let name = r.str()?;
            g.universe().set_node_name(nodes[i], &name);
        }
        // Each edge is at least a 4-byte symbol index + 1 tag byte.
        let n_edges = r.count(5)?;
        for _ in 0..n_edges {
            let sym_idx = r.u32()? as usize;
            let sym = *syms
                .get(sym_idx)
                .ok_or_else(|| corrupt("symbol index out of range"))?;
            let value = read_value(&mut r, &nodes)?;
            g.add_edge(nodes[i], sym, value)?;
        }
    }

    // Each collection record is at least a 4-byte name length + 4-byte count.
    let n_colls = r.count(8)?;
    for _ in 0..n_colls {
        let name = r.str()?;
        let sym = g.ensure_collection(&name);
        // Each item is at least a 1-byte tag + 1 byte payload.
        let n_items = r.count(2)?;
        for _ in 0..n_items {
            let v = read_value(&mut r, &nodes)?;
            g.add_to_collection(sym, v);
        }
    }
    if r.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing bytes after the last collection record",
            r.remaining()
        )));
    }
    Ok(())
}

/// Saves a graph to a file **atomically**: the bytes go to a temp file in
/// the same directory, are fsynced, and are renamed over `path` (with a
/// directory fsync). A crash or error mid-save leaves any existing file at
/// `path` byte-identical; the new file, once this returns, is durable.
pub fn save_to_file(graph: &Graph, path: &std::path::Path) -> Result<()> {
    fsio::atomic_write_with(path, |w| save(graph, w))
}

/// Loads a graph from a file.
pub fn load_from_file(path: &std::path::Path) -> Result<Graph> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut r = std::io::BufReader::new(file);
    load(&mut r)
}

// ------------------------------------------------------------ delta ops ----

/// A [`Value`] in wire form: node references are **dense indexes** into the
/// store's member order (`graph.nodes()[i]`), which is stable across
/// save/load/replay — the form deltas use in the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// Reference to the `i`-th member node of the graph.
    Node(u32),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// A URL.
    Url(String),
    /// An external file of the given kind.
    File(FileKind, String),
}

impl WireValue {
    /// Resolves this wire value against a graph's member order.
    fn to_value(&self, nodes: &[NodeId]) -> Result<Value> {
        Ok(match self {
            WireValue::Node(i) => {
                Value::Node(*nodes.get(*i as usize).ok_or_else(|| {
                    corrupt(format!("delta references node index {i} out of range"))
                })?)
            }
            WireValue::Int(i) => Value::Int(*i),
            WireValue::Float(f) => Value::Float(*f),
            WireValue::Bool(b) => Value::Bool(*b),
            WireValue::Str(s) => Value::str(s.clone()),
            WireValue::Url(s) => Value::url(s.clone()),
            WireValue::File(k, p) => Value::file(*k, p.clone()),
        })
    }

    fn encode(&self, w: &mut impl Write) -> Result<()> {
        match self {
            WireValue::Node(i) => {
                w.write_all(&[TAG_NODE]).map_err(io_err)?;
                write_u32(w, *i)
            }
            WireValue::Int(i) => {
                w.write_all(&[TAG_INT]).map_err(io_err)?;
                write_u64(w, *i as u64)
            }
            WireValue::Float(f) => {
                w.write_all(&[TAG_FLOAT]).map_err(io_err)?;
                write_u64(w, f.to_bits())
            }
            WireValue::Bool(b) => w.write_all(&[TAG_BOOL, u8::from(*b)]).map_err(io_err),
            WireValue::Str(s) => {
                w.write_all(&[TAG_STR]).map_err(io_err)?;
                write_str(w, s)
            }
            WireValue::Url(s) => {
                w.write_all(&[TAG_URL]).map_err(io_err)?;
                write_str(w, s)
            }
            WireValue::File(k, p) => {
                w.write_all(&[TAG_FILE, file_kind_tag(k)]).map_err(io_err)?;
                write_str(w, p)
            }
        }
    }

    fn decode(r: &mut In<'_>) -> Result<WireValue> {
        Ok(match r.u8()? {
            TAG_NODE => WireValue::Node(r.u32()?),
            TAG_INT => WireValue::Int(r.u64()? as i64),
            TAG_FLOAT => WireValue::Float(f64::from_bits(r.u64()?)),
            TAG_BOOL => WireValue::Bool(r.u8()? != 0),
            TAG_STR => WireValue::Str(r.str()?),
            TAG_URL => WireValue::Url(r.str()?),
            TAG_FILE => {
                let kind = file_kind_of(r.u8()?)?;
                WireValue::File(kind, r.str()?)
            }
            other => return Err(corrupt(format!("unknown wire value tag {other}"))),
        })
    }
}

/// One logical mutation in a store transaction — what gets logged to the
/// write-ahead log and replayed on crash recovery. Node references use
/// dense member indexes (see [`WireValue::Node`]); a node created by
/// [`DeltaOp::AddNode`] receives the next dense index.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Create a member node (optionally named).
    AddNode {
        /// Node name, if any.
        name: Option<String>,
    },
    /// Add edge `node --label--> value`.
    AddEdge {
        /// Dense index of the source node.
        node: u32,
        /// Edge label.
        label: String,
        /// Edge target.
        value: WireValue,
    },
    /// Remove edge `node --label--> value` (a no-op if absent).
    RemoveEdge {
        /// Dense index of the source node.
        node: u32,
        /// Edge label.
        label: String,
        /// Edge target.
        value: WireValue,
    },
    /// Create a collection if it does not exist.
    EnsureCollection {
        /// Collection name.
        name: String,
    },
    /// Add a value to a collection (created if missing; duplicate adds are
    /// no-ops, which keeps replay deterministic).
    AddToCollection {
        /// Collection name.
        collection: String,
        /// Value to add.
        value: WireValue,
    },
    /// Remove a value from a collection (a no-op if absent).
    RemoveFromCollection {
        /// Collection name.
        collection: String,
        /// Value to remove.
        value: WireValue,
    },
}

const OP_ADD_NODE: u8 = 1;
const OP_ADD_EDGE: u8 = 2;
const OP_REMOVE_EDGE: u8 = 3;
const OP_ENSURE_COLLECTION: u8 = 4;
const OP_ADD_TO_COLLECTION: u8 = 5;
const OP_REMOVE_FROM_COLLECTION: u8 = 6;

fn encode_op(op: &DeltaOp) -> Vec<u8> {
    let mut buf = Vec::new();
    let w = &mut buf;
    let r: Result<()> = (|| {
        match op {
            DeltaOp::AddNode { name } => {
                w.write_all(&[OP_ADD_NODE]).map_err(io_err)?;
                match name {
                    Some(n) => {
                        w.write_all(&[1]).map_err(io_err)?;
                        write_str(w, n)?;
                    }
                    None => w.write_all(&[0]).map_err(io_err)?,
                }
            }
            DeltaOp::AddEdge { node, label, value } => {
                w.write_all(&[OP_ADD_EDGE]).map_err(io_err)?;
                write_u32(w, *node)?;
                write_str(w, label)?;
                value.encode(w)?;
            }
            DeltaOp::RemoveEdge { node, label, value } => {
                w.write_all(&[OP_REMOVE_EDGE]).map_err(io_err)?;
                write_u32(w, *node)?;
                write_str(w, label)?;
                value.encode(w)?;
            }
            DeltaOp::EnsureCollection { name } => {
                w.write_all(&[OP_ENSURE_COLLECTION]).map_err(io_err)?;
                write_str(w, name)?;
            }
            DeltaOp::AddToCollection { collection, value } => {
                w.write_all(&[OP_ADD_TO_COLLECTION]).map_err(io_err)?;
                write_str(w, collection)?;
                value.encode(w)?;
            }
            DeltaOp::RemoveFromCollection { collection, value } => {
                w.write_all(&[OP_REMOVE_FROM_COLLECTION]).map_err(io_err)?;
                write_str(w, collection)?;
                value.encode(w)?;
            }
        }
        Ok(())
    })();
    r.expect("Vec<u8> writes cannot fail");
    buf
}

fn decode_op(buf: &[u8]) -> Result<DeltaOp> {
    let mut r = In { buf, pos: 0 };
    let op = match r.u8()? {
        OP_ADD_NODE => DeltaOp::AddNode {
            name: if r.u8()? == 1 { Some(r.str()?) } else { None },
        },
        OP_ADD_EDGE => DeltaOp::AddEdge {
            node: r.u32()?,
            label: r.str()?,
            value: WireValue::decode(&mut r)?,
        },
        OP_REMOVE_EDGE => DeltaOp::RemoveEdge {
            node: r.u32()?,
            label: r.str()?,
            value: WireValue::decode(&mut r)?,
        },
        OP_ENSURE_COLLECTION => DeltaOp::EnsureCollection { name: r.str()? },
        OP_ADD_TO_COLLECTION => DeltaOp::AddToCollection {
            collection: r.str()?,
            value: WireValue::decode(&mut r)?,
        },
        OP_REMOVE_FROM_COLLECTION => DeltaOp::RemoveFromCollection {
            collection: r.str()?,
            value: WireValue::decode(&mut r)?,
        },
        other => return Err(corrupt(format!("unknown delta op tag {other}"))),
    };
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after delta op"));
    }
    Ok(op)
}

fn apply_op(g: &mut Graph, op: &DeltaOp) -> Result<()> {
    let node_at = |g: &Graph, i: u32| -> Result<NodeId> {
        g.nodes()
            .get(i as usize)
            .copied()
            .ok_or_else(|| corrupt(format!("delta references node index {i} out of range")))
    };
    match op {
        DeltaOp::AddNode { name } => {
            g.new_node(name.as_deref());
        }
        DeltaOp::AddEdge { node, label, value } => {
            let n = node_at(g, *node)?;
            let v = value.to_value(g.nodes())?;
            let sym = g.sym(label);
            g.add_edge(n, sym, v)?;
        }
        DeltaOp::RemoveEdge { node, label, value } => {
            let n = node_at(g, *node)?;
            let v = value.to_value(g.nodes())?;
            let sym = g.sym(label);
            g.remove_edge(n, sym, &v)?;
        }
        DeltaOp::EnsureCollection { name } => {
            g.ensure_collection(name);
        }
        DeltaOp::AddToCollection { collection, value } => {
            let v = value.to_value(g.nodes())?;
            let sym = g.ensure_collection(collection);
            g.add_to_collection(sym, v);
        }
        DeltaOp::RemoveFromCollection { collection, value } => {
            let v = value.to_value(g.nodes())?;
            let sym = g.ensure_collection(collection);
            g.remove_from_collection(sym, &v);
        }
    }
    Ok(())
}

// ----------------------------------------------------------- paged store ----

/// WAL size (bytes) past which a successful commit triggers an automatic
/// checkpoint.
pub const DEFAULT_WAL_LIMIT: u64 = 4 << 20;

/// The write-ahead log lives next to the page file as `<path>.wal`.
pub fn wal_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// An immutable, fully materialized graph revision. Cheap to clone (the
/// graph is shared); stays exactly as it was no matter what the writer
/// commits afterwards.
#[derive(Clone)]
pub struct Snapshot {
    revision: u64,
    graph: Arc<Graph>,
}

impl Snapshot {
    /// The revision this snapshot materializes.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The snapshot's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

impl std::ops::Deref for Snapshot {
    type Target = Graph;

    fn deref(&self) -> &Graph {
        &self.graph
    }
}

/// What [`PagedStore::compact`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Pages in the file before compaction.
    pub pages_before: u32,
    /// Pages in the file after compaction.
    pub pages_after: u32,
}

/// The durable graph store: a [`Pager`] page file holding the last
/// checkpointed snapshot, a [`Wal`] logging committed [`DeltaOp`]
/// transactions since that checkpoint, and an in-memory working graph at
/// the current revision.
///
/// Crash safety: a transaction is durable exactly when its WAL commit
/// record is (fsync on commit); opening the store replays committed
/// transactions on top of the checkpoint and discards any torn tail, so a
/// crash at any point yields the last committed revision — or a typed
/// [`GraphError::StorageCorrupt`] / [`GraphError::StorageRecovery`], never
/// a silently wrong graph.
pub struct PagedStore {
    pager: Pager,
    wal: Wal,
    graph: Graph,
    revision: u64,
    cached_snapshot: Option<Snapshot>,
    wal_limit: u64,
}

impl std::fmt::Debug for PagedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedStore")
            .field("path", &self.path())
            .field("revision", &self.revision)
            .finish_non_exhaustive()
    }
}

impl PagedStore {
    /// Creates an empty store at `path` (revision 0), truncating any
    /// existing page file and log.
    pub fn create(path: &Path) -> Result<Self> {
        let pager = Pager::create(path)?;
        let wal = Wal::create(&wal_path(path), 0)?;
        fsio::fsync_dir(&parent_of(path))?;
        Ok(PagedStore {
            pager,
            wal,
            graph: Graph::standalone(),
            revision: 0,
            cached_snapshot: None,
            wal_limit: DEFAULT_WAL_LIMIT,
        })
    }

    /// Creates a store at `path` seeded with `graph` as revision 1.
    pub fn import(path: &Path, graph: &Graph) -> Result<Self> {
        let mut bytes = Vec::new();
        save(graph, &mut bytes)?;
        let mut pager = Pager::create(path)?;
        pager.commit_chain(&bytes, 1)?;
        let wal = Wal::create(&wal_path(path), 1)?;
        fsio::fsync_dir(&parent_of(path))?;
        // Reload from the serialized form so the working graph's member
        // order (the dense numbering deltas use) matches what any future
        // open reconstructs.
        Ok(PagedStore {
            pager,
            wal,
            graph: load_slice(&bytes)?,
            revision: 1,
            cached_snapshot: None,
            wal_limit: DEFAULT_WAL_LIMIT,
        })
    }

    /// Opens the store at `path`, running crash recovery: validates the
    /// page file, replays committed WAL transactions (counting and
    /// truncating any torn tail), and discards a stale log left behind by
    /// a crash between checkpoint and log reset.
    pub fn open(path: &Path) -> Result<Self> {
        let mut pager = Pager::open(path)?;
        let mut graph = if pager.chain_len() == 0 {
            Graph::standalone()
        } else {
            let bytes = pager.read_chain()?;
            load_slice(&bytes)?
        };
        let mut revision = pager.revision();
        let wp = wal_path(path);
        let wal = if wp.exists() {
            let (wal, txns) = Wal::open(&wp, revision)?;
            if wal.base_revision() < revision {
                // Crash after a durable checkpoint but before the log
                // reset: everything in this log is already in the page
                // file. Start a fresh log.
                drop(wal);
                Wal::create(&wp, revision)?
            } else if wal.base_revision() > revision {
                return Err(recovery(format!(
                    "write-ahead log base revision {} is ahead of page file revision {revision}",
                    wal.base_revision()
                )));
            } else {
                let mut replayed = 0u64;
                for txn in &txns {
                    if txn.revision != revision + 1 {
                        return Err(recovery(format!(
                            "log commits revision {} on top of revision {revision}",
                            txn.revision
                        )));
                    }
                    for delta in &txn.deltas {
                        let op = decode_op(delta)?;
                        apply_op(&mut graph, &op).map_err(|e| {
                            recovery(format!("replaying revision {}: {e}", txn.revision))
                        })?;
                        replayed += 1;
                    }
                    revision = txn.revision;
                }
                if replayed > 0 {
                    STORAGE.wal_recoveries.inc();
                    STORAGE.wal_recovered_frames.add(replayed);
                }
                wal
            }
        } else {
            Wal::create(&wp, revision)?
        };
        Ok(PagedStore {
            pager,
            wal,
            graph,
            revision,
            cached_snapshot: None,
            wal_limit: DEFAULT_WAL_LIMIT,
        })
    }

    /// The page file path.
    pub fn path(&self) -> &Path {
        self.pager.path()
    }

    /// The current committed revision.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The working graph at the current revision (read-only; mutate through
    /// [`PagedStore::begin`]).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Pages in the page file (header slots included).
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Pages lost to freelist overflow, reclaimable by compaction.
    pub fn leaked_pages(&self) -> u64 {
        self.pager.leaked()
    }

    /// Bytes in the write-ahead log (header included).
    pub fn wal_size(&self) -> u64 {
        self.wal.size_bytes()
    }

    /// Sets the WAL size past which commits auto-checkpoint.
    pub fn set_wal_limit(&mut self, bytes: u64) {
        self.wal_limit = bytes;
    }

    /// Serializes the current revision to the flat snapshot format.
    pub fn serialize(&self) -> Result<Vec<u8>> {
        let mut bytes = Vec::new();
        save(&self.graph, &mut bytes)?;
        Ok(bytes)
    }

    /// Starts a transaction. Ops are buffered in the [`Txn`] and nothing
    /// changes until [`Txn::commit`].
    pub fn begin(&mut self) -> Txn<'_> {
        let base_nodes = self.graph.nodes().len() as u32;
        Txn {
            store: self,
            ops: Vec::new(),
            base_nodes,
            added_nodes: 0,
        }
    }

    /// Applies and durably commits a batch of ops as one transaction,
    /// returning the new revision. On failure the store is rolled back to
    /// the last committed revision (by reloading from durable state) —
    /// all-or-nothing, in memory and on disk.
    pub fn commit_ops(&mut self, ops: &[DeltaOp]) -> Result<u64> {
        if ops.is_empty() {
            return Ok(self.revision);
        }
        for op in ops {
            if let Err(e) = apply_op(&mut self.graph, op) {
                self.reload_from_durable()?;
                return Err(e);
            }
        }
        let target = self.revision + 1;
        let logged: Result<()> = (|| {
            for op in ops {
                self.wal.append_delta(&encode_op(op))?;
            }
            self.wal.commit(target)
        })();
        if let Err(e) = logged {
            self.reload_from_durable()?;
            return Err(e);
        }
        self.revision = target;
        self.cached_snapshot = None;
        if self.wal.size_bytes() > self.wal_limit {
            self.checkpoint()?;
        }
        Ok(self.revision)
    }

    /// Discards in-memory state and reloads from the durable files —
    /// the rollback path when a commit fails partway.
    fn reload_from_durable(&mut self) -> Result<()> {
        let path = self.pager.path().to_path_buf();
        *self = PagedStore::open(&path)?;
        Ok(())
    }

    /// A consistent snapshot of the current revision. The snapshot is a
    /// standalone materialized graph: later commits to this store leave it
    /// untouched. Snapshots of the same revision are shared.
    pub fn snapshot(&mut self) -> Result<Snapshot> {
        if let Some(s) = &self.cached_snapshot {
            if s.revision == self.revision {
                return Ok(s.clone());
            }
        }
        let bytes = self.serialize()?;
        let snap = Snapshot {
            revision: self.revision,
            graph: Arc::new(load_slice(&bytes)?),
        };
        self.cached_snapshot = Some(snap.clone());
        Ok(snap)
    }

    /// Folds the log into the page file: writes the current revision as a
    /// new copy-on-write snapshot chain and resets the WAL on top of it.
    /// A crash anywhere in between leaves a recoverable store (the old
    /// header slot survives until the new chain is durable; a stale log is
    /// detected and discarded on open).
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.pager.revision() == self.revision && self.wal.size_bytes() == self.wal_size_empty()
        {
            return Ok(());
        }
        let bytes = self.serialize()?;
        self.pager.commit_chain(&bytes, self.revision)?;
        self.wal = Wal::create(&wal_path(self.pager.path()), self.revision)?;
        STORAGE.wal_checkpoints.inc();
        Ok(())
    }

    fn wal_size_empty(&self) -> u64 {
        24 // WAL header only — no frames since the last reset
    }

    /// Checkpoints, then rewrites the page file minimally (dropping free
    /// and leaked pages) with an atomic replace. Returns the before/after
    /// page counts.
    pub fn compact(&mut self) -> Result<CompactReport> {
        self.checkpoint()?;
        let pages_before = self.pager.page_count();
        let bytes = self.serialize()?;
        let path = self.pager.path().to_path_buf();
        let tmp = path.with_extension("pdb.compact");
        {
            let mut fresh = Pager::create(&tmp)?;
            if self.revision > 0 || !bytes.is_empty() {
                fresh.commit_chain(&bytes, self.revision)?;
            }
        }
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        let _ = fsio::fsync_dir(&parent_of(&path));
        self.pager = Pager::open(&path)?;
        STORAGE.compactions.inc();
        Ok(CompactReport {
            pages_before,
            pages_after: self.pager.page_count(),
        })
    }
}

fn parent_of(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// A buffered transaction on a [`PagedStore`]. Build up ops, then
/// [`Txn::commit`]; dropping the transaction without committing discards
/// it entirely.
pub struct Txn<'a> {
    store: &'a mut PagedStore,
    ops: Vec<DeltaOp>,
    base_nodes: u32,
    added_nodes: u32,
}

impl Txn<'_> {
    /// Creates a node, returning its dense index (usable in later ops of
    /// this same transaction).
    pub fn add_node(&mut self, name: Option<&str>) -> u32 {
        let id = self.base_nodes + self.added_nodes;
        self.added_nodes += 1;
        self.ops.push(DeltaOp::AddNode {
            name: name.map(str::to_owned),
        });
        id
    }

    /// Adds edge `node --label--> value`.
    pub fn add_edge(&mut self, node: u32, label: &str, value: WireValue) {
        self.ops.push(DeltaOp::AddEdge {
            node,
            label: label.to_owned(),
            value,
        });
    }

    /// Removes edge `node --label--> value` (no-op if absent).
    pub fn remove_edge(&mut self, node: u32, label: &str, value: WireValue) {
        self.ops.push(DeltaOp::RemoveEdge {
            node,
            label: label.to_owned(),
            value,
        });
    }

    /// Ensures a collection exists.
    pub fn ensure_collection(&mut self, name: &str) {
        self.ops.push(DeltaOp::EnsureCollection {
            name: name.to_owned(),
        });
    }

    /// Adds a value to a collection (created if missing).
    pub fn add_to_collection(&mut self, collection: &str, value: WireValue) {
        self.ops.push(DeltaOp::AddToCollection {
            collection: collection.to_owned(),
            value,
        });
    }

    /// Removes a value from a collection (no-op if absent).
    pub fn remove_from_collection(&mut self, collection: &str, value: WireValue) {
        self.ops.push(DeltaOp::RemoveFromCollection {
            collection: collection.to_owned(),
            value,
        });
    }

    /// Number of ops buffered so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the transaction is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Commits the transaction durably, returning the new revision.
    pub fn commit(self) -> Result<u64> {
        let ops = self.ops;
        self.store.commit_ops(&ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl;

    fn sample() -> Graph {
        ddl::parse(
            r#"
collection Publications {
  abstract   text
  postscript ps
  homepage   url
}
object pub1 in Publications {
  title      "Specifying Representations"
  author     "Norman Ramsey"
  year       1997
  score      4.5
  open       true
  abstract   "abstracts/t.txt"
  postscript "papers/t.ps.gz"
  homepage   "http://example.com"
  next       &pub2
}
object pub2 in Publications {
  title "Optimizing"
  next  &pub1
}
"#,
        )
        .unwrap()
    }

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        save(g, &mut buf).unwrap();
        load(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let g2 = roundtrip(&g);
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.collection_str("Publications").unwrap().len(), 2);
        // Values with every tag survive.
        let r = g2.reader();
        let interner = g2.universe().interner();
        let p1 = g2.nodes()[0];
        assert_eq!(g2.node_name(p1).as_deref(), Some("pub1"));
        assert_eq!(
            r.attr(p1, interner.get("year").unwrap()),
            Some(&Value::Int(1997))
        );
        assert_eq!(
            r.attr(p1, interner.get("score").unwrap()),
            Some(&Value::Float(4.5))
        );
        assert_eq!(
            r.attr(p1, interner.get("open").unwrap()),
            Some(&Value::Bool(true))
        );
        assert_eq!(
            r.attr(p1, interner.get("postscript").unwrap()),
            Some(&Value::file(FileKind::PostScript, "papers/t.ps.gz"))
        );
        assert_eq!(
            r.attr(p1, interner.get("homepage").unwrap()),
            Some(&Value::url("http://example.com"))
        );
        // Cyclic node references survive with correct identity.
        let p2 = r
            .attr(p1, interner.get("next").unwrap())
            .unwrap()
            .as_node()
            .unwrap();
        assert_eq!(
            r.attr(p2, interner.get("next").unwrap()),
            Some(&Value::Node(p1))
        );
    }

    #[test]
    fn loaded_graph_is_fully_indexed() {
        let g2 = roundtrip(&sample());
        let year = g2.universe().interner().get("year").unwrap();
        assert_eq!(g2.index().unwrap().edges_with_label(year).len(), 1);
        assert_eq!(
            g2.index().unwrap().edges_to_value(&Value::Int(1997)).len(),
            1
        );
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let path = std::env::temp_dir().join(format!("strudel_store_{}.bin", std::process::id()));
        save_to_file(&g, &path).unwrap();
        let g2 = load_from_file(&path).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interrupted_save_leaves_old_file_byte_identical() {
        // The atomic-save regression: a save that errors partway (here: a
        // dangling node reference discovered mid-serialization, after the
        // magic and symbol table have already been produced) must leave the
        // previously saved file untouched.
        let dir = std::env::temp_dir().join(format!("strudel_atomic_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.bin");
        save_to_file(&sample(), &path).unwrap();
        let before = std::fs::read(&path).unwrap();

        let bad = {
            let mut g = Graph::standalone();
            let n = g.new_node(Some("n"));
            let ghost = g.universe().create_node(None);
            g.add_edge_str(n, "to", Value::Node(ghost)).unwrap();
            g
        };
        assert!(save_to_file(&bad, &path).is_err());
        assert_eq!(
            std::fs::read(&path).unwrap(),
            before,
            "failed save must not touch the destination"
        );
        // And no temp litter either.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let g2 = load_from_file(&path).unwrap();
        assert_eq!(g2.edge_count(), sample().edge_count());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        save(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(GraphError::StorageCorrupt { .. })
        ));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        save(&sample(), &mut buf).unwrap();
        for cut in [4usize, 9, buf.len() / 2, buf.len() - 1] {
            assert!(
                matches!(
                    load(&mut &buf[..cut]),
                    Err(GraphError::StorageCorrupt { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = Vec::new();
        save(&sample(), &mut buf).unwrap();
        load_slice(&buf).unwrap();
        for junk in [&b"x"[..], &b"\0\0\0\0"[..], MAGIC] {
            let mut tainted = buf.clone();
            tainted.extend_from_slice(junk);
            let err = load_slice(&tainted).unwrap_err();
            assert!(
                matches!(err, GraphError::StorageCorrupt { .. }),
                "junk {junk:?}: {err}"
            );
            assert!(err.to_string().contains("trailing"), "{err}");
        }
    }

    #[test]
    fn io_errors_surface_as_storage() {
        let path = std::env::temp_dir().join("strudel_store_definitely_missing.bin");
        let err = load_from_file(&path).unwrap_err();
        assert!(matches!(err, GraphError::Storage { .. }));
        assert!(err.to_string().starts_with("storage error:"), "{err}");
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::standalone();
        let g2 = roundtrip(&g);
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }

    #[test]
    fn dangling_reference_rejected_at_save() {
        let g = {
            let mut g = Graph::standalone();
            let n = g.new_node(None);
            // A node allocated in the universe but never adopted.
            let ghost = g.universe().create_node(None);
            g.add_edge_str(n, "to", Value::Node(ghost)).unwrap();
            g
        };
        let mut buf = Vec::new();
        assert!(save(&g, &mut buf).is_err());
    }

    #[test]
    fn queries_work_on_loaded_graphs() {
        // Not just structure: the whole pipeline runs on a loaded graph.
        let g2 = roundtrip(&sample());
        // Collection membership + attribute lookup.
        let pubs = g2.collection_str("Publications").unwrap();
        assert!(pubs.items().iter().all(Value::is_node));
    }

    // ------------------------------------------------------ paged store ----

    fn store_path(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("strudel_paged_{tag}_{}.pdb", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(wal_path(&p));
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(wal_path(p));
    }

    fn graph_bytes(g: &Graph) -> Vec<u8> {
        let mut b = Vec::new();
        save(g, &mut b).unwrap();
        b
    }

    #[test]
    fn paged_commit_and_reopen() {
        let p = store_path("basic");
        {
            let mut store = PagedStore::create(&p).unwrap();
            let mut txn = store.begin();
            let a = txn.add_node(Some("alice"));
            let b = txn.add_node(Some("bob"));
            txn.add_edge(a, "knows", WireValue::Node(b));
            txn.add_edge(a, "age", WireValue::Int(31));
            txn.add_to_collection("People", WireValue::Node(a));
            txn.add_to_collection("People", WireValue::Node(b));
            assert_eq!(txn.commit().unwrap(), 1);
            let mut txn = store.begin();
            txn.remove_edge(0, "age", WireValue::Int(31));
            txn.add_edge(0, "age", WireValue::Int(32));
            assert_eq!(txn.commit().unwrap(), 2);
        }
        let store = PagedStore::open(&p).unwrap();
        assert_eq!(store.revision(), 2);
        let g = store.graph();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.collection_str("People").unwrap().len(), 2);
        let age = g.universe().interner().get("age").unwrap();
        assert_eq!(g.reader().attr(g.nodes()[0], age), Some(&Value::Int(32)));
        cleanup(&p);
    }

    #[test]
    fn paged_import_then_delta() {
        let p = store_path("import");
        {
            let mut store = PagedStore::import(&p, &sample()).unwrap();
            assert_eq!(store.revision(), 1);
            let mut txn = store.begin();
            let n = txn.add_node(Some("pub3"));
            txn.add_edge(n, "title", WireValue::Str("Third".into()));
            txn.add_to_collection("Publications", WireValue::Node(n));
            assert_eq!(txn.commit().unwrap(), 2);
        }
        let store = PagedStore::open(&p).unwrap();
        assert_eq!(store.revision(), 2);
        assert_eq!(store.graph().node_count(), 3);
        assert_eq!(
            store.graph().collection_str("Publications").unwrap().len(),
            3
        );
        cleanup(&p);
    }

    #[test]
    fn snapshot_isolation_across_commits() {
        let p = store_path("mvcc");
        let mut store = PagedStore::import(&p, &sample()).unwrap();
        let before = store.snapshot().unwrap();
        assert_eq!(before.revision(), 1);
        let mut txn = store.begin();
        let n = txn.add_node(Some("late"));
        txn.add_to_collection("Publications", WireValue::Node(n));
        txn.commit().unwrap();
        // The old snapshot still serves revision 1.
        assert_eq!(before.node_count(), 2);
        assert_eq!(before.collection_str("Publications").unwrap().len(), 2);
        let after = store.snapshot().unwrap();
        assert_eq!(after.revision(), 2);
        assert_eq!(after.node_count(), 3);
        // Same-revision snapshots share the materialized graph.
        let again = store.snapshot().unwrap();
        assert!(Arc::ptr_eq(&after.graph, &again.graph));
        cleanup(&p);
    }

    #[test]
    fn checkpoint_folds_wal_and_survives_reopen() {
        let p = store_path("ckpt");
        {
            let mut store = PagedStore::import(&p, &sample()).unwrap();
            let mut txn = store.begin();
            let n = txn.add_node(Some("extra"));
            txn.add_edge(n, "title", WireValue::Str("E".into()));
            txn.commit().unwrap();
            store.checkpoint().unwrap();
            assert_eq!(store.wal_size(), 24, "wal reset after checkpoint");
        }
        let store = PagedStore::open(&p).unwrap();
        assert_eq!(store.revision(), 2);
        assert_eq!(store.graph().node_count(), 3);
        cleanup(&p);
    }

    #[test]
    fn reopened_store_is_byte_identical_to_working_copy() {
        let p = store_path("ident");
        let expected = {
            let mut store = PagedStore::import(&p, &sample()).unwrap();
            let mut txn = store.begin();
            let n = txn.add_node(None);
            txn.add_edge(n, "score", WireValue::Float(2.5));
            txn.add_edge(0, "flag", WireValue::Bool(false));
            txn.commit().unwrap();
            graph_bytes(store.graph())
        };
        let store = PagedStore::open(&p).unwrap();
        assert_eq!(graph_bytes(store.graph()), expected);
        cleanup(&p);
    }

    #[test]
    fn failed_apply_rolls_back_to_committed_state() {
        let p = store_path("rollback");
        let mut store = PagedStore::import(&p, &sample()).unwrap();
        let expected = graph_bytes(store.graph());
        let err = store
            .commit_ops(&[
                DeltaOp::AddNode { name: None },
                DeltaOp::AddEdge {
                    node: 999,
                    label: "broken".into(),
                    value: WireValue::Int(1),
                },
            ])
            .unwrap_err();
        assert!(matches!(err, GraphError::StorageCorrupt { .. }), "{err}");
        // Fully rolled back — including the AddNode that preceded the bad op.
        assert_eq!(store.revision(), 1);
        assert_eq!(graph_bytes(store.graph()), expected);
        // And the store still takes commits.
        let mut txn = store.begin();
        txn.add_node(Some("ok"));
        assert_eq!(txn.commit().unwrap(), 2);
        cleanup(&p);
    }

    #[test]
    fn stale_wal_after_checkpoint_crash_is_discarded() {
        let p = store_path("stale");
        {
            let mut store = PagedStore::import(&p, &sample()).unwrap();
            let mut txn = store.begin();
            txn.add_node(Some("kept"));
            txn.commit().unwrap();
            store.checkpoint().unwrap();
        }
        // Simulate the crash window: checkpoint durable, but the old log
        // (base 1, with the now-folded txn) never got reset.
        {
            let mut old = Wal::create(&wal_path(&p), 1).unwrap();
            old.append_delta(&encode_op(&DeltaOp::AddNode {
                name: Some("kept".into()),
            }))
            .unwrap();
            old.commit(2).unwrap();
        }
        let store = PagedStore::open(&p).unwrap();
        assert_eq!(store.revision(), 2);
        assert_eq!(store.graph().node_count(), 3, "txn applied exactly once");
        cleanup(&p);
    }

    #[test]
    fn wal_ahead_of_page_file_is_recovery_error() {
        let p = store_path("ahead");
        {
            PagedStore::import(&p, &sample()).unwrap();
        }
        Wal::create(&wal_path(&p), 7).unwrap();
        let err = PagedStore::open(&p).unwrap_err();
        assert!(matches!(err, GraphError::StorageRecovery { .. }), "{err}");
        cleanup(&p);
    }

    #[test]
    fn compact_shrinks_the_file() {
        let p = store_path("compact");
        let mut store = PagedStore::import(&p, &sample()).unwrap();
        // Grow the file: big payloads across several checkpoints.
        for round in 0..6 {
            let mut txn = store.begin();
            let n = txn.add_node(None);
            txn.add_edge(n, "blob", WireValue::Str("x".repeat(20_000)));
            let _ = round;
            txn.commit().unwrap();
            store.checkpoint().unwrap();
        }
        let expected = graph_bytes(store.graph());
        let report = store.compact().unwrap();
        assert!(
            report.pages_after < report.pages_before,
            "compaction should shrink {} -> {}",
            report.pages_before,
            report.pages_after
        );
        assert_eq!(store.leaked_pages(), 0);
        drop(store);
        let store = PagedStore::open(&p).unwrap();
        assert_eq!(graph_bytes(store.graph()), expected);
        cleanup(&p);
    }

    #[test]
    fn delta_ops_roundtrip_through_encoding() {
        let ops = vec![
            DeltaOp::AddNode { name: None },
            DeltaOp::AddNode {
                name: Some("x".into()),
            },
            DeltaOp::AddEdge {
                node: 0,
                label: "l".into(),
                value: WireValue::File(FileKind::PostScript, "a.ps".into()),
            },
            DeltaOp::RemoveEdge {
                node: 1,
                label: "m".into(),
                value: WireValue::Url("http://e".into()),
            },
            DeltaOp::EnsureCollection { name: "C".into() },
            DeltaOp::AddToCollection {
                collection: "C".into(),
                value: WireValue::Float(1.5),
            },
            DeltaOp::RemoveFromCollection {
                collection: "C".into(),
                value: WireValue::Bool(true),
            },
        ];
        for op in &ops {
            assert_eq!(&decode_op(&encode_op(op)).unwrap(), op);
        }
        assert!(matches!(
            decode_op(&[99]),
            Err(GraphError::StorageCorrupt { .. })
        ));
    }
}
