//! Persistence for the data repository: the flat snapshot codec and the
//! paged, WAL-backed store built on top of it.
//!
//! §6 of the paper lists "designing efficient storage representations for
//! semistructured data" among the open problems: "traditional database
//! systems rely heavily on schema information to organize data on disk",
//! which a schemaless repository cannot. This module implements the natural
//! schema-free layout the paper's repository design implies: a **symbol
//! table** (every label and collection name once), a **node table** (names
//! and out-edge lists referencing symbols), and **collection extents** —
//! the same three structures the in-memory indexes are built from, so a
//! loaded graph re-indexes in one pass.
//!
//! The format is a length-prefixed little-endian encoding, written and read
//! without intermediate allocation beyond the structures themselves. It is
//! deliberately dependency-free (no serde): the point of the exercise is
//! the *layout*, mirroring how the 1997 prototype would have had to store
//! graphs.
//!
//! On top of the codec sits [`PagedStore`]: snapshots live in a
//! [`crate::pager`] page file, commits are logged as typed [`DeltaOp`]s in
//! a [`crate::wal`] write-ahead log and replayed on open, and readers take
//! [`Snapshot`]s — immutable materialized revisions that stay consistent
//! while the writer keeps committing. See `docs/STORAGE.md` for the file
//! formats and the crash-safety argument.

use crate::error::{GraphError, Result};
use crate::fsio;
use crate::fxhash::FxHashMap;
use crate::graph::{Graph, NodeId};
use crate::pager::Pager;
use crate::stats::STORAGE;
use crate::symbol::Sym;
use crate::value::{FileKind, Value};
use crate::wal::{self, Wal};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use strudel_obs::trace;

const MAGIC: &[u8; 8] = b"STRUDEL1";

fn io_err(e: io::Error) -> GraphError {
    GraphError::Storage {
        message: format!("I/O error: {e}"),
    }
}

fn corrupt(message: impl Into<String>) -> GraphError {
    GraphError::StorageCorrupt {
        message: message.into(),
    }
}

fn recovery(message: impl Into<String>) -> GraphError {
    GraphError::StorageRecovery {
        message: message.into(),
    }
}

/// Checks a count fits the on-disk `u32` representation; oversized graphs
/// fail loudly instead of silently writing a corrupt file.
fn checked_count(n: usize, what: &str) -> Result<u32> {
    u32::try_from(n).map_err(|_| corrupt(format!("{what} count {n} exceeds format limit")))
}

// ------------------------------------------------------------- primitives ----

fn write_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_u64(w: &mut impl Write, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_str(w: &mut impl Write, s: &str) -> Result<()> {
    write_u32(
        w,
        u32::try_from(s.len()).map_err(|_| corrupt("string too long"))?,
    )?;
    w.write_all(s.as_bytes()).map_err(io_err)
}

/// A bounds-checked reader over the whole (buffered) input. Every count
/// and length in the file is validated against the bytes actually present
/// *before* any allocation, so a corrupted length prefix cannot trigger an
/// unbounded allocation (found by the bit-flip fuzz test).
struct In<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> In<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt("truncated input"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a count that prefixes `count * min_record_bytes`-byte records;
    /// rejects counts the remaining input cannot possibly hold.
    fn count(&mut self, min_record_bytes: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_record_bytes.max(1)) > self.remaining() {
            return Err(corrupt(format!("count {n} exceeds remaining input")));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = if self.remaining() < len {
            return Err(corrupt("truncated string"));
        } else {
            self.take(len)?
        };
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid UTF-8 in stored string"))
    }
}

// ------------------------------------------------------------- values ----

const TAG_NODE: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_URL: u8 = 5;
const TAG_FILE: u8 = 6;

fn file_kind_tag(kind: &FileKind) -> u8 {
    match kind {
        FileKind::Text => 0,
        FileKind::Html => 1,
        FileKind::Image => 2,
        FileKind::PostScript => 3,
    }
}

fn file_kind_of(tag: u8) -> Result<FileKind> {
    Ok(match tag {
        0 => FileKind::Text,
        1 => FileKind::Html,
        2 => FileKind::Image,
        3 => FileKind::PostScript,
        other => return Err(corrupt(format!("unknown file kind {other}"))),
    })
}

fn write_value(w: &mut impl Write, v: &Value, remap: &dyn Fn(NodeId) -> u32) -> Result<()> {
    match v {
        Value::Node(n) => {
            w.write_all(&[TAG_NODE]).map_err(io_err)?;
            write_u32(w, remap(*n))
        }
        Value::Int(i) => {
            w.write_all(&[TAG_INT]).map_err(io_err)?;
            write_u64(w, *i as u64)
        }
        Value::Float(f) => {
            w.write_all(&[TAG_FLOAT]).map_err(io_err)?;
            write_u64(w, f.to_bits())
        }
        Value::Bool(b) => w.write_all(&[TAG_BOOL, u8::from(*b)]).map_err(io_err),
        Value::Str(s) => {
            w.write_all(&[TAG_STR]).map_err(io_err)?;
            write_str(w, s)
        }
        Value::Url(s) => {
            w.write_all(&[TAG_URL]).map_err(io_err)?;
            write_str(w, s)
        }
        Value::File(kind, path) => {
            w.write_all(&[TAG_FILE, file_kind_tag(kind)])
                .map_err(io_err)?;
            write_str(w, path)
        }
    }
}

fn read_value(r: &mut In<'_>, nodes: &[NodeId]) -> Result<Value> {
    Ok(match r.u8()? {
        TAG_NODE => {
            let idx = r.u32()? as usize;
            Value::Node(
                *nodes
                    .get(idx)
                    .ok_or_else(|| corrupt("node index out of range"))?,
            )
        }
        TAG_INT => Value::Int(r.u64()? as i64),
        TAG_FLOAT => Value::Float(f64::from_bits(r.u64()?)),
        TAG_BOOL => Value::Bool(r.u8()? != 0),
        TAG_STR => Value::str(r.str()?),
        TAG_URL => Value::url(r.str()?),
        TAG_FILE => {
            let kind = file_kind_of(r.u8()?)?;
            Value::file(kind, r.str()?)
        }
        other => return Err(corrupt(format!("unknown value tag {other}"))),
    })
}

// ------------------------------------------------------------ graph I/O ----

/// Serializes a graph to a writer.
///
/// Layout: magic, symbol table (all labels used), node table (name flag +
/// name, edge list of `(symbol index, value)`), collection extents. Node
/// references are densified to the graph's member order, so the stored form
/// is independent of the universe's global oid space.
pub fn save(graph: &Graph, w: &mut impl Write) -> Result<()> {
    w.write_all(MAGIC).map_err(io_err)?;

    // Dense node numbering.
    let members = graph.nodes();
    checked_count(members.len(), "node")?;
    let mut dense = std::collections::HashMap::with_capacity(members.len());
    for (i, &n) in members.iter().enumerate() {
        dense.insert(n, u32::try_from(i).expect("node count checked above"));
    }
    let remap = |n: NodeId| -> u32 { *dense.get(&n).unwrap_or(&u32::MAX) };

    // Symbol table: all labels that occur, in first-use order.
    let mut sym_index: Vec<Sym> = Vec::new();
    let mut sym_of = std::collections::HashMap::new();
    let reader = graph.reader();
    for &n in members {
        for (l, _) in reader.out(n) {
            if !sym_of.contains_key(l) {
                let idx = checked_count(sym_index.len(), "symbol")?;
                sym_index.push(*l);
                sym_of.insert(*l, idx);
            }
        }
    }
    write_u32(w, checked_count(sym_index.len(), "symbol")?)?;
    for &s in &sym_index {
        write_str(w, &graph.resolve(s))?;
    }

    // Node table.
    write_u32(w, checked_count(members.len(), "node")?)?;
    for &n in members {
        match reader.name(n) {
            Some(name) => {
                w.write_all(&[1]).map_err(io_err)?;
                write_str(w, name)?;
            }
            None => w.write_all(&[0]).map_err(io_err)?,
        }
        let out = reader.out(n);
        // Dangling node references (to nodes outside this graph) are not
        // representable in the dense numbering; reject rather than corrupt.
        for (_, v) in out {
            if let Value::Node(m) = v {
                if !dense.contains_key(m) {
                    return Err(corrupt(format!(
                        "edge to non-member node {m}; adopt it before saving"
                    )));
                }
            }
        }
        write_u32(w, checked_count(out.len(), "out-edge")?)?;
        for (l, v) in out {
            write_u32(w, sym_of[l])?;
            write_value(w, v, &remap)?;
        }
    }

    // Collections.
    let colls = graph.collection_names().to_vec();
    write_u32(w, checked_count(colls.len(), "collection")?)?;
    for c in colls {
        write_str(w, &graph.resolve(c))?;
        let items = graph.collection(c).expect("listed").items();
        for item in items {
            if let Value::Node(m) = item {
                if !dense.contains_key(m) {
                    return Err(corrupt("collection member is not a graph member"));
                }
            }
        }
        write_u32(w, checked_count(items.len(), "collection item")?)?;
        for item in items {
            write_value(w, item, &remap)?;
        }
    }
    Ok(())
}

/// Deserializes a graph from a reader into a fresh standalone graph.
///
/// The entire stream is buffered first so every count in the file can be
/// validated against the bytes actually present — corrupted inputs fail
/// with an error rather than attempting huge allocations.
pub fn load(reader: &mut impl Read) -> Result<Graph> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf).map_err(io_err)?;
    load_slice(&buf)
}

/// Deserializes a graph from an in-memory buffer.
///
/// The buffer must contain exactly one graph: trailing bytes after the last
/// collection record are rejected as [`GraphError::StorageCorrupt`] (a file
/// that "loads fine" but carries unread data is evidence of truncated or
/// mixed-up writes, not something to serve from).
pub fn load_slice(buf: &[u8]) -> Result<Graph> {
    let mut g = Graph::standalone();
    load_slice_into(&mut g, buf)?;
    Ok(g)
}

/// Deserializes a graph from a buffer into `g` — typically a fresh graph,
/// either standalone or attached to a shared universe (how the serving tier
/// materializes a store into its mediated universe). Same strictness as
/// [`load_slice`], including the trailing-garbage check.
pub fn load_slice_into(g: &mut Graph, buf: &[u8]) -> Result<()> {
    let mut r = In { buf, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(corrupt("not a STRUDEL graph file"));
    }

    // Each symbol record is at least its 4-byte length prefix.
    let n_syms = r.count(4)?;
    let mut syms = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        let s = r.str()?;
        syms.push(g.sym(&s));
    }

    // Each node record is at least 1 flag byte + 4 count bytes.
    let n_nodes = r.count(5)?;
    // Edge values may reference nodes that appear later in the stream, so
    // pre-create every node, then fill names and edges in a second pass.
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(g.new_node(None));
    }
    for i in 0..n_nodes {
        let has_name = r.u8()? == 1;
        if has_name {
            let name = r.str()?;
            g.universe().set_node_name(nodes[i], &name);
        }
        // Each edge is at least a 4-byte symbol index + 1 tag byte.
        let n_edges = r.count(5)?;
        for _ in 0..n_edges {
            let sym_idx = r.u32()? as usize;
            let sym = *syms
                .get(sym_idx)
                .ok_or_else(|| corrupt("symbol index out of range"))?;
            let value = read_value(&mut r, &nodes)?;
            g.add_edge(nodes[i], sym, value)?;
        }
    }

    // Each collection record is at least a 4-byte name length + 4-byte count.
    let n_colls = r.count(8)?;
    for _ in 0..n_colls {
        let name = r.str()?;
        let sym = g.ensure_collection(&name);
        // Each item is at least a 1-byte tag + 1 byte payload.
        let n_items = r.count(2)?;
        for _ in 0..n_items {
            let v = read_value(&mut r, &nodes)?;
            g.add_to_collection(sym, v);
        }
    }
    if r.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing bytes after the last collection record",
            r.remaining()
        )));
    }
    Ok(())
}

/// Saves a graph to a file **atomically**: the bytes go to a temp file in
/// the same directory, are fsynced, and are renamed over `path` (with a
/// directory fsync). A crash or error mid-save leaves any existing file at
/// `path` byte-identical; the new file, once this returns, is durable.
pub fn save_to_file(graph: &Graph, path: &std::path::Path) -> Result<()> {
    fsio::atomic_write_with(path, |w| save(graph, w))
}

/// Loads a graph from a file.
pub fn load_from_file(path: &std::path::Path) -> Result<Graph> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut r = std::io::BufReader::new(file);
    load(&mut r)
}

// ------------------------------------------------------------ delta ops ----

/// A [`Value`] in wire form: node references are **dense indexes** into the
/// store's member order (`graph.nodes()[i]`), which is stable across
/// save/load/replay — the form deltas use in the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// Reference to the `i`-th member node of the graph.
    Node(u32),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// A URL.
    Url(String),
    /// An external file of the given kind.
    File(FileKind, String),
}

impl WireValue {
    /// Resolves this wire value against a graph's member order.
    fn to_value(&self, nodes: &[NodeId]) -> Result<Value> {
        Ok(match self {
            WireValue::Node(i) => {
                Value::Node(*nodes.get(*i as usize).ok_or_else(|| {
                    corrupt(format!("delta references node index {i} out of range"))
                })?)
            }
            WireValue::Int(i) => Value::Int(*i),
            WireValue::Float(f) => Value::Float(*f),
            WireValue::Bool(b) => Value::Bool(*b),
            WireValue::Str(s) => Value::str(s.clone()),
            WireValue::Url(s) => Value::url(s.clone()),
            WireValue::File(k, p) => Value::file(*k, p.clone()),
        })
    }

    fn encode(&self, w: &mut impl Write) -> Result<()> {
        match self {
            WireValue::Node(i) => {
                w.write_all(&[TAG_NODE]).map_err(io_err)?;
                write_u32(w, *i)
            }
            WireValue::Int(i) => {
                w.write_all(&[TAG_INT]).map_err(io_err)?;
                write_u64(w, *i as u64)
            }
            WireValue::Float(f) => {
                w.write_all(&[TAG_FLOAT]).map_err(io_err)?;
                write_u64(w, f.to_bits())
            }
            WireValue::Bool(b) => w.write_all(&[TAG_BOOL, u8::from(*b)]).map_err(io_err),
            WireValue::Str(s) => {
                w.write_all(&[TAG_STR]).map_err(io_err)?;
                write_str(w, s)
            }
            WireValue::Url(s) => {
                w.write_all(&[TAG_URL]).map_err(io_err)?;
                write_str(w, s)
            }
            WireValue::File(k, p) => {
                w.write_all(&[TAG_FILE, file_kind_tag(k)]).map_err(io_err)?;
                write_str(w, p)
            }
        }
    }

    fn decode(r: &mut In<'_>) -> Result<WireValue> {
        Ok(match r.u8()? {
            TAG_NODE => WireValue::Node(r.u32()?),
            TAG_INT => WireValue::Int(r.u64()? as i64),
            TAG_FLOAT => WireValue::Float(f64::from_bits(r.u64()?)),
            TAG_BOOL => WireValue::Bool(r.u8()? != 0),
            TAG_STR => WireValue::Str(r.str()?),
            TAG_URL => WireValue::Url(r.str()?),
            TAG_FILE => {
                let kind = file_kind_of(r.u8()?)?;
                WireValue::File(kind, r.str()?)
            }
            other => return Err(corrupt(format!("unknown wire value tag {other}"))),
        })
    }
}

/// One logical mutation in a store transaction — what gets logged to the
/// write-ahead log and replayed on crash recovery. Node references use
/// dense member indexes (see [`WireValue::Node`]); a node created by
/// [`DeltaOp::AddNode`] receives the next dense index.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Create a member node (optionally named).
    AddNode {
        /// Node name, if any.
        name: Option<String>,
    },
    /// Add edge `node --label--> value`.
    AddEdge {
        /// Dense index of the source node.
        node: u32,
        /// Edge label.
        label: String,
        /// Edge target.
        value: WireValue,
    },
    /// Remove edge `node --label--> value` (a no-op if absent).
    RemoveEdge {
        /// Dense index of the source node.
        node: u32,
        /// Edge label.
        label: String,
        /// Edge target.
        value: WireValue,
    },
    /// Create a collection if it does not exist.
    EnsureCollection {
        /// Collection name.
        name: String,
    },
    /// Add a value to a collection (created if missing; duplicate adds are
    /// no-ops, which keeps replay deterministic).
    AddToCollection {
        /// Collection name.
        collection: String,
        /// Value to add.
        value: WireValue,
    },
    /// Remove a value from a collection (a no-op if absent).
    RemoveFromCollection {
        /// Collection name.
        collection: String,
        /// Value to remove.
        value: WireValue,
    },
}

const OP_ADD_NODE: u8 = 1;
const OP_ADD_EDGE: u8 = 2;
const OP_REMOVE_EDGE: u8 = 3;
const OP_ENSURE_COLLECTION: u8 = 4;
const OP_ADD_TO_COLLECTION: u8 = 5;
const OP_REMOVE_FROM_COLLECTION: u8 = 6;

fn encode_op(op: &DeltaOp) -> Vec<u8> {
    let mut buf = Vec::new();
    let w = &mut buf;
    let r: Result<()> = (|| {
        match op {
            DeltaOp::AddNode { name } => {
                w.write_all(&[OP_ADD_NODE]).map_err(io_err)?;
                match name {
                    Some(n) => {
                        w.write_all(&[1]).map_err(io_err)?;
                        write_str(w, n)?;
                    }
                    None => w.write_all(&[0]).map_err(io_err)?,
                }
            }
            DeltaOp::AddEdge { node, label, value } => {
                w.write_all(&[OP_ADD_EDGE]).map_err(io_err)?;
                write_u32(w, *node)?;
                write_str(w, label)?;
                value.encode(w)?;
            }
            DeltaOp::RemoveEdge { node, label, value } => {
                w.write_all(&[OP_REMOVE_EDGE]).map_err(io_err)?;
                write_u32(w, *node)?;
                write_str(w, label)?;
                value.encode(w)?;
            }
            DeltaOp::EnsureCollection { name } => {
                w.write_all(&[OP_ENSURE_COLLECTION]).map_err(io_err)?;
                write_str(w, name)?;
            }
            DeltaOp::AddToCollection { collection, value } => {
                w.write_all(&[OP_ADD_TO_COLLECTION]).map_err(io_err)?;
                write_str(w, collection)?;
                value.encode(w)?;
            }
            DeltaOp::RemoveFromCollection { collection, value } => {
                w.write_all(&[OP_REMOVE_FROM_COLLECTION]).map_err(io_err)?;
                write_str(w, collection)?;
                value.encode(w)?;
            }
        }
        Ok(())
    })();
    r.expect("Vec<u8> writes cannot fail");
    buf
}

fn decode_op(buf: &[u8]) -> Result<DeltaOp> {
    let mut r = In { buf, pos: 0 };
    let op = match r.u8()? {
        OP_ADD_NODE => DeltaOp::AddNode {
            name: if r.u8()? == 1 { Some(r.str()?) } else { None },
        },
        OP_ADD_EDGE => DeltaOp::AddEdge {
            node: r.u32()?,
            label: r.str()?,
            value: WireValue::decode(&mut r)?,
        },
        OP_REMOVE_EDGE => DeltaOp::RemoveEdge {
            node: r.u32()?,
            label: r.str()?,
            value: WireValue::decode(&mut r)?,
        },
        OP_ENSURE_COLLECTION => DeltaOp::EnsureCollection { name: r.str()? },
        OP_ADD_TO_COLLECTION => DeltaOp::AddToCollection {
            collection: r.str()?,
            value: WireValue::decode(&mut r)?,
        },
        OP_REMOVE_FROM_COLLECTION => DeltaOp::RemoveFromCollection {
            collection: r.str()?,
            value: WireValue::decode(&mut r)?,
        },
        other => return Err(corrupt(format!("unknown delta op tag {other}"))),
    };
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after delta op"));
    }
    Ok(op)
}

fn apply_op(g: &mut Graph, op: &DeltaOp) -> Result<()> {
    let node_at = |g: &Graph, i: u32| -> Result<NodeId> {
        g.nodes()
            .get(i as usize)
            .copied()
            .ok_or_else(|| corrupt(format!("delta references node index {i} out of range")))
    };
    match op {
        DeltaOp::AddNode { name } => {
            g.new_node(name.as_deref());
        }
        DeltaOp::AddEdge { node, label, value } => {
            let n = node_at(g, *node)?;
            let v = value.to_value(g.nodes())?;
            let sym = g.sym(label);
            g.add_edge(n, sym, v)?;
        }
        DeltaOp::RemoveEdge { node, label, value } => {
            let n = node_at(g, *node)?;
            let v = value.to_value(g.nodes())?;
            let sym = g.sym(label);
            g.remove_edge(n, sym, &v)?;
        }
        DeltaOp::EnsureCollection { name } => {
            g.ensure_collection(name);
        }
        DeltaOp::AddToCollection { collection, value } => {
            let v = value.to_value(g.nodes())?;
            let sym = g.ensure_collection(collection);
            g.add_to_collection(sym, v);
        }
        DeltaOp::RemoveFromCollection { collection, value } => {
            let v = value.to_value(g.nodes())?;
            let sym = g.ensure_collection(collection);
            g.remove_from_collection(sym, &v);
        }
    }
    Ok(())
}

// ---------------------------------------------------- checkpoint segments ----
//
// A checkpointed store partitions the flat image into *segments*: the
// preamble (magic + symbol table + node count), fixed-size runs of node
// records, the collection-count header, and one segment per collection.
// Concatenating the segments in order yields a byte-exact flat image, so
// the codec above needs no changes — but each segment lives in its own
// page chain, and a *manifest* (the pager's root chain) records where.
// A checkpoint then rewrites only the segments that committed deltas
// actually touched; everything else is shared with the previous revision.

/// Nodes per node segment. Small enough that a single-edge commit dirties
/// ~one page of node records; large enough that the manifest stays tiny.
const NODE_SEG: usize = 64;

const MANIFEST_MAGIC: &[u8; 8] = b"STRUMAN1";

/// One segment of the checkpoint image: its byte length, the revision that
/// last rewrote it, and the page chain holding it.
#[derive(Debug, Clone, Default)]
struct Seg {
    len: u64,
    stamp: u64,
    pages: Vec<u32>,
}

/// The segmented checkpoint image: layout metadata plus per-segment dirt.
///
/// The symbol layout (`syms`) is append-only between compactions: removing
/// an edge never removes its label from the table (clean segments keep
/// referencing their indexes), so the composed image may carry unused
/// symbols — which the flat codec tolerates by construction.
#[derive(Debug, Clone, Default)]
struct SegFile {
    syms: Vec<String>,
    sym_of: FxHashMap<String, u32>,
    node_count: u32,
    preamble: Seg,
    nodes: Vec<Seg>,
    coll_header: Seg,
    colls: Vec<(String, Seg)>,
    dirty_preamble: bool,
    dirty_coll_header: bool,
    dirty_nodes: BTreeSet<usize>,
    dirty_colls: BTreeSet<usize>,
}

/// A manifest record locating one segment on disk.
#[derive(Debug, Clone, Copy, Default)]
struct ManifestEntry {
    stamp: u64,
    len: u64,
    first: u32,
    npages: u32,
}

fn entry_for(seg: &Seg) -> ManifestEntry {
    ManifestEntry {
        stamp: seg.stamp,
        len: seg.len,
        first: seg.pages.first().copied().unwrap_or(0),
        npages: seg.pages.len() as u32,
    }
}

fn write_manifest_entry(buf: &mut Vec<u8>, e: &ManifestEntry) {
    buf.extend_from_slice(&e.stamp.to_le_bytes());
    buf.extend_from_slice(&e.len.to_le_bytes());
    buf.extend_from_slice(&e.first.to_le_bytes());
    buf.extend_from_slice(&e.npages.to_le_bytes());
}

fn read_manifest_entry(r: &mut In<'_>) -> Result<ManifestEntry> {
    Ok(ManifestEntry {
        stamp: r.u64()?,
        len: r.u64()?,
        first: r.u32()?,
        npages: r.u32()?,
    })
}

/// Builds the manifest bytes: magic, preamble entry, node-segment entries,
/// collection-header entry, then named collection entries.
fn encode_manifest(
    preamble: &ManifestEntry,
    nodes: &[ManifestEntry],
    coll_header: &ManifestEntry,
    coll_names: &[&str],
    colls: &[ManifestEntry],
) -> Vec<u8> {
    debug_assert_eq!(coll_names.len(), colls.len());
    let mut buf = Vec::new();
    buf.extend_from_slice(MANIFEST_MAGIC);
    write_manifest_entry(&mut buf, preamble);
    buf.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    for e in nodes {
        write_manifest_entry(&mut buf, e);
    }
    write_manifest_entry(&mut buf, coll_header);
    buf.extend_from_slice(&(colls.len() as u32).to_le_bytes());
    for (name, e) in coll_names.iter().zip(colls) {
        write_str(&mut buf, name).expect("Vec<u8> writes cannot fail");
        write_manifest_entry(&mut buf, e);
    }
    buf
}

struct ManifestSkeleton {
    preamble: ManifestEntry,
    nodes: Vec<ManifestEntry>,
    coll_header: ManifestEntry,
    colls: Vec<(String, ManifestEntry)>,
}

fn decode_manifest(buf: &[u8]) -> Result<ManifestSkeleton> {
    let mut r = In { buf, pos: 0 };
    if r.take(8)? != MANIFEST_MAGIC {
        return Err(corrupt("not a STRUDEL checkpoint manifest"));
    }
    let preamble = read_manifest_entry(&mut r)?;
    let n_nodes = r.count(24)?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(read_manifest_entry(&mut r)?);
    }
    let coll_header = read_manifest_entry(&mut r)?;
    let n_colls = r.count(28)?;
    let mut colls = Vec::with_capacity(n_colls);
    for _ in 0..n_colls {
        let name = r.str()?;
        colls.push((name, read_manifest_entry(&mut r)?));
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after checkpoint manifest"));
    }
    Ok(ManifestSkeleton {
        preamble,
        nodes,
        coll_header,
        colls,
    })
}

/// Parses a preamble segment back into (symbol layout, node count).
fn parse_preamble(buf: &[u8]) -> Result<(Vec<String>, u32)> {
    let mut r = In { buf, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(corrupt("checkpoint preamble has bad magic"));
    }
    let n_syms = r.count(4)?;
    let mut syms = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        syms.push(r.str()?);
    }
    let node_count = r.u32()?;
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after checkpoint preamble"));
    }
    Ok((syms, node_count))
}

fn dense_map(members: &[NodeId]) -> std::collections::HashMap<NodeId, u32> {
    let mut dense = std::collections::HashMap::with_capacity(members.len());
    for (i, &n) in members.iter().enumerate() {
        dense.insert(n, i as u32);
    }
    dense
}

/// Serializes the preamble segment: magic, symbol table in layout order,
/// node count. Byte-compatible with the prefix [`save`] writes.
fn write_preamble(syms: &[String], node_count: u32) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    write_u32(&mut buf, checked_count(syms.len(), "symbol")?)?;
    for s in syms {
        write_str(&mut buf, s)?;
    }
    write_u32(&mut buf, node_count)?;
    Ok(buf)
}

/// Serializes the node records for members `from..to`, resolving labels
/// against the layout symbol table.
fn write_node_segment(
    graph: &Graph,
    dense: &std::collections::HashMap<NodeId, u32>,
    sym_of: &FxHashMap<String, u32>,
    from: usize,
    to: usize,
) -> Result<Vec<u8>> {
    let members = graph.nodes();
    let reader = graph.reader();
    let remap = |n: NodeId| -> u32 { *dense.get(&n).unwrap_or(&u32::MAX) };
    let mut buf = Vec::new();
    for &n in &members[from..to] {
        match reader.name(n) {
            Some(name) => {
                buf.push(1);
                write_str(&mut buf, name)?;
            }
            None => buf.push(0),
        }
        let out = reader.out(n);
        for (_, v) in out {
            if let Value::Node(m) = v {
                if !dense.contains_key(m) {
                    return Err(corrupt(format!(
                        "edge to non-member node {m}; adopt it before saving"
                    )));
                }
            }
        }
        write_u32(&mut buf, checked_count(out.len(), "out-edge")?)?;
        for (l, v) in out {
            let label = graph.resolve(*l);
            let idx = sym_of.get(&*label).ok_or_else(|| {
                corrupt(format!("label {label:?} missing from checkpoint layout"))
            })?;
            write_u32(&mut buf, *idx)?;
            write_value(&mut buf, v, &remap)?;
        }
    }
    Ok(buf)
}

/// Serializes one collection segment: name, item count, items.
fn write_collection_segment(
    graph: &Graph,
    dense: &std::collections::HashMap<NodeId, u32>,
    name: &str,
) -> Result<Vec<u8>> {
    let remap = |n: NodeId| -> u32 { *dense.get(&n).unwrap_or(&u32::MAX) };
    let mut buf = Vec::new();
    write_str(&mut buf, name)?;
    let coll = graph
        .collection_str(name)
        .ok_or_else(|| corrupt(format!("collection {name:?} vanished from the graph")))?;
    let items = coll.items();
    for item in items {
        if let Value::Node(m) = item {
            if !dense.contains_key(m) {
                return Err(corrupt("collection member is not a graph member"));
            }
        }
    }
    write_u32(&mut buf, checked_count(items.len(), "collection item")?)?;
    for item in items {
        write_value(&mut buf, item, &remap)?;
    }
    Ok(buf)
}

impl SegFile {
    /// Builds a fully-dirty segment layout for `graph` — the first
    /// checkpoint (or an import) writes every segment.
    fn seed(graph: &Graph) -> Result<SegFile> {
        let members = graph.nodes();
        let node_count = checked_count(members.len(), "node")?;
        let reader = graph.reader();
        let mut syms: Vec<String> = Vec::new();
        let mut sym_of: FxHashMap<String, u32> = FxHashMap::default();
        for &n in members {
            for (l, _) in reader.out(n) {
                let label = graph.resolve(*l);
                if !sym_of.contains_key(&*label) {
                    let idx = checked_count(syms.len(), "symbol")?;
                    sym_of.insert(label.to_string(), idx);
                    syms.push(label.to_string());
                }
            }
        }
        drop(reader);
        let colls = graph
            .collection_names()
            .iter()
            .map(|&c| (graph.resolve(c).to_string(), Seg::default()))
            .collect::<Vec<_>>();
        let mut sf = SegFile {
            syms,
            sym_of,
            node_count,
            preamble: Seg::default(),
            nodes: vec![Seg::default(); members.len().div_ceil(NODE_SEG)],
            coll_header: Seg::default(),
            colls,
            dirty_preamble: false,
            dirty_coll_header: false,
            dirty_nodes: BTreeSet::new(),
            dirty_colls: BTreeSet::new(),
        };
        sf.mark_all_dirty();
        Ok(sf)
    }

    /// Restores the layout from a manifest, walking (and thereby
    /// checksum-validating) every segment's page chain.
    fn from_manifest(pager: &mut Pager, bytes: &[u8]) -> Result<SegFile> {
        let sk = decode_manifest(bytes)?;
        let walk = |pager: &mut Pager, e: &ManifestEntry| -> Result<Seg> {
            Ok(Seg {
                len: e.len,
                stamp: e.stamp,
                pages: pager.walk_blob(e.first, e.npages, e.len)?,
            })
        };
        let preamble = walk(pager, &sk.preamble)?;
        let pre_bytes = pager.read_pages(&preamble.pages)?;
        let (syms, node_count) = parse_preamble(&pre_bytes)?;
        if sk.nodes.len() != (node_count as usize).div_ceil(NODE_SEG) {
            return Err(corrupt(format!(
                "manifest has {} node segments for {node_count} nodes",
                sk.nodes.len()
            )));
        }
        let mut nodes = Vec::with_capacity(sk.nodes.len());
        for e in &sk.nodes {
            nodes.push(walk(pager, e)?);
        }
        let coll_header = walk(pager, &sk.coll_header)?;
        let mut colls = Vec::with_capacity(sk.colls.len());
        for (name, e) in &sk.colls {
            colls.push((name.clone(), walk(pager, e)?));
        }
        let mut sym_of = FxHashMap::default();
        for (i, s) in syms.iter().enumerate() {
            sym_of.insert(s.clone(), i as u32);
        }
        Ok(SegFile {
            syms,
            sym_of,
            node_count,
            preamble,
            nodes,
            coll_header,
            colls,
            dirty_preamble: false,
            dirty_coll_header: false,
            dirty_nodes: BTreeSet::new(),
            dirty_colls: BTreeSet::new(),
        })
    }

    fn mark_all_dirty(&mut self) {
        self.dirty_preamble = true;
        self.dirty_coll_header = true;
        self.dirty_nodes = (0..self.nodes.len()).collect();
        self.dirty_colls = (0..self.colls.len()).collect();
    }

    /// Every segment's page ids in image order; concatenating these pages'
    /// payloads yields the flat image.
    fn all_pages(&self) -> Vec<u32> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.preamble.pages);
        for s in &self.nodes {
            out.extend_from_slice(&s.pages);
        }
        out.extend_from_slice(&self.coll_header.pages);
        for (_, s) in &self.colls {
            out.extend_from_slice(&s.pages);
        }
        out
    }

    /// All segments in image order (preamble, node runs, collection
    /// header, collections) — the order `all_pages` and compaction use.
    fn ordered(&self) -> Vec<&Seg> {
        let mut v = Vec::with_capacity(2 + self.nodes.len() + self.colls.len());
        v.push(&self.preamble);
        v.extend(self.nodes.iter());
        v.push(&self.coll_header);
        v.extend(self.colls.iter().map(|(_, s)| s));
        v
    }

    fn dirty_segments(&self) -> u64 {
        u64::from(self.dirty_preamble)
            + u64::from(self.dirty_coll_header)
            + self.dirty_nodes.len() as u64
            + self.dirty_colls.len() as u64
    }

    /// Pages the next incremental checkpoint would rewrite (estimating one
    /// page for segments not yet on disk, plus one for the manifest).
    fn dirty_page_estimate(&self) -> u64 {
        let seg_pages = |s: &Seg| (s.pages.len() as u64).max(1);
        let mut total = 0;
        if self.dirty_preamble {
            total += seg_pages(&self.preamble);
        }
        for &i in &self.dirty_nodes {
            total += self.nodes.get(i).map_or(1, seg_pages);
        }
        if self.dirty_coll_header {
            total += seg_pages(&self.coll_header);
        }
        for &i in &self.dirty_colls {
            total += self.colls.get(i).map_or(1, |(_, s)| seg_pages(s));
        }
        if total > 0 {
            total += 1; // the manifest root chain is rewritten too
        }
        total
    }
}

/// Folds one committed op into the dirty-segment map (and the running node
/// count) — the write-side mirror of [`apply_op`].
fn note_op(segs: &mut Option<SegFile>, node_count: &mut u32, op: &DeltaOp) {
    match op {
        DeltaOp::AddNode { .. } => {
            let idx = *node_count;
            *node_count += 1;
            if let Some(sf) = segs {
                sf.node_count = *node_count;
                sf.dirty_nodes.insert(idx as usize / NODE_SEG);
                sf.dirty_preamble = true; // the node count lives there
            }
        }
        DeltaOp::AddEdge { node, label, .. } => {
            if let Some(sf) = segs {
                sf.dirty_nodes.insert(*node as usize / NODE_SEG);
                if !sf.sym_of.contains_key(label.as_str()) {
                    sf.sym_of.insert(label.clone(), sf.syms.len() as u32);
                    sf.syms.push(label.clone());
                    sf.dirty_preamble = true;
                }
            }
        }
        DeltaOp::RemoveEdge { node, .. } => {
            if let Some(sf) = segs {
                sf.dirty_nodes.insert(*node as usize / NODE_SEG);
            }
        }
        DeltaOp::EnsureCollection { name }
        | DeltaOp::AddToCollection {
            collection: name, ..
        }
        | DeltaOp::RemoveFromCollection {
            collection: name, ..
        } => {
            if let Some(sf) = segs {
                match sf.colls.iter().position(|(n, _)| n == name) {
                    Some(i) => {
                        // Ensure on an existing collection changes nothing.
                        if !matches!(op, DeltaOp::EnsureCollection { .. }) {
                            sf.dirty_colls.insert(i);
                        }
                    }
                    None => {
                        // First reference creates the collection (mirroring
                        // apply_op's ensure_collection): a new segment is
                        // appended and the collection count changes.
                        sf.dirty_colls.insert(sf.colls.len());
                        sf.colls.push((name.clone(), Seg::default()));
                        sf.dirty_coll_header = true;
                    }
                }
            }
        }
    }
}

/// Concatenates the checkpoint segments back into a flat image (empty if
/// the store has never checkpointed).
fn compose_image(pager: &mut Pager, segs: &Option<SegFile>) -> Result<Vec<u8>> {
    match segs {
        None => Ok(Vec::new()),
        Some(sf) => pager.read_pages(&sf.all_pages()),
    }
}

fn materialize(pager: &mut Pager, segs: &Option<SegFile>) -> Result<Graph> {
    let image = compose_image(pager, segs)?;
    if image.is_empty() {
        Ok(Graph::standalone())
    } else {
        load_slice(&image)
    }
}

// ----------------------------------------------------------- paged store ----

/// WAL size (bytes) past which a successful commit triggers an automatic
/// checkpoint.
pub const DEFAULT_WAL_LIMIT: u64 = 4 << 20;

/// The write-ahead log lives next to the page file as `<path>.wal`.
pub fn wal_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// An immutable graph revision. Taking one is cheap: it pins the
/// checkpoint's page contents (already validated when read) plus the
/// committed delta ops on top, and materializes the graph lazily on first
/// access — clones share both the pinned bytes and the materialized graph.
/// The snapshot stays exactly as it was no matter what the writer commits,
/// checkpoints, or compacts afterwards.
#[derive(Clone)]
pub struct Snapshot {
    inner: Arc<SnapshotInner>,
}

struct SnapshotInner {
    revision: u64,
    /// The flat image at the last checkpoint ≤ this revision.
    image: Vec<u8>,
    /// Committed ops bringing the image up to `revision`.
    ops: Vec<DeltaOp>,
    graph: OnceLock<Graph>,
}

impl Snapshot {
    /// The revision this snapshot pins.
    pub fn revision(&self) -> u64 {
        self.inner.revision
    }

    /// The snapshot's graph, materialized on first call.
    ///
    /// # Panics
    ///
    /// If the pinned image or ops fail to re-apply — both were validated
    /// when the snapshot was taken, so failure here is an invariant
    /// violation, not an I/O condition.
    pub fn graph(&self) -> &Graph {
        self.inner.graph.get_or_init(|| {
            let mut tspan = trace::span("store.materialize", trace::Layer::Store);
            if tspan.is_live() {
                tspan.attr_u64("rev", self.inner.revision);
                tspan.attr_u64("ops", self.inner.ops.len() as u64);
                tspan.attr_u64("image_bytes", self.inner.image.len() as u64);
            }
            let mut g = if self.inner.image.is_empty() {
                Graph::standalone()
            } else {
                load_slice(&self.inner.image)
                    .expect("snapshot image was validated when the snapshot was pinned")
            };
            for op in &self.inner.ops {
                apply_op(&mut g, op).expect("snapshot ops applied cleanly when they committed");
            }
            g
        })
    }
}

impl std::ops::Deref for Snapshot {
    type Target = Graph;

    fn deref(&self) -> &Graph {
        self.graph()
    }
}

/// What [`PagedStore::compact`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Pages in the file before compaction.
    pub pages_before: u32,
    /// Pages in the file after compaction.
    pub pages_after: u32,
}

/// The durable graph store: a [`Pager`] page file holding the last
/// checkpointed snapshot, a [`Wal`] logging committed [`DeltaOp`]
/// transactions since that checkpoint, and an in-memory working graph at
/// the current revision.
///
/// Crash safety: a transaction is durable exactly when its WAL commit
/// record is (fsync on commit); opening the store replays committed
/// transactions on top of the checkpoint and discards any torn tail, so a
/// crash at any point yields the last committed revision — or a typed
/// [`GraphError::StorageCorrupt`] / [`GraphError::StorageRecovery`], never
/// a silently wrong graph.
pub struct PagedStore {
    pager: Pager,
    wal: Wal,
    /// The working graph, materialized lazily: `None` after an open with a
    /// clean WAL, until a reader or writer first needs it.
    graph: Option<Graph>,
    /// Segment layout of the last checkpoint; `None` before the first.
    segs: Option<SegFile>,
    /// Committed ops since the last checkpoint (what snapshots pin).
    pending: Vec<DeltaOp>,
    /// Member-node count at the current revision (tracked so `begin` and
    /// the commit queue never force materialization).
    node_count: u32,
    revision: u64,
    cached_snapshot: Option<Snapshot>,
    wal_limit: u64,
    group_window: Duration,
}

impl std::fmt::Debug for PagedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedStore")
            .field("path", &self.path())
            .field("revision", &self.revision)
            .finish_non_exhaustive()
    }
}

impl PagedStore {
    /// Creates an empty store at `path` (revision 0), truncating any
    /// existing page file and log.
    pub fn create(path: &Path) -> Result<Self> {
        let pager = Pager::create(path)?;
        let wal = Wal::create(&wal_path(path), 0)?;
        fsio::fsync_dir(&parent_of(path))?;
        let store = PagedStore {
            pager,
            wal,
            graph: Some(Graph::standalone()),
            segs: None,
            pending: Vec::new(),
            node_count: 0,
            revision: 0,
            cached_snapshot: None,
            wal_limit: DEFAULT_WAL_LIMIT,
            group_window: Duration::ZERO,
        };
        store.publish_gauges();
        Ok(store)
    }

    /// Creates a store at `path` seeded with `graph` as revision 1.
    pub fn import(path: &Path, graph: &Graph) -> Result<Self> {
        let mut bytes = Vec::new();
        save(graph, &mut bytes)?;
        // Reload from the serialized form so the working graph's member
        // order (the dense numbering deltas use) matches what any future
        // open reconstructs.
        let graph = load_slice(&bytes)?;
        let node_count = checked_count(graph.nodes().len(), "node")?;
        let segs = SegFile::seed(&graph)?;
        let mut store = PagedStore {
            pager: Pager::create(path)?,
            // Placeholder log; replaced once the revision-1 image is
            // durable, so a crash in between leaves a stale (discarded)
            // log, never one ahead of the page file.
            wal: Wal::create(&wal_path(path), 0)?,
            graph: Some(graph),
            segs: Some(segs),
            pending: Vec::new(),
            node_count,
            revision: 1,
            cached_snapshot: None,
            wal_limit: DEFAULT_WAL_LIMIT,
            group_window: Duration::ZERO,
        };
        store.write_checkpoint_image()?;
        store.wal = Wal::create(&wal_path(path), 1)?;
        fsio::fsync_dir(&parent_of(path))?;
        store.publish_gauges();
        Ok(store)
    }

    /// Opens the store at `path`, running crash recovery: validates the
    /// page file, replays committed WAL transactions (counting and
    /// truncating any torn tail), and discards a stale log left behind by
    /// a crash between checkpoint and log reset.
    pub fn open(path: &Path) -> Result<Self> {
        let mut pager = Pager::open(path)?;
        // Restoring the segment layout walks every segment chain, so a
        // bit flip anywhere in the checkpoint image is detected *here*,
        // not on some later read.
        let mut segs = if pager.chain_len() == 0 {
            None
        } else {
            let manifest = pager.read_chain()?;
            Some(SegFile::from_manifest(&mut pager, &manifest)?)
        };
        let mut node_count = segs.as_ref().map_or(0, |sf| sf.node_count);
        let mut revision = pager.revision();
        // Materialized only if the log has transactions to replay; a clean
        // open defers the full image parse until someone needs the graph.
        let mut graph: Option<Graph> = None;
        let mut pending: Vec<DeltaOp> = Vec::new();
        let wp = wal_path(path);
        let wal = if wp.exists() {
            let (wal, txns) = Wal::open(&wp, revision)?;
            if wal.base_revision() < revision {
                // Crash after a durable checkpoint but before the log
                // reset: everything in this log is already in the page
                // file. Start a fresh log.
                drop(wal);
                Wal::create(&wp, revision)?
            } else if wal.base_revision() > revision {
                return Err(recovery(format!(
                    "write-ahead log base revision {} is ahead of page file revision {revision}",
                    wal.base_revision()
                )));
            } else {
                let mut replayed = 0u64;
                for txn in &txns {
                    if txn.revision != revision + 1 {
                        return Err(recovery(format!(
                            "log commits revision {} on top of revision {revision}",
                            txn.revision
                        )));
                    }
                    for delta in &txn.deltas {
                        let op = decode_op(delta)?;
                        if graph.is_none() {
                            graph = Some(materialize(&mut pager, &segs)?);
                        }
                        let g = graph.as_mut().expect("materialized above");
                        apply_op(g, &op).map_err(|e| {
                            recovery(format!("replaying revision {}: {e}", txn.revision))
                        })?;
                        note_op(&mut segs, &mut node_count, &op);
                        pending.push(op);
                        replayed += 1;
                    }
                    revision = txn.revision;
                }
                if replayed > 0 {
                    STORAGE.wal_recoveries.inc();
                    STORAGE.wal_recovered_frames.add(replayed);
                }
                wal
            }
        } else {
            Wal::create(&wp, revision)?
        };
        let store = PagedStore {
            pager,
            wal,
            graph,
            segs,
            pending,
            node_count,
            revision,
            cached_snapshot: None,
            wal_limit: DEFAULT_WAL_LIMIT,
            group_window: Duration::ZERO,
        };
        store.publish_gauges();
        Ok(store)
    }

    /// The page file path.
    pub fn path(&self) -> &Path {
        self.pager.path()
    }

    /// The current committed revision.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The working graph at the current revision (read-only; mutate through
    /// [`PagedStore::begin`]). Materializes it on first access after a
    /// clean open.
    pub fn graph(&mut self) -> Result<&Graph> {
        self.ensure_graph().map(|g| &*g)
    }

    fn ensure_graph(&mut self) -> Result<&mut Graph> {
        if self.graph.is_none() {
            debug_assert!(self.pending.is_empty(), "lazy open implies a clean WAL");
            let g = materialize(&mut self.pager, &self.segs)?;
            self.graph = Some(g);
        }
        Ok(self.graph.as_mut().expect("materialized above"))
    }

    /// Pages in the page file (header slots included).
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Pages lost to freelist overflow, reclaimable by compaction.
    pub fn leaked_pages(&self) -> u64 {
        self.pager.leaked()
    }

    /// Free pages tracked in the active header, available to the next
    /// copy-on-write commit.
    pub fn freelist_len(&self) -> usize {
        self.pager.free_len()
    }

    /// Pages the next incremental checkpoint would rewrite.
    pub fn dirty_pages(&self) -> u64 {
        self.segs.as_ref().map_or(0, |sf| sf.dirty_page_estimate())
    }

    /// Segments dirtied since the last checkpoint.
    pub fn dirty_segments(&self) -> u64 {
        self.segs.as_ref().map_or(0, |sf| sf.dirty_segments())
    }

    /// Member-node count at the current revision (without materializing).
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Bytes in the write-ahead log (header included).
    pub fn wal_size(&self) -> u64 {
        self.wal.size_bytes()
    }

    /// Seconds since the current write-ahead log was created (reset at the
    /// last checkpoint) — how old the un-folded tail of the store is.
    pub fn wal_age_seconds(&self) -> u64 {
        self.wal.age_seconds()
    }

    /// Sets the WAL size past which commits auto-checkpoint.
    pub fn set_wal_limit(&mut self, bytes: u64) {
        self.wal_limit = bytes;
    }

    /// Caps the pager's in-memory page cache (in pages).
    pub fn set_page_cache_capacity(&mut self, pages: usize) {
        self.pager.set_cache_capacity(pages);
    }

    /// The group-commit window (see [`PagedStore::set_group_commit_window`]).
    pub fn group_commit_window(&self) -> Duration {
        self.group_window
    }

    /// Sets how long a [`CommitQueue`] leader waits, after claiming the
    /// store, for more transactions to join its batch before the shared
    /// fsync. Zero (the default) batches only what has already queued.
    pub fn set_group_commit_window(&mut self, window: Duration) {
        self.group_window = window;
    }

    /// Serializes the current revision to the flat snapshot format.
    pub fn serialize(&mut self) -> Result<Vec<u8>> {
        let g = self.ensure_graph()?;
        let mut bytes = Vec::new();
        save(g, &mut bytes)?;
        Ok(bytes)
    }

    /// Starts a transaction. Ops are buffered in the [`Txn`] and nothing
    /// changes until [`Txn::commit`].
    pub fn begin(&mut self) -> Txn<'_> {
        let base_nodes = self.node_count;
        Txn {
            store: self,
            ops: Vec::new(),
            base_nodes,
            added_nodes: 0,
        }
    }

    /// Applies and durably commits a batch of ops as one transaction,
    /// returning the new revision. On failure the store is rolled back to
    /// the last committed revision (by reloading from durable state) —
    /// all-or-nothing, in memory and on disk.
    pub fn commit_ops(&mut self, ops: &[DeltaOp]) -> Result<u64> {
        self.commit_batch(std::slice::from_ref(&ops))
    }

    /// Commits several transactions' ops behind **one** WAL commit record
    /// and one fsync — the group-commit primitive. The batch is a single
    /// revision on disk: either every transaction in it is durable or none
    /// is (a crash can never surface a batch prefix), and on any failure
    /// the store rolls back to the last committed revision.
    pub fn commit_batch(&mut self, txns: &[&[DeltaOp]]) -> Result<u64> {
        let total: usize = txns.iter().map(|t| t.len()).sum();
        if total == 0 {
            return Ok(self.revision);
        }
        let mut tspan = trace::span("store.commit", trace::Layer::Store);
        if tspan.is_live() {
            tspan.attr_u64("ops", total as u64);
            tspan.attr_u64("txns", txns.len() as u64);
            tspan.attr_u64("rev", self.revision + 1);
        }
        self.ensure_graph()?;
        for op in txns.iter().flat_map(|t| t.iter()) {
            let g = self.graph.as_mut().expect("ensured above");
            if let Err(e) = apply_op(g, op) {
                self.reload_from_durable()?;
                return Err(e);
            }
            note_op(&mut self.segs, &mut self.node_count, op);
        }
        let target = self.revision + 1;
        let logged: Result<()> = (|| {
            for op in txns.iter().flat_map(|t| t.iter()) {
                self.wal.append_delta(&encode_op(op))?;
            }
            self.wal.commit(target)
        })();
        if let Err(e) = logged {
            self.reload_from_durable()?;
            return Err(e);
        }
        let grouped = txns.iter().filter(|t| !t.is_empty()).count();
        if grouped > 1 {
            STORAGE.wal_group_commits.inc();
            STORAGE.wal_group_commit_txns.add(grouped as u64);
        }
        self.revision = target;
        self.cached_snapshot = None;
        self.pending
            .extend(txns.iter().flat_map(|t| t.iter().cloned()));
        self.publish_gauges();
        if self.wal.size_bytes() > self.wal_limit {
            self.checkpoint()?;
        }
        Ok(self.revision)
    }

    /// Discards in-memory state and reloads from the durable files —
    /// the rollback path when a commit fails partway.
    fn reload_from_durable(&mut self) -> Result<()> {
        let path = self.pager.path().to_path_buf();
        let mut fresh = PagedStore::open(&path)?;
        fresh.wal_limit = self.wal_limit;
        fresh.group_window = self.group_window;
        *self = fresh;
        Ok(())
    }

    /// A consistent snapshot of the current revision. Taking it does *not*
    /// materialize a graph: the snapshot pins the checkpoint image's bytes
    /// plus the committed ops on top, and parses them only when first read.
    /// Later commits, checkpoints, and compactions leave it untouched.
    /// Snapshots of the same revision are shared.
    pub fn snapshot(&mut self) -> Result<Snapshot> {
        if let Some(s) = &self.cached_snapshot {
            if s.revision() == self.revision {
                return Ok(s.clone());
            }
        }
        let image = compose_image(&mut self.pager, &self.segs)?;
        let snap = Snapshot {
            inner: Arc::new(SnapshotInner {
                revision: self.revision,
                image,
                ops: self.pending.clone(),
                graph: OnceLock::new(),
            }),
        };
        self.cached_snapshot = Some(snap.clone());
        Ok(snap)
    }

    /// Folds the log into the page file **incrementally**: only segments
    /// that committed deltas touched since the last checkpoint are
    /// re-serialized and written (copy-on-write); clean segments' pages are
    /// shared with the previous revision. A crash anywhere in between
    /// leaves a recoverable store (the old header slot survives until the
    /// new manifest is durable; a stale log is detected and discarded on
    /// open).
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.pager.revision() == self.revision && self.wal.size_bytes() == wal::EMPTY_SIZE {
            return Ok(());
        }
        let mut tspan = trace::span("store.checkpoint", trace::Layer::Store);
        if tspan.is_live() {
            tspan.attr_u64("rev", self.revision);
            tspan.attr_u64("wal_bytes", self.wal.size_bytes());
        }
        self.ensure_graph()?;
        if self.segs.is_none() {
            // First checkpoint: seed a fully-dirty layout.
            self.segs = Some(SegFile::seed(self.graph.as_ref().expect("ensured above"))?);
        }
        self.write_checkpoint_image()?;
        self.wal = Wal::create(&wal_path(self.pager.path()), self.revision)?;
        STORAGE.wal_checkpoints.inc();
        self.pending.clear();
        self.cached_snapshot = None;
        self.publish_gauges();
        Ok(())
    }

    /// Serializes every dirty segment and commits them (plus a new
    /// manifest) through the pager, freeing the replaced segments' pages
    /// for the *next* commit.
    fn write_checkpoint_image(&mut self) -> Result<()> {
        #[derive(Clone, Copy)]
        enum Slot {
            Preamble,
            Node(usize),
            CollHeader,
            Coll(usize),
        }
        let graph = self.graph.as_ref().expect("materialized before checkpoint");
        let segs = self.segs.as_mut().expect("seeded before checkpoint");
        let members = graph.nodes();
        let node_count = checked_count(members.len(), "node")?;
        segs.node_count = node_count;
        let want = members.len().div_ceil(NODE_SEG);
        while segs.nodes.len() < want {
            segs.dirty_nodes.insert(segs.nodes.len());
            segs.nodes.push(Seg::default());
        }
        checked_count(segs.colls.len(), "collection")?;
        let dense = dense_map(members);

        let mut slots: Vec<Slot> = Vec::new();
        let mut blobs: Vec<Vec<u8>> = Vec::new();
        let mut freed: Vec<u32> = Vec::new();
        if segs.dirty_preamble {
            slots.push(Slot::Preamble);
            blobs.push(write_preamble(&segs.syms, node_count)?);
            freed.extend_from_slice(&segs.preamble.pages);
        }
        for &i in &segs.dirty_nodes {
            let from = i * NODE_SEG;
            let to = ((i + 1) * NODE_SEG).min(members.len());
            slots.push(Slot::Node(i));
            blobs.push(write_node_segment(graph, &dense, &segs.sym_of, from, to)?);
            freed.extend_from_slice(&segs.nodes[i].pages);
        }
        if segs.dirty_coll_header {
            slots.push(Slot::CollHeader);
            let mut b = Vec::new();
            write_u32(&mut b, segs.colls.len() as u32)?;
            blobs.push(b);
            freed.extend_from_slice(&segs.coll_header.pages);
        }
        for &i in &segs.dirty_colls {
            slots.push(Slot::Coll(i));
            blobs.push(write_collection_segment(graph, &dense, &segs.colls[i].0)?);
            freed.extend_from_slice(&segs.colls[i].1.pages);
        }

        // Entries for the new manifest: dirty slots are filled in from the
        // pages the pager allocates; clean segments keep their placement.
        let mut pre_e = entry_for(&segs.preamble);
        let mut node_e: Vec<ManifestEntry> = segs.nodes.iter().map(entry_for).collect();
        let mut ch_e = entry_for(&segs.coll_header);
        let mut coll_e: Vec<ManifestEntry> = segs.colls.iter().map(|(_, s)| entry_for(s)).collect();
        let coll_names: Vec<&str> = segs.colls.iter().map(|(n, _)| n.as_str()).collect();
        let revision = self.revision;
        let blob_refs: Vec<&[u8]> = blobs.iter().map(|b| b.as_slice()).collect();
        let lists = self
            .pager
            .commit_segments(&blob_refs, freed, revision, |pages| {
                for (k, slot) in slots.iter().enumerate() {
                    let e = ManifestEntry {
                        stamp: revision,
                        len: blobs[k].len() as u64,
                        first: pages[k].first().copied().unwrap_or(0),
                        npages: pages[k].len() as u32,
                    };
                    match slot {
                        Slot::Preamble => pre_e = e,
                        Slot::Node(i) => node_e[*i] = e,
                        Slot::CollHeader => ch_e = e,
                        Slot::Coll(i) => coll_e[*i] = e,
                    }
                }
                encode_manifest(&pre_e, &node_e, &ch_e, &coll_names, &coll_e)
            })?;

        let written: u64 =
            lists.iter().map(|l| l.len() as u64).sum::<u64>() + self.pager.chain_len() as u64;
        for (k, slot) in slots.iter().enumerate() {
            let seg = match slot {
                Slot::Preamble => &mut segs.preamble,
                Slot::Node(i) => &mut segs.nodes[*i],
                Slot::CollHeader => &mut segs.coll_header,
                Slot::Coll(i) => &mut segs.colls[*i].1,
            };
            seg.pages = lists[k].clone();
            seg.len = blobs[k].len() as u64;
            seg.stamp = revision;
        }
        let new_blob_pages: u64 = lists.iter().map(|l| l.len() as u64).sum();
        let total_pages = segs.all_pages().len() as u64;
        STORAGE.checkpoint_pages_written.add(written);
        STORAGE
            .checkpoint_pages_reused
            .add(total_pages - new_blob_pages);
        segs.dirty_preamble = false;
        segs.dirty_coll_header = false;
        segs.dirty_nodes.clear();
        segs.dirty_colls.clear();
        Ok(())
    }

    /// Checkpoints, then rewrites the page file minimally (dropping free
    /// and leaked pages) with an atomic replace. The segments' *bytes* are
    /// copied as-is from the old file — no graph re-serialization — and
    /// their revision stamps survive. Returns the before/after page counts.
    pub fn compact(&mut self) -> Result<CompactReport> {
        self.checkpoint()?;
        let pages_before = self.pager.page_count();
        let path = self.pager.path().to_path_buf();
        let tmp = path.with_extension("pdb.compact");
        let mut new_lists: Option<Vec<Vec<u32>>> = None;
        {
            let mut fresh = Pager::create(&tmp)?;
            if let Some(segs) = &self.segs {
                let ordered: Vec<(u64, u64, Vec<u32>)> = segs
                    .ordered()
                    .into_iter()
                    .map(|s| (s.stamp, s.len, s.pages.clone()))
                    .collect();
                let mut blobs = Vec::with_capacity(ordered.len());
                for (_, _, pl) in &ordered {
                    blobs.push(self.pager.read_pages(pl)?);
                }
                let blob_refs: Vec<&[u8]> = blobs.iter().map(|b| b.as_slice()).collect();
                let n_nodes = segs.nodes.len();
                let n_colls = segs.colls.len();
                let names: Vec<&str> = segs.colls.iter().map(|(n, _)| n.as_str()).collect();
                let lists =
                    fresh.commit_segments(&blob_refs, Vec::new(), self.revision, |pages| {
                        let entry = |k: usize| ManifestEntry {
                            stamp: ordered[k].0,
                            len: ordered[k].1,
                            first: pages[k].first().copied().unwrap_or(0),
                            npages: pages[k].len() as u32,
                        };
                        let pre = entry(0);
                        let nodes: Vec<ManifestEntry> =
                            (0..n_nodes).map(|i| entry(1 + i)).collect();
                        let ch = entry(1 + n_nodes);
                        let colls: Vec<ManifestEntry> =
                            (0..n_colls).map(|i| entry(2 + n_nodes + i)).collect();
                        encode_manifest(&pre, &nodes, &ch, &names, &colls)
                    })?;
                new_lists = Some(lists);
            }
        }
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        let _ = fsio::fsync_dir(&parent_of(&path));
        self.pager = Pager::open(&path)?;
        if let (Some(segs), Some(lists)) = (&mut self.segs, new_lists) {
            let mut it = lists.into_iter();
            segs.preamble.pages = it.next().expect("preamble pages");
            for s in &mut segs.nodes {
                s.pages = it.next().expect("node segment pages");
            }
            segs.coll_header.pages = it.next().expect("collection header pages");
            for (_, s) in &mut segs.colls {
                s.pages = it.next().expect("collection pages");
            }
        }
        STORAGE.compactions.inc();
        self.publish_gauges();
        Ok(CompactReport {
            pages_before,
            pages_after: self.pager.page_count(),
        })
    }

    /// Mirrors this store's level-style state into the process-wide gauges.
    fn publish_gauges(&self) {
        STORAGE.dirty_pages.set(self.dirty_pages());
        STORAGE.freelist_pages.set(self.pager.free_len() as u64);
    }
}

fn parent_of(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// A buffered transaction on a [`PagedStore`]. Build up ops, then
/// [`Txn::commit`]; dropping the transaction without committing discards
/// it entirely.
pub struct Txn<'a> {
    store: &'a mut PagedStore,
    ops: Vec<DeltaOp>,
    base_nodes: u32,
    added_nodes: u32,
}

impl Txn<'_> {
    /// Creates a node, returning its dense index (usable in later ops of
    /// this same transaction).
    pub fn add_node(&mut self, name: Option<&str>) -> u32 {
        let id = self.base_nodes + self.added_nodes;
        self.added_nodes += 1;
        self.ops.push(DeltaOp::AddNode {
            name: name.map(str::to_owned),
        });
        id
    }

    /// Adds edge `node --label--> value`.
    pub fn add_edge(&mut self, node: u32, label: &str, value: WireValue) {
        self.ops.push(DeltaOp::AddEdge {
            node,
            label: label.to_owned(),
            value,
        });
    }

    /// Removes edge `node --label--> value` (no-op if absent).
    pub fn remove_edge(&mut self, node: u32, label: &str, value: WireValue) {
        self.ops.push(DeltaOp::RemoveEdge {
            node,
            label: label.to_owned(),
            value,
        });
    }

    /// Ensures a collection exists.
    pub fn ensure_collection(&mut self, name: &str) {
        self.ops.push(DeltaOp::EnsureCollection {
            name: name.to_owned(),
        });
    }

    /// Adds a value to a collection (created if missing).
    pub fn add_to_collection(&mut self, collection: &str, value: WireValue) {
        self.ops.push(DeltaOp::AddToCollection {
            collection: collection.to_owned(),
            value,
        });
    }

    /// Removes a value from a collection (no-op if absent).
    pub fn remove_from_collection(&mut self, collection: &str, value: WireValue) {
        self.ops.push(DeltaOp::RemoveFromCollection {
            collection: collection.to_owned(),
            value,
        });
    }

    /// Number of ops buffered so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the transaction is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Commits the transaction durably, returning the new revision.
    pub fn commit(self) -> Result<u64> {
        let ops = self.ops;
        self.store.commit_ops(&ops)
    }
}

// ----------------------------------------------------------- group commit ----

/// A committer's rendezvous with its batch leader: the result slot plus a
/// condvar the leader signals. Followers wait *here*, never on the store
/// lock — a follower parked on the store mutex could not collect its
/// result (or submit its next transaction) while the next leader holds the
/// store through the batching window, which would shrink every batch to
/// the leader alone.
#[derive(Default)]
struct Ticket {
    state: std::sync::Mutex<Option<Result<u64>>>,
    filled: std::sync::Condvar,
}

struct QueueEntry {
    /// The store's node count when the transaction began; dense indexes
    /// ≥ this value are nodes the transaction itself creates and get
    /// rebased onto wherever the batch actually lands.
    base_nodes: u32,
    ops: Vec<DeltaOp>,
    /// Filled by the leader (while it still holds the store) with the
    /// entry's commit result.
    done: Arc<Ticket>,
}

/// A concurrent, group-committing write handle over a [`PagedStore`].
///
/// Threads build transactions with [`CommitQueue::begin`] and commit them
/// from any thread; concurrently submitted transactions are folded into
/// **one** WAL commit record behind **one** fsync. The batching is a lock
/// convoy: every committer enqueues its entry and then contends for the
/// store — whoever wins the lock becomes the *leader*, optionally sleeps
/// the store's group-commit window to let the queue fill, then drains and
/// commits everything queued as a single batch (one revision: all durable
/// or none) and hands each follower its result before releasing the store.
/// Followers that wake up already-committed return without touching the
/// WAL at all.
///
/// Clones share the queue and the store.
#[derive(Clone)]
pub struct CommitQueue {
    inner: Arc<QueueInner>,
}

struct QueueInner {
    store: Mutex<PagedStore>,
    waiting: Mutex<Vec<QueueEntry>>,
    /// Mirror of the store's node count, maintained by leaders after each
    /// batch. [`CommitQueue::begin`] reads this instead of locking the
    /// store: a begin that had to wait for the store would defeat the
    /// convoy (while a leader holds the store through its batching window,
    /// other writers must be able to build and enqueue transactions). The
    /// mirror may lag behind the store — never run ahead of it — and a low
    /// base is exactly what the rebasing in the commit path corrects.
    node_count: AtomicU32,
}

impl CommitQueue {
    /// Wraps a store for concurrent group-committed writes.
    pub fn new(store: PagedStore) -> Self {
        let node_count = AtomicU32::new(store.node_count());
        CommitQueue {
            inner: Arc::new(QueueInner {
                store: Mutex::new(store),
                waiting: Mutex::new(Vec::new()),
                node_count,
            }),
        }
    }

    /// Starts a transaction against the current revision.
    pub fn begin(&self) -> QueuedTxn<'_> {
        let base_nodes = self.inner.node_count.load(Ordering::Acquire);
        QueuedTxn {
            queue: self,
            ops: Vec::new(),
            base_nodes,
            added_nodes: 0,
        }
    }

    /// Runs `f` with exclusive access to the underlying store (for
    /// snapshots, checkpoints, stats). Queued commits wait.
    pub fn with_store<R>(&self, f: impl FnOnce(&mut PagedStore) -> R) -> R {
        let mut store = self.inner.store.lock();
        let out = f(&mut store);
        // `f` may have committed directly; refresh the begin() mirror.
        self.inner
            .node_count
            .store(store.node_count(), Ordering::Release);
        out
    }

    /// Unwraps the store if this is the last handle.
    pub fn into_store(self) -> std::result::Result<PagedStore, CommitQueue> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.store.into_inner()),
            Err(inner) => Err(CommitQueue { inner }),
        }
    }

    /// Enqueues a transaction's ops and returns once they are durable (or
    /// failed), whether this thread led the batch or another did.
    pub fn commit_ops(&self, base_nodes: u32, ops: Vec<DeltaOp>) -> Result<u64> {
        // Covers the whole rendezvous: a follower's span is mostly condvar
        // wait (its batch leader holds the store), a leader's span nests
        // the store.commit/store.wal_commit spans of the batch it drives.
        let mut tspan = trace::span("store.group_commit", trace::Layer::Store);
        tspan.attr_u64("ops", ops.len() as u64);
        let ticket: Arc<Ticket> = Arc::new(Ticket::default());
        self.inner.waiting.lock().push(QueueEntry {
            base_nodes,
            ops,
            done: ticket.clone(),
        });
        loop {
            if let Some(result) = ticket.state.lock().unwrap().take() {
                // A leader committed our entry as part of its batch.
                tspan.attr_text("role", "follower");
                return result;
            }
            let Some(mut store) = self.inner.store.try_lock() else {
                // Another thread holds the store. Either it is a leader
                // that will drain our entry (it takes the queue while
                // holding the store, after our push above), or it drained
                // the queue just before our push and nobody owns our entry
                // yet — the timeout sends us around the loop to lead it
                // ourselves.
                let guard = ticket.state.lock().unwrap();
                if guard.is_none() {
                    let _ = ticket
                        .filled
                        .wait_timeout(guard, Duration::from_millis(1))
                        .unwrap();
                }
                continue;
            };
            // Leader. Our ticket may have been filled between the check at
            // the top of the loop and winning the store; past this point
            // it cannot change (tickets are only filled under the store
            // lock), so an empty ticket means our entry is still queued.
            if let Some(result) = ticket.state.lock().unwrap().take() {
                tspan.attr_text("role", "follower");
                return result;
            }
            let window = store.group_commit_window();
            if !window.is_zero() && self.inner.waiting.lock().len() > 1 {
                // Leader with company: hold the store and let the queue
                // fill — concurrent committers enqueue freely (begin() and
                // the wait above never touch the store lock) and the batch
                // grows. An uncontended commit skips the wait: there is no
                // one to group with, and sleeping would just add the
                // window to every solo commit's latency.
                std::thread::sleep(window);
            }
            let batch: Vec<QueueEntry> = std::mem::take(&mut *self.inner.waiting.lock());
            debug_assert!(!batch.is_empty(), "own entry still queued");
            if batch.is_empty() {
                continue;
            }
            let result = Self::commit_batch_rebased(&mut store, &batch);
            self.inner
                .node_count
                .store(store.node_count(), Ordering::Release);
            let mut own = None;
            for entry in &batch {
                let r = result.clone();
                if Arc::ptr_eq(&entry.done, &ticket) {
                    own = Some(r);
                } else {
                    *entry.done.state.lock().unwrap() = Some(r);
                    entry.done.filled.notify_one();
                }
            }
            drop(store);
            if let Some(result) = own {
                tspan.attr_text("role", "leader");
                tspan.attr_u64("batch", batch.len() as u64);
                return result;
            }
        }
    }

    /// Rebases each entry's node indexes onto the store's current count,
    /// then commits the whole batch as one revision.
    fn commit_batch_rebased(store: &mut PagedStore, batch: &[QueueEntry]) -> Result<u64> {
        let mut cursor = store.node_count();
        let mut rebased: Vec<Vec<DeltaOp>> = Vec::with_capacity(batch.len());
        for entry in batch {
            if entry.base_nodes > cursor {
                return Err(GraphError::Storage {
                    message: format!(
                        "transaction began at node count {} but the store is at {cursor}",
                        entry.base_nodes
                    ),
                });
            }
            let shift = cursor - entry.base_nodes;
            let ops = rebase_ops(&entry.ops, entry.base_nodes, shift);
            cursor += ops
                .iter()
                .filter(|op| matches!(op, DeltaOp::AddNode { .. }))
                .count() as u32;
            rebased.push(ops);
        }
        let refs: Vec<&[DeltaOp]> = rebased.iter().map(|v| v.as_slice()).collect();
        store.commit_batch(&refs)
    }
}

impl std::fmt::Debug for CommitQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitQueue").finish_non_exhaustive()
    }
}

/// Shifts a transaction's self-created node indexes by `shift` — the nodes
/// earlier batch members created in front of it. Indexes below
/// `base_nodes` name preexisting nodes (the member list is append-only:
/// no op removes a node), so they are stable and pass through untouched.
fn rebase_ops(ops: &[DeltaOp], base_nodes: u32, shift: u32) -> Vec<DeltaOp> {
    if shift == 0 {
        return ops.to_vec();
    }
    let fix = |i: u32| if i >= base_nodes { i + shift } else { i };
    let fix_val = |v: &WireValue| match v {
        WireValue::Node(i) => WireValue::Node(fix(*i)),
        other => other.clone(),
    };
    ops.iter()
        .map(|op| match op {
            DeltaOp::AddNode { .. } | DeltaOp::EnsureCollection { .. } => op.clone(),
            DeltaOp::AddEdge { node, label, value } => DeltaOp::AddEdge {
                node: fix(*node),
                label: label.clone(),
                value: fix_val(value),
            },
            DeltaOp::RemoveEdge { node, label, value } => DeltaOp::RemoveEdge {
                node: fix(*node),
                label: label.clone(),
                value: fix_val(value),
            },
            DeltaOp::AddToCollection { collection, value } => DeltaOp::AddToCollection {
                collection: collection.clone(),
                value: fix_val(value),
            },
            DeltaOp::RemoveFromCollection { collection, value } => DeltaOp::RemoveFromCollection {
                collection: collection.clone(),
                value: fix_val(value),
            },
        })
        .collect()
}

/// A buffered transaction on a [`CommitQueue`] — the concurrent analogue
/// of [`Txn`]. Node indexes returned by [`QueuedTxn::add_node`] are
/// provisional; the queue rebases them when the batch commits.
pub struct QueuedTxn<'a> {
    queue: &'a CommitQueue,
    ops: Vec<DeltaOp>,
    base_nodes: u32,
    added_nodes: u32,
}

impl QueuedTxn<'_> {
    /// Creates a node, returning its provisional dense index (usable in
    /// later ops of this same transaction).
    pub fn add_node(&mut self, name: Option<&str>) -> u32 {
        let id = self.base_nodes + self.added_nodes;
        self.added_nodes += 1;
        self.ops.push(DeltaOp::AddNode {
            name: name.map(str::to_owned),
        });
        id
    }

    /// Adds edge `node --label--> value`.
    pub fn add_edge(&mut self, node: u32, label: &str, value: WireValue) {
        self.ops.push(DeltaOp::AddEdge {
            node,
            label: label.to_owned(),
            value,
        });
    }

    /// Removes edge `node --label--> value` (no-op if absent).
    pub fn remove_edge(&mut self, node: u32, label: &str, value: WireValue) {
        self.ops.push(DeltaOp::RemoveEdge {
            node,
            label: label.to_owned(),
            value,
        });
    }

    /// Ensures a collection exists.
    pub fn ensure_collection(&mut self, name: &str) {
        self.ops.push(DeltaOp::EnsureCollection {
            name: name.to_owned(),
        });
    }

    /// Adds a value to a collection (created if missing).
    pub fn add_to_collection(&mut self, collection: &str, value: WireValue) {
        self.ops.push(DeltaOp::AddToCollection {
            collection: collection.to_owned(),
            value,
        });
    }

    /// Removes a value from a collection (no-op if absent).
    pub fn remove_from_collection(&mut self, collection: &str, value: WireValue) {
        self.ops.push(DeltaOp::RemoveFromCollection {
            collection: collection.to_owned(),
            value,
        });
    }

    /// Number of ops buffered so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the transaction is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Commits via the queue, returning the revision the batch landed as.
    pub fn commit(self) -> Result<u64> {
        self.queue.commit_ops(self.base_nodes, self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl;

    fn sample() -> Graph {
        ddl::parse(
            r#"
collection Publications {
  abstract   text
  postscript ps
  homepage   url
}
object pub1 in Publications {
  title      "Specifying Representations"
  author     "Norman Ramsey"
  year       1997
  score      4.5
  open       true
  abstract   "abstracts/t.txt"
  postscript "papers/t.ps.gz"
  homepage   "http://example.com"
  next       &pub2
}
object pub2 in Publications {
  title "Optimizing"
  next  &pub1
}
"#,
        )
        .unwrap()
    }

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        save(g, &mut buf).unwrap();
        load(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let g2 = roundtrip(&g);
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.collection_str("Publications").unwrap().len(), 2);
        // Values with every tag survive.
        let r = g2.reader();
        let interner = g2.universe().interner();
        let p1 = g2.nodes()[0];
        assert_eq!(g2.node_name(p1).as_deref(), Some("pub1"));
        assert_eq!(
            r.attr(p1, interner.get("year").unwrap()),
            Some(&Value::Int(1997))
        );
        assert_eq!(
            r.attr(p1, interner.get("score").unwrap()),
            Some(&Value::Float(4.5))
        );
        assert_eq!(
            r.attr(p1, interner.get("open").unwrap()),
            Some(&Value::Bool(true))
        );
        assert_eq!(
            r.attr(p1, interner.get("postscript").unwrap()),
            Some(&Value::file(FileKind::PostScript, "papers/t.ps.gz"))
        );
        assert_eq!(
            r.attr(p1, interner.get("homepage").unwrap()),
            Some(&Value::url("http://example.com"))
        );
        // Cyclic node references survive with correct identity.
        let p2 = r
            .attr(p1, interner.get("next").unwrap())
            .unwrap()
            .as_node()
            .unwrap();
        assert_eq!(
            r.attr(p2, interner.get("next").unwrap()),
            Some(&Value::Node(p1))
        );
    }

    #[test]
    fn loaded_graph_is_fully_indexed() {
        let g2 = roundtrip(&sample());
        let year = g2.universe().interner().get("year").unwrap();
        assert_eq!(g2.index().unwrap().edges_with_label(year).len(), 1);
        assert_eq!(
            g2.index().unwrap().edges_to_value(&Value::Int(1997)).len(),
            1
        );
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let path = std::env::temp_dir().join(format!("strudel_store_{}.bin", std::process::id()));
        save_to_file(&g, &path).unwrap();
        let g2 = load_from_file(&path).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interrupted_save_leaves_old_file_byte_identical() {
        // The atomic-save regression: a save that errors partway (here: a
        // dangling node reference discovered mid-serialization, after the
        // magic and symbol table have already been produced) must leave the
        // previously saved file untouched.
        let dir = std::env::temp_dir().join(format!("strudel_atomic_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.bin");
        save_to_file(&sample(), &path).unwrap();
        let before = std::fs::read(&path).unwrap();

        let bad = {
            let mut g = Graph::standalone();
            let n = g.new_node(Some("n"));
            let ghost = g.universe().create_node(None);
            g.add_edge_str(n, "to", Value::Node(ghost)).unwrap();
            g
        };
        assert!(save_to_file(&bad, &path).is_err());
        assert_eq!(
            std::fs::read(&path).unwrap(),
            before,
            "failed save must not touch the destination"
        );
        // And no temp litter either.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let g2 = load_from_file(&path).unwrap();
        assert_eq!(g2.edge_count(), sample().edge_count());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        save(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(GraphError::StorageCorrupt { .. })
        ));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        save(&sample(), &mut buf).unwrap();
        for cut in [4usize, 9, buf.len() / 2, buf.len() - 1] {
            assert!(
                matches!(
                    load(&mut &buf[..cut]),
                    Err(GraphError::StorageCorrupt { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = Vec::new();
        save(&sample(), &mut buf).unwrap();
        load_slice(&buf).unwrap();
        for junk in [&b"x"[..], &b"\0\0\0\0"[..], MAGIC] {
            let mut tainted = buf.clone();
            tainted.extend_from_slice(junk);
            let err = load_slice(&tainted).unwrap_err();
            assert!(
                matches!(err, GraphError::StorageCorrupt { .. }),
                "junk {junk:?}: {err}"
            );
            assert!(err.to_string().contains("trailing"), "{err}");
        }
    }

    #[test]
    fn io_errors_surface_as_storage() {
        let path = std::env::temp_dir().join("strudel_store_definitely_missing.bin");
        let err = load_from_file(&path).unwrap_err();
        assert!(matches!(err, GraphError::Storage { .. }));
        assert!(err.to_string().starts_with("storage error:"), "{err}");
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::standalone();
        let g2 = roundtrip(&g);
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }

    #[test]
    fn dangling_reference_rejected_at_save() {
        let g = {
            let mut g = Graph::standalone();
            let n = g.new_node(None);
            // A node allocated in the universe but never adopted.
            let ghost = g.universe().create_node(None);
            g.add_edge_str(n, "to", Value::Node(ghost)).unwrap();
            g
        };
        let mut buf = Vec::new();
        assert!(save(&g, &mut buf).is_err());
    }

    #[test]
    fn queries_work_on_loaded_graphs() {
        // Not just structure: the whole pipeline runs on a loaded graph.
        let g2 = roundtrip(&sample());
        // Collection membership + attribute lookup.
        let pubs = g2.collection_str("Publications").unwrap();
        assert!(pubs.items().iter().all(Value::is_node));
    }

    // ------------------------------------------------------ paged store ----

    fn store_path(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("strudel_paged_{tag}_{}.pdb", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(wal_path(&p));
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(wal_path(p));
    }

    fn graph_bytes(g: &Graph) -> Vec<u8> {
        let mut b = Vec::new();
        save(g, &mut b).unwrap();
        b
    }

    #[test]
    fn paged_commit_and_reopen() {
        let p = store_path("basic");
        {
            let mut store = PagedStore::create(&p).unwrap();
            let mut txn = store.begin();
            let a = txn.add_node(Some("alice"));
            let b = txn.add_node(Some("bob"));
            txn.add_edge(a, "knows", WireValue::Node(b));
            txn.add_edge(a, "age", WireValue::Int(31));
            txn.add_to_collection("People", WireValue::Node(a));
            txn.add_to_collection("People", WireValue::Node(b));
            assert_eq!(txn.commit().unwrap(), 1);
            let mut txn = store.begin();
            txn.remove_edge(0, "age", WireValue::Int(31));
            txn.add_edge(0, "age", WireValue::Int(32));
            assert_eq!(txn.commit().unwrap(), 2);
        }
        let mut store = PagedStore::open(&p).unwrap();
        assert_eq!(store.revision(), 2);
        let g = store.graph().unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.collection_str("People").unwrap().len(), 2);
        let age = g.universe().interner().get("age").unwrap();
        assert_eq!(g.reader().attr(g.nodes()[0], age), Some(&Value::Int(32)));
        cleanup(&p);
    }

    #[test]
    fn paged_import_then_delta() {
        let p = store_path("import");
        {
            let mut store = PagedStore::import(&p, &sample()).unwrap();
            assert_eq!(store.revision(), 1);
            let mut txn = store.begin();
            let n = txn.add_node(Some("pub3"));
            txn.add_edge(n, "title", WireValue::Str("Third".into()));
            txn.add_to_collection("Publications", WireValue::Node(n));
            assert_eq!(txn.commit().unwrap(), 2);
        }
        let mut store = PagedStore::open(&p).unwrap();
        assert_eq!(store.revision(), 2);
        assert_eq!(store.graph().unwrap().node_count(), 3);
        assert_eq!(
            store
                .graph()
                .unwrap()
                .collection_str("Publications")
                .unwrap()
                .len(),
            3
        );
        cleanup(&p);
    }

    #[test]
    fn snapshot_isolation_across_commits() {
        let p = store_path("mvcc");
        let mut store = PagedStore::import(&p, &sample()).unwrap();
        let before = store.snapshot().unwrap();
        assert_eq!(before.revision(), 1);
        let mut txn = store.begin();
        let n = txn.add_node(Some("late"));
        txn.add_to_collection("Publications", WireValue::Node(n));
        txn.commit().unwrap();
        // The old snapshot still serves revision 1.
        assert_eq!(before.node_count(), 2);
        assert_eq!(before.collection_str("Publications").unwrap().len(), 2);
        let after = store.snapshot().unwrap();
        assert_eq!(after.revision(), 2);
        assert_eq!(after.node_count(), 3);
        // Same-revision snapshots share the pinned state.
        let again = store.snapshot().unwrap();
        assert!(Arc::ptr_eq(&after.inner, &again.inner));
        cleanup(&p);
    }

    #[test]
    fn checkpoint_folds_wal_and_survives_reopen() {
        let p = store_path("ckpt");
        {
            let mut store = PagedStore::import(&p, &sample()).unwrap();
            let mut txn = store.begin();
            let n = txn.add_node(Some("extra"));
            txn.add_edge(n, "title", WireValue::Str("E".into()));
            txn.commit().unwrap();
            store.checkpoint().unwrap();
            assert_eq!(
                store.wal_size(),
                wal::EMPTY_SIZE,
                "wal reset after checkpoint"
            );
        }
        let mut store = PagedStore::open(&p).unwrap();
        assert_eq!(store.revision(), 2);
        assert_eq!(store.graph().unwrap().node_count(), 3);
        cleanup(&p);
    }

    #[test]
    fn reopened_store_is_byte_identical_to_working_copy() {
        let p = store_path("ident");
        let expected = {
            let mut store = PagedStore::import(&p, &sample()).unwrap();
            let mut txn = store.begin();
            let n = txn.add_node(None);
            txn.add_edge(n, "score", WireValue::Float(2.5));
            txn.add_edge(0, "flag", WireValue::Bool(false));
            txn.commit().unwrap();
            store.serialize().unwrap()
        };
        let mut store = PagedStore::open(&p).unwrap();
        assert_eq!(store.serialize().unwrap(), expected);
        cleanup(&p);
    }

    #[test]
    fn failed_apply_rolls_back_to_committed_state() {
        let p = store_path("rollback");
        let mut store = PagedStore::import(&p, &sample()).unwrap();
        let expected = store.serialize().unwrap();
        let err = store
            .commit_ops(&[
                DeltaOp::AddNode { name: None },
                DeltaOp::AddEdge {
                    node: 999,
                    label: "broken".into(),
                    value: WireValue::Int(1),
                },
            ])
            .unwrap_err();
        assert!(matches!(err, GraphError::StorageCorrupt { .. }), "{err}");
        // Fully rolled back — including the AddNode that preceded the bad op.
        assert_eq!(store.revision(), 1);
        assert_eq!(store.serialize().unwrap(), expected);
        // And the store still takes commits.
        let mut txn = store.begin();
        txn.add_node(Some("ok"));
        assert_eq!(txn.commit().unwrap(), 2);
        cleanup(&p);
    }

    #[test]
    fn stale_wal_after_checkpoint_crash_is_discarded() {
        let p = store_path("stale");
        {
            let mut store = PagedStore::import(&p, &sample()).unwrap();
            let mut txn = store.begin();
            txn.add_node(Some("kept"));
            txn.commit().unwrap();
            store.checkpoint().unwrap();
        }
        // Simulate the crash window: checkpoint durable, but the old log
        // (base 1, with the now-folded txn) never got reset.
        {
            let mut old = Wal::create(&wal_path(&p), 1).unwrap();
            old.append_delta(&encode_op(&DeltaOp::AddNode {
                name: Some("kept".into()),
            }))
            .unwrap();
            old.commit(2).unwrap();
        }
        let mut store = PagedStore::open(&p).unwrap();
        assert_eq!(store.revision(), 2);
        assert_eq!(
            store.graph().unwrap().node_count(),
            3,
            "txn applied exactly once"
        );
        cleanup(&p);
    }

    #[test]
    fn wal_ahead_of_page_file_is_recovery_error() {
        let p = store_path("ahead");
        {
            PagedStore::import(&p, &sample()).unwrap();
        }
        Wal::create(&wal_path(&p), 7).unwrap();
        let err = PagedStore::open(&p).unwrap_err();
        assert!(matches!(err, GraphError::StorageRecovery { .. }), "{err}");
        cleanup(&p);
    }

    #[test]
    fn compact_shrinks_the_file() {
        let p = store_path("compact");
        let mut store = PagedStore::import(&p, &sample()).unwrap();
        // Grow the file: big payloads across several checkpoints.
        for round in 0..6 {
            let mut txn = store.begin();
            let n = txn.add_node(None);
            txn.add_edge(n, "blob", WireValue::Str("x".repeat(20_000)));
            let _ = round;
            txn.commit().unwrap();
            store.checkpoint().unwrap();
        }
        let expected = store.serialize().unwrap();
        let report = store.compact().unwrap();
        assert!(
            report.pages_after < report.pages_before,
            "compaction should shrink {} -> {}",
            report.pages_before,
            report.pages_after
        );
        assert_eq!(store.leaked_pages(), 0);
        // The compacted store keeps serving without a reopen.
        assert_eq!(store.serialize().unwrap(), expected);
        drop(store);
        let mut store = PagedStore::open(&p).unwrap();
        assert_eq!(store.serialize().unwrap(), expected);
        cleanup(&p);
    }

    #[test]
    fn delta_ops_roundtrip_through_encoding() {
        let ops = vec![
            DeltaOp::AddNode { name: None },
            DeltaOp::AddNode {
                name: Some("x".into()),
            },
            DeltaOp::AddEdge {
                node: 0,
                label: "l".into(),
                value: WireValue::File(FileKind::PostScript, "a.ps".into()),
            },
            DeltaOp::RemoveEdge {
                node: 1,
                label: "m".into(),
                value: WireValue::Url("http://e".into()),
            },
            DeltaOp::EnsureCollection { name: "C".into() },
            DeltaOp::AddToCollection {
                collection: "C".into(),
                value: WireValue::Float(1.5),
            },
            DeltaOp::RemoveFromCollection {
                collection: "C".into(),
                value: WireValue::Bool(true),
            },
        ];
        for op in &ops {
            assert_eq!(&decode_op(&encode_op(op)).unwrap(), op);
        }
        assert!(matches!(
            decode_op(&[99]),
            Err(GraphError::StorageCorrupt { .. })
        ));
    }

    // ----------------------------------------------------- group commit ----

    #[test]
    fn commit_batch_is_one_revision() {
        let p = store_path("batch");
        let mut store = PagedStore::create(&p).unwrap();
        let t1 = vec![
            DeltaOp::AddNode {
                name: Some("a".into()),
            },
            DeltaOp::AddEdge {
                node: 0,
                label: "x".into(),
                value: WireValue::Int(1),
            },
        ];
        let t2 = vec![
            DeltaOp::AddNode {
                name: Some("b".into()),
            },
            DeltaOp::AddToCollection {
                collection: "C".into(),
                value: WireValue::Node(1),
            },
        ];
        let rev = store.commit_batch(&[&t1, &t2]).unwrap();
        assert_eq!(rev, 1, "the whole batch lands as one revision");
        assert_eq!(store.node_count(), 2);
        drop(store);
        let mut store = PagedStore::open(&p).unwrap();
        assert_eq!(store.revision(), 1);
        let g = store.graph().unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.collection_str("C").unwrap().len(), 1);
        cleanup(&p);
    }

    #[test]
    fn queued_txns_rebase_stale_bases() {
        let p = store_path("rebase");
        let queue = CommitQueue::new(PagedStore::create(&p).unwrap());
        // Both transactions begin at node count 0; the second commits on
        // top of the first, so its self-created index must be rebased.
        let mut t1 = queue.begin();
        let a = t1.add_node(Some("a"));
        t1.add_edge(a, "tag", WireValue::Int(1));
        let mut t2 = queue.begin();
        let b = t2.add_node(Some("b"));
        t2.add_edge(b, "tag", WireValue::Int(2));
        t2.add_to_collection("All", WireValue::Node(b));
        t1.commit().unwrap();
        t2.commit().unwrap();
        let mut store = queue.into_store().expect("sole handle");
        let g = store.graph().unwrap();
        assert_eq!(g.node_count(), 2);
        let tag = g.universe().interner().get("tag").unwrap();
        let a_n = g.nodes()[0];
        let b_n = g.nodes()[1];
        assert_eq!(g.node_name(a_n).as_deref(), Some("a"));
        assert_eq!(g.node_name(b_n).as_deref(), Some("b"));
        assert_eq!(g.reader().attr(a_n, tag), Some(&Value::Int(1)));
        assert_eq!(g.reader().attr(b_n, tag), Some(&Value::Int(2)));
        assert_eq!(
            g.collection_str("All").unwrap().items(),
            &[Value::Node(b_n)]
        );
        cleanup(&p);
    }

    #[test]
    fn concurrent_commits_group_behind_shared_fsyncs() {
        let p = store_path("convoy");
        let mut store = PagedStore::create(&p).unwrap();
        store.set_group_commit_window(Duration::from_millis(2));
        let queue = CommitQueue::new(store);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let q = queue.clone();
                std::thread::spawn(move || {
                    for i in 0..25 {
                        let mut txn = q.begin();
                        let n = txn.add_node(Some(&format!("n{t}_{i}")));
                        txn.add_edge(n, "t", WireValue::Int(t));
                        txn.add_to_collection("All", WireValue::Node(n));
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let final_rev = queue.with_store(|s| s.revision());
        let mut store = queue.into_store().expect("sole handle");
        assert!(final_rev <= 100);
        assert_eq!(store.node_count(), 100);
        assert_eq!(
            store.graph().unwrap().collection_str("All").unwrap().len(),
            100
        );
        let expected = store.serialize().unwrap();
        drop(store);
        let mut reopened = PagedStore::open(&p).unwrap();
        assert_eq!(reopened.revision(), final_rev);
        assert_eq!(reopened.serialize().unwrap(), expected);
        cleanup(&p);
    }

    // --------------------------------------------- incremental checkpoint ----

    #[test]
    fn incremental_checkpoint_touches_only_dirty_segments() {
        let p = store_path("incr");
        let mut store = PagedStore::create(&p).unwrap();
        let mut txn = store.begin();
        for i in 0..1000i64 {
            let n = txn.add_node(None);
            txn.add_edge(n, "v", WireValue::Int(i));
        }
        txn.commit().unwrap();
        store.checkpoint().unwrap();
        let full_pages = store.segs.as_ref().unwrap().all_pages().len();
        assert_eq!(store.dirty_segments(), 0);
        // One new edge dirties one node segment (plus the preamble, since
        // "v2" is a new label) — not the whole image.
        let mut txn = store.begin();
        txn.add_edge(5, "v2", WireValue::Int(7));
        txn.commit().unwrap();
        assert_eq!(store.dirty_segments(), 2, "node segment + preamble");
        assert!(
            store.dirty_pages() < 8,
            "expected a handful of dirty pages, got {} (full image is {full_pages})",
            store.dirty_pages()
        );
        let count_before = store.page_count();
        store.checkpoint().unwrap();
        assert_eq!(store.dirty_segments(), 0);
        assert!(
            store.page_count() <= count_before + 8,
            "checkpoint grew the file by {} pages",
            store.page_count() - count_before
        );
        let expected = store.serialize().unwrap();
        drop(store);
        let mut reopened = PagedStore::open(&p).unwrap();
        assert_eq!(reopened.serialize().unwrap(), expected);
        cleanup(&p);
    }

    #[test]
    fn import_checkpoint_image_is_canonical() {
        let p = store_path("canon");
        let mut store = PagedStore::import(&p, &sample()).unwrap();
        let canonical = store.serialize().unwrap();
        let image = compose_image(&mut store.pager, &store.segs).unwrap();
        assert_eq!(image, canonical, "segments concatenate to the flat image");
        cleanup(&p);
    }

    #[test]
    fn snapshot_survives_checkpoint_and_compact() {
        let p = store_path("pin");
        let mut store = PagedStore::import(&p, &sample()).unwrap();
        let mut txn = store.begin();
        let n = txn.add_node(Some("pinned"));
        txn.add_edge(n, "title", WireValue::Str("P".into()));
        txn.commit().unwrap();
        let snap = store.snapshot().unwrap();
        let expected = store.serialize().unwrap();
        // Mutate, checkpoint, compact — the snapshot must not move, even
        // though it has not materialized yet.
        for _ in 0..5 {
            let mut txn = store.begin();
            let m = txn.add_node(None);
            txn.add_edge(m, "blob", WireValue::Str("y".repeat(9000)));
            txn.commit().unwrap();
            store.checkpoint().unwrap();
        }
        store.compact().unwrap();
        assert_eq!(snap.revision(), 2);
        assert_eq!(graph_bytes(snap.graph()), expected);
        cleanup(&p);
    }

    #[test]
    fn clean_open_defers_materialization() {
        let p = store_path("lazy");
        {
            PagedStore::import(&p, &sample()).unwrap();
        }
        let mut store = PagedStore::open(&p).unwrap();
        assert!(store.graph.is_none(), "clean open must not materialize");
        let snap = store.snapshot().unwrap();
        assert!(store.graph.is_none(), "snapshots pin bytes, not a graph");
        assert_eq!(snap.node_count(), 2);
        assert_eq!(store.graph().unwrap().node_count(), 2);
        cleanup(&p);
    }
}
