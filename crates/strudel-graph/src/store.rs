//! Binary persistence for the data repository.
//!
//! §6 of the paper lists "designing efficient storage representations for
//! semistructured data" among the open problems: "traditional database
//! systems rely heavily on schema information to organize data on disk",
//! which a schemaless repository cannot. This module implements the natural
//! schema-free layout the paper's repository design implies: a **symbol
//! table** (every label and collection name once), a **node table** (names
//! and out-edge lists referencing symbols), and **collection extents** —
//! the same three structures the in-memory indexes are built from, so a
//! loaded graph re-indexes in one pass.
//!
//! The format is a length-prefixed little-endian encoding, written and read
//! without intermediate allocation beyond the structures themselves. It is
//! deliberately dependency-free (no serde): the point of the exercise is
//! the *layout*, mirroring how the 1997 prototype would have had to store
//! graphs.

use crate::error::{GraphError, Result};
use crate::graph::{Graph, NodeId};
use crate::symbol::Sym;
use crate::value::{FileKind, Value};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"STRUDEL1";

fn io_err(e: io::Error) -> GraphError {
    GraphError::Storage {
        message: format!("I/O error: {e}"),
    }
}

fn corrupt(message: impl Into<String>) -> GraphError {
    GraphError::Storage {
        message: message.into(),
    }
}

/// Checks a count fits the on-disk `u32` representation; oversized graphs
/// fail loudly instead of silently writing a corrupt file.
fn checked_count(n: usize, what: &str) -> Result<u32> {
    u32::try_from(n).map_err(|_| corrupt(format!("{what} count {n} exceeds format limit")))
}

// ------------------------------------------------------------- primitives ----

fn write_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_u64(w: &mut impl Write, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_str(w: &mut impl Write, s: &str) -> Result<()> {
    write_u32(
        w,
        u32::try_from(s.len()).map_err(|_| corrupt("string too long"))?,
    )?;
    w.write_all(s.as_bytes()).map_err(io_err)
}

/// A bounds-checked reader over the whole (buffered) input. Every count
/// and length in the file is validated against the bytes actually present
/// *before* any allocation, so a corrupted length prefix cannot trigger an
/// unbounded allocation (found by the bit-flip fuzz test).
struct In<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> In<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt("truncated input"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a count that prefixes `count * min_record_bytes`-byte records;
    /// rejects counts the remaining input cannot possibly hold.
    fn count(&mut self, min_record_bytes: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_record_bytes.max(1)) > self.remaining() {
            return Err(corrupt(format!("count {n} exceeds remaining input")));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = if self.remaining() < len {
            return Err(corrupt("truncated string"));
        } else {
            self.take(len)?
        };
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid UTF-8 in stored string"))
    }
}

// ------------------------------------------------------------- values ----

const TAG_NODE: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_URL: u8 = 5;
const TAG_FILE: u8 = 6;

fn write_value(w: &mut impl Write, v: &Value, remap: &dyn Fn(NodeId) -> u32) -> Result<()> {
    match v {
        Value::Node(n) => {
            w.write_all(&[TAG_NODE]).map_err(io_err)?;
            write_u32(w, remap(*n))
        }
        Value::Int(i) => {
            w.write_all(&[TAG_INT]).map_err(io_err)?;
            write_u64(w, *i as u64)
        }
        Value::Float(f) => {
            w.write_all(&[TAG_FLOAT]).map_err(io_err)?;
            write_u64(w, f.to_bits())
        }
        Value::Bool(b) => w.write_all(&[TAG_BOOL, u8::from(*b)]).map_err(io_err),
        Value::Str(s) => {
            w.write_all(&[TAG_STR]).map_err(io_err)?;
            write_str(w, s)
        }
        Value::Url(s) => {
            w.write_all(&[TAG_URL]).map_err(io_err)?;
            write_str(w, s)
        }
        Value::File(kind, path) => {
            let k = match kind {
                FileKind::Text => 0u8,
                FileKind::Html => 1,
                FileKind::Image => 2,
                FileKind::PostScript => 3,
            };
            w.write_all(&[TAG_FILE, k]).map_err(io_err)?;
            write_str(w, path)
        }
    }
}

fn read_value(r: &mut In<'_>, nodes: &[NodeId]) -> Result<Value> {
    Ok(match r.u8()? {
        TAG_NODE => {
            let idx = r.u32()? as usize;
            Value::Node(
                *nodes
                    .get(idx)
                    .ok_or_else(|| corrupt("node index out of range"))?,
            )
        }
        TAG_INT => Value::Int(r.u64()? as i64),
        TAG_FLOAT => Value::Float(f64::from_bits(r.u64()?)),
        TAG_BOOL => Value::Bool(r.u8()? != 0),
        TAG_STR => Value::str(r.str()?),
        TAG_URL => Value::url(r.str()?),
        TAG_FILE => {
            let kind = match r.u8()? {
                0 => FileKind::Text,
                1 => FileKind::Html,
                2 => FileKind::Image,
                3 => FileKind::PostScript,
                other => return Err(corrupt(format!("unknown file kind {other}"))),
            };
            Value::file(kind, r.str()?)
        }
        other => return Err(corrupt(format!("unknown value tag {other}"))),
    })
}

// ------------------------------------------------------------ graph I/O ----

/// Serializes a graph to a writer.
///
/// Layout: magic, symbol table (all labels used), node table (name flag +
/// name, edge list of `(symbol index, value)`), collection extents. Node
/// references are densified to the graph's member order, so the stored form
/// is independent of the universe's global oid space.
pub fn save(graph: &Graph, w: &mut impl Write) -> Result<()> {
    w.write_all(MAGIC).map_err(io_err)?;

    // Dense node numbering.
    let members = graph.nodes();
    checked_count(members.len(), "node")?;
    let mut dense = std::collections::HashMap::with_capacity(members.len());
    for (i, &n) in members.iter().enumerate() {
        dense.insert(n, u32::try_from(i).expect("node count checked above"));
    }
    let remap = |n: NodeId| -> u32 { *dense.get(&n).unwrap_or(&u32::MAX) };

    // Symbol table: all labels that occur, in first-use order.
    let mut sym_index: Vec<Sym> = Vec::new();
    let mut sym_of = std::collections::HashMap::new();
    let reader = graph.reader();
    for &n in members {
        for (l, _) in reader.out(n) {
            if !sym_of.contains_key(l) {
                let idx = checked_count(sym_index.len(), "symbol")?;
                sym_index.push(*l);
                sym_of.insert(*l, idx);
            }
        }
    }
    write_u32(w, checked_count(sym_index.len(), "symbol")?)?;
    for &s in &sym_index {
        write_str(w, &graph.resolve(s))?;
    }

    // Node table.
    write_u32(w, checked_count(members.len(), "node")?)?;
    for &n in members {
        match reader.name(n) {
            Some(name) => {
                w.write_all(&[1]).map_err(io_err)?;
                write_str(w, name)?;
            }
            None => w.write_all(&[0]).map_err(io_err)?,
        }
        let out = reader.out(n);
        // Dangling node references (to nodes outside this graph) are not
        // representable in the dense numbering; reject rather than corrupt.
        for (_, v) in out {
            if let Value::Node(m) = v {
                if !dense.contains_key(m) {
                    return Err(corrupt(format!(
                        "edge to non-member node {m}; adopt it before saving"
                    )));
                }
            }
        }
        write_u32(w, checked_count(out.len(), "out-edge")?)?;
        for (l, v) in out {
            write_u32(w, sym_of[l])?;
            write_value(w, v, &remap)?;
        }
    }

    // Collections.
    let colls = graph.collection_names().to_vec();
    write_u32(w, checked_count(colls.len(), "collection")?)?;
    for c in colls {
        write_str(w, &graph.resolve(c))?;
        let items = graph.collection(c).expect("listed").items();
        for item in items {
            if let Value::Node(m) = item {
                if !dense.contains_key(m) {
                    return Err(corrupt("collection member is not a graph member"));
                }
            }
        }
        write_u32(w, checked_count(items.len(), "collection item")?)?;
        for item in items {
            write_value(w, item, &remap)?;
        }
    }
    Ok(())
}

/// Deserializes a graph from a reader into a fresh standalone graph.
///
/// The entire stream is buffered first so every count in the file can be
/// validated against the bytes actually present — corrupted inputs fail
/// with an error rather than attempting huge allocations.
pub fn load(reader: &mut impl Read) -> Result<Graph> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf).map_err(io_err)?;
    load_slice(&buf)
}

/// Deserializes a graph from an in-memory buffer.
pub fn load_slice(buf: &[u8]) -> Result<Graph> {
    let mut r = In { buf, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(corrupt("not a STRUDEL graph file"));
    }
    let mut g = Graph::standalone();

    // Each symbol record is at least its 4-byte length prefix.
    let n_syms = r.count(4)?;
    let mut syms = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        let s = r.str()?;
        syms.push(g.sym(&s));
    }

    // Each node record is at least 1 flag byte + 4 count bytes.
    let n_nodes = r.count(5)?;
    // Edge values may reference nodes that appear later in the stream, so
    // pre-create every node, then fill names and edges in a second pass.
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(g.new_node(None));
    }
    for i in 0..n_nodes {
        let has_name = r.u8()? == 1;
        if has_name {
            let name = r.str()?;
            g.universe().set_node_name(nodes[i], &name);
        }
        // Each edge is at least a 4-byte symbol index + 1 tag byte.
        let n_edges = r.count(5)?;
        for _ in 0..n_edges {
            let sym_idx = r.u32()? as usize;
            let sym = *syms
                .get(sym_idx)
                .ok_or_else(|| corrupt("symbol index out of range"))?;
            let value = read_value(&mut r, &nodes)?;
            g.add_edge(nodes[i], sym, value)?;
        }
    }

    // Each collection record is at least a 4-byte name length + 4-byte count.
    let n_colls = r.count(8)?;
    for _ in 0..n_colls {
        let name = r.str()?;
        let sym = g.ensure_collection(&name);
        // Each item is at least a 1-byte tag + 1 byte payload.
        let n_items = r.count(2)?;
        for _ in 0..n_items {
            let v = read_value(&mut r, &nodes)?;
            g.add_to_collection(sym, v);
        }
    }
    Ok(g)
}

/// Saves a graph to a file.
pub fn save_to_file(graph: &Graph, path: &std::path::Path) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = std::io::BufWriter::new(file);
    save(graph, &mut w)?;
    w.flush().map_err(io_err)
}

/// Loads a graph from a file.
pub fn load_from_file(path: &std::path::Path) -> Result<Graph> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut r = std::io::BufReader::new(file);
    load(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl;

    fn sample() -> Graph {
        ddl::parse(
            r#"
collection Publications {
  abstract   text
  postscript ps
  homepage   url
}
object pub1 in Publications {
  title      "Specifying Representations"
  author     "Norman Ramsey"
  year       1997
  score      4.5
  open       true
  abstract   "abstracts/t.txt"
  postscript "papers/t.ps.gz"
  homepage   "http://example.com"
  next       &pub2
}
object pub2 in Publications {
  title "Optimizing"
  next  &pub1
}
"#,
        )
        .unwrap()
    }

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        save(g, &mut buf).unwrap();
        load(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let g2 = roundtrip(&g);
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.collection_str("Publications").unwrap().len(), 2);
        // Values with every tag survive.
        let r = g2.reader();
        let interner = g2.universe().interner();
        let p1 = g2.nodes()[0];
        assert_eq!(g2.node_name(p1).as_deref(), Some("pub1"));
        assert_eq!(
            r.attr(p1, interner.get("year").unwrap()),
            Some(&Value::Int(1997))
        );
        assert_eq!(
            r.attr(p1, interner.get("score").unwrap()),
            Some(&Value::Float(4.5))
        );
        assert_eq!(
            r.attr(p1, interner.get("open").unwrap()),
            Some(&Value::Bool(true))
        );
        assert_eq!(
            r.attr(p1, interner.get("postscript").unwrap()),
            Some(&Value::file(FileKind::PostScript, "papers/t.ps.gz"))
        );
        assert_eq!(
            r.attr(p1, interner.get("homepage").unwrap()),
            Some(&Value::url("http://example.com"))
        );
        // Cyclic node references survive with correct identity.
        let p2 = r
            .attr(p1, interner.get("next").unwrap())
            .unwrap()
            .as_node()
            .unwrap();
        assert_eq!(
            r.attr(p2, interner.get("next").unwrap()),
            Some(&Value::Node(p1))
        );
    }

    #[test]
    fn loaded_graph_is_fully_indexed() {
        let g2 = roundtrip(&sample());
        let year = g2.universe().interner().get("year").unwrap();
        assert_eq!(g2.index().unwrap().edges_with_label(year).len(), 1);
        assert_eq!(
            g2.index().unwrap().edges_to_value(&Value::Int(1997)).len(),
            1
        );
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let path = std::env::temp_dir().join(format!("strudel_store_{}.bin", std::process::id()));
        save_to_file(&g, &path).unwrap();
        let g2 = load_from_file(&path).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        save(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(GraphError::Storage { .. })
        ));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        save(&sample(), &mut buf).unwrap();
        for cut in [4usize, 9, buf.len() / 2, buf.len() - 1] {
            assert!(
                matches!(load(&mut &buf[..cut]), Err(GraphError::Storage { .. })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn io_errors_surface_as_storage() {
        let path = std::env::temp_dir().join("strudel_store_definitely_missing.bin");
        let err = load_from_file(&path).unwrap_err();
        assert!(matches!(err, GraphError::Storage { .. }));
        assert!(err.to_string().starts_with("storage error:"), "{err}");
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::standalone();
        let g2 = roundtrip(&g);
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }

    #[test]
    fn dangling_reference_rejected_at_save() {
        let g = {
            let mut g = Graph::standalone();
            let n = g.new_node(None);
            // A node allocated in the universe but never adopted.
            let ghost = g.universe().create_node(None);
            g.add_edge_str(n, "to", Value::Node(ghost)).unwrap();
            g
        };
        let mut buf = Vec::new();
        assert!(save(&g, &mut buf).is_err());
    }

    #[test]
    fn queries_work_on_loaded_graphs() {
        // Not just structure: the whole pipeline runs on a loaded graph.
        let g2 = roundtrip(&sample());
        // Collection membership + attribute lookup.
        let pubs = g2.collection_str("Publications").unwrap();
        assert!(pubs.items().iter().all(Value::is_node));
    }
}
