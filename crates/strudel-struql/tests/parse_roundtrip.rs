//! Property: pretty-printing any well-formed query and re-parsing it yields
//! the same AST. This pins the parser and printer to each other across the
//! whole grammar (conditions, regular path expressions, construction
//! clauses, nested blocks, aggregates).

use proptest::prelude::*;
use strudel_struql::ast::*;
use strudel_struql::parse_query;

// Identifier strategies. Reserved words (clause keywords, boolean literals,
// aggregate names) are excluded; variables are lowercase, Skolem/collection
// names are capitalized, so they can't collide with each other either.
fn var_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,4}".prop_filter("reserved", |s| {
        !matches!(
            s.as_str(),
            "where"
                | "create"
                | "link"
                | "collect"
                | "input"
                | "output"
                | "in"
                | "not"
                | "true"
                | "false"
                | "count"
                | "sum"
                | "min"
                | "max"
                | "avg"
        )
    })
}

fn cap_name() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{0,5}".prop_filter("reserved", |s| {
        !matches!(
            s.to_ascii_lowercase().as_str(),
            "count"
                | "sum"
                | "min"
                | "max"
                | "avg"
                | "where"
                | "create"
                | "link"
                | "collect"
                | "input"
                | "output"
                | "in"
                | "not"
                | "true"
                | "false"
        )
    })
}

fn safe_string() -> impl Strategy<Value = String> {
    // Printable, escape-free strings: `{:?}` printing and StruQL string
    // parsing agree on these.
    "[a-zA-Z0-9 _.-]{0,8}".prop_map(|s| s)
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        safe_string().prop_map(Literal::Str),
        any::<i32>().prop_map(|i| Literal::Int(i as i64)),
        // Floats whose Display form contains a '.', so they re-parse as
        // floats rather than integers.
        (-1000i32..1000).prop_map(|i| Literal::Float(i as f64 + 0.5)),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        var_name().prop_map(Term::Var),
        literal().prop_map(Term::Lit)
    ]
}

fn rpe(depth: u32) -> BoxedStrategy<Rpe> {
    let leaf = prop_oneof![safe_string().prop_map(Rpe::Label), Just(Rpe::AnyLabel)];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = rpe(depth - 1);
    prop_oneof![
        leaf,
        (rpe(depth - 1), rpe(depth - 1)).prop_map(|(a, b)| Rpe::Seq(Box::new(a), Box::new(b))),
        (rpe(depth - 1), rpe(depth - 1)).prop_map(|(a, b)| Rpe::Alt(Box::new(a), Box::new(b))),
        inner.clone().prop_map(|r| Rpe::Star(Box::new(r))),
        rpe(depth - 1).prop_map(|r| Rpe::Plus(Box::new(r))),
        rpe(depth - 1).prop_map(|r| Rpe::Opt(Box::new(r))),
    ]
    .boxed()
}

fn path_step() -> impl Strategy<Value = PathStep> {
    prop_oneof![
        // Bare identifiers: exactly what the parser produces pre-analysis.
        var_name().prop_map(PathStep::Bare),
        rpe(2).prop_map(PathStep::Rpe),
    ]
}

fn condition() -> impl Strategy<Value = Condition> {
    prop_oneof![
        (cap_name(), term(), any::<bool>())
            .prop_map(|(name, arg, negated)| Condition::Collection { name, arg, negated }),
        (term(), path_step(), term(), any::<bool>()).prop_map(|(from, step, to, negated)| {
            Condition::Edge {
                from,
                step,
                to,
                negated,
            }
        }),
        (
            term(),
            term(),
            prop_oneof![
                Just(CmpOp::Eq),
                Just(CmpOp::Ne),
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Gt),
                Just(CmpOp::Ge)
            ]
        )
            .prop_map(|(lhs, rhs, op)| Condition::Compare { lhs, op, rhs }),
        (
            var_name(),
            proptest::collection::vec(literal(), 1..4),
            any::<bool>()
        )
            .prop_map(|(var, set, negated)| Condition::In { var, set, negated }),
    ]
}

fn skolem() -> impl Strategy<Value = SkolemTerm> {
    (cap_name(), proptest::collection::vec(var_name(), 0..3))
        .prop_map(|(name, args)| SkolemTerm { name, args })
}

fn link_target() -> impl Strategy<Value = Term> {
    prop_oneof![
        var_name().prop_map(Term::Var),
        literal().prop_map(Term::Lit),
        skolem().prop_map(Term::Skolem),
        (
            prop_oneof![
                Just(AggFunc::Count),
                Just(AggFunc::Sum),
                Just(AggFunc::Min),
                Just(AggFunc::Max),
                Just(AggFunc::Avg)
            ],
            var_name()
        )
            .prop_map(|(f, v)| Term::Agg(f, v)),
    ]
}

fn link() -> impl Strategy<Value = LinkClause> {
    (
        skolem(),
        prop_oneof![
            safe_string().prop_map(LabelTerm::Lit),
            var_name().prop_map(LabelTerm::Var)
        ],
        link_target(),
    )
        .prop_map(|(from, label, to)| LinkClause { from, label, to })
}

fn collect_clause() -> impl Strategy<Value = CollectClause> {
    (cap_name(), link_target()).prop_map(|(name, arg)| CollectClause { name, arg })
}

fn block(depth: u32) -> BoxedStrategy<Block> {
    let children = if depth == 0 {
        Just(Vec::new()).boxed()
    } else {
        proptest::collection::vec(block(depth - 1), 0..3).boxed()
    };
    (
        proptest::collection::vec(condition(), 0..4),
        proptest::collection::vec(skolem(), 0..3),
        proptest::collection::vec(link(), 0..3),
        proptest::collection::vec(collect_clause(), 0..2),
        children,
    )
        .prop_map(|(where_, creates, links, collects, children)| Block {
            id: BlockId(0), // renumbered below
            where_,
            creates,
            links,
            collects,
            children,
        })
        .boxed()
}

/// Assigns document-order ids, matching what the parser produces.
fn renumber(b: &mut Block, next: &mut u32) {
    b.id = BlockId(*next);
    *next += 1;
    for c in &mut b.children {
        renumber(c, next);
    }
}

fn query() -> impl Strategy<Value = Query> {
    (
        proptest::option::of(cap_name()),
        proptest::option::of(cap_name()),
        block(2),
    )
        .prop_map(|(input, output, mut root)| {
            let mut next = 0;
            renumber(&mut root, &mut next);
            Query {
                input,
                output,
                root,
            }
        })
}

/// Normalizes constructs whose surface form is genuinely ambiguous, mapping
/// both sides of the roundtrip into the same representative:
/// * a single-hop chain printed from an `Rpe::Label` re-parses identically,
///   but a *bare* `Rpe` that is exactly `Star(AnyLabel)` prints as `*` ✓ —
///   nothing to do there;
/// * `Rpe::Pred`/`ArcVar` print as bare identifiers, so the generator emits
///   [`PathStep::Bare`] directly (no normalization needed);
/// * multi-hop chains only arise from parsing, never from printing single
///   conditions, so none appear.
fn normalize(q: &Query) -> Query {
    q.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_then_parse_is_identity(q in query()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        prop_assert_eq!(normalize(&reparsed), normalize(&q), "--- printed ---\n{}", printed);
    }
}

#[test]
fn roundtrip_regression_corpus() {
    // Hand-picked shapes that once looked risky.
    for src in [
        // Star-of-star and optional star.
        r#"WHERE x -> ("a")** -> y COLLECT O(y)"#,
        r#"WHERE x -> *? -> y COLLECT O(y)"#,
        // Underscore wildcard vs star.
        r#"WHERE x -> _ -> y, x -> * -> z COLLECT O(y)"#,
        // Aggregates in both construction positions.
        r#"WHERE C(x), x -> "n" -> v CREATE S(x) LINK S(x) -> "c" -> COUNT(v) COLLECT O(AVG(v))"#,
        // Negative integers and floats as literals.
        r#"WHERE C(x), x -> "n" -> -42, x -> "m" -> -1.5 COLLECT O(x)"#,
        // Empty-argument Skolem functions everywhere.
        r#"CREATE R() LINK R() -> "self" -> R() COLLECT O(R())"#,
    ] {
        let q = parse_query(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = q.to_string();
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("reparse {src}: {e}\n{printed}"));
        assert_eq!(q, q2, "{src}\n--- printed ---\n{printed}");
    }
}
